//! Umbrella package for the Edge-PrivLocAd reproduction.
//!
//! This crate exists so that the repository root can host the runnable
//! examples (`examples/`) and the cross-crate integration tests (`tests/`).
//! It re-exports every workspace crate under one roof; downstream code should
//! depend on the individual crates directly.

pub use privlocad;
pub use privlocad_adnet as adnet;
pub use privlocad_attack as attack;
pub use privlocad_geo as geo;
pub use privlocad_mechanisms as mechanisms;
pub use privlocad_metrics as metrics;
pub use privlocad_mobility as mobility;
