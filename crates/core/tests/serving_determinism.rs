//! The posterior-weight cache is pure post-processing acceleration: serving
//! with warm cached tables and serving with the cache flushed before every
//! single request (forcing a from-scratch weight recompute) must produce
//! bit-for-bit identical output streams — across multiple protection-window
//! cycles, and on the concurrent device regardless of thread count.

use std::sync::Arc;

use privlocad::{AdDelivery, EdgeDevice, SharedEdgeDevice, SystemConfig};
use privlocad_adnet::{AdNetwork, Campaign, Targeting};
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mobility::UserId;

const WINDOW_CYCLES: usize = 3;
const REQUESTS_PER_CYCLE: usize = 25;

fn network() -> AdNetwork {
    AdNetwork::new(vec![
        Campaign::new(0u64, "home-cafe", Targeting::radius(Point::new(0.0, 0.0), 25_000.0).unwrap(), 2.0)
            .unwrap(),
        Campaign::new(1u64, "office-gym", Targeting::radius(Point::new(9_000.0, 0.0), 25_000.0).unwrap(), 3.0)
            .unwrap(),
        Campaign::new(2u64, "countrywide", Targeting::Country(86), 1.0).unwrap(),
    ])
}

/// Drives one edge device through 3 protection-window cycles, recording the
/// full `request_ads` output stream. When `flush` is set, the selection
/// cache is dropped before every request, so every draw recomputes its
/// posterior weights from scratch.
fn drive_edge(seed: u64, flush: bool) -> Vec<AdDelivery> {
    let mut edge = EdgeDevice::new(SystemConfig::builder().build().unwrap(), seed);
    let mut net = network();
    let user = UserId::new(1);
    let home = Point::new(0.0, 0.0);
    let office = Point::new(9_000.0, 0.0);
    let mut stream = Vec::new();
    let mut t = 0i64;
    for cycle in 0..WINDOW_CYCLES {
        // The office grows more prominent every cycle, so the top set (and
        // with it the cache keys) genuinely changes across windows.
        for _ in 0..40 {
            edge.report_checkin(user, home);
        }
        for _ in 0..(10 + 15 * cycle) {
            edge.report_checkin(user, office);
        }
        edge.finalize_window(user);
        for i in 0..REQUESTS_PER_CYCLE {
            if flush {
                edge.flush_selection_cache();
            }
            let at = match i % 3 {
                0 => home,
                1 => office,
                _ => Point::new(40_000.0, 40_000.0), // nomadic
            };
            stream.push(edge.request_ads(user, at, t, &mut net));
            t += 1;
        }
    }
    stream
}

#[test]
fn cached_and_from_scratch_request_ads_streams_are_identical() {
    for seed in [3, 17, 4242] {
        let cached = drive_edge(seed, false);
        let uncached = drive_edge(seed, true);
        assert_eq!(cached.len(), WINDOW_CYCLES * REQUESTS_PER_CYCLE);
        assert_eq!(cached, uncached, "seed {seed}: cache changed an output stream");
    }
}

/// Drives the shared device with `threads` worker threads, each owning a
/// disjoint set of users with a per-user derived RNG (the deterministic
/// worker-pool pattern), through 3 window cycles. Returns the per-user
/// reported-location streams, which must not depend on `threads` or on
/// `flush`.
fn drive_shared(seed: u64, threads: usize, flush: bool) -> Vec<Vec<Point>> {
    const USERS: u32 = 6;
    let edge = Arc::new(SharedEdgeDevice::new(SystemConfig::builder().build().unwrap(), seed));
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let edge = Arc::clone(&edge);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for u in (w as u32..USERS).step_by(threads) {
                    let user = UserId::new(u);
                    let home = Point::new(u as f64 * 4_000.0, 0.0);
                    let away = home + Point::new(0.0, 7_000.0);
                    let mut rng = seeded(derive_seed(seed, u as u64));
                    let mut stream = Vec::new();
                    for cycle in 0..WINDOW_CYCLES {
                        for _ in 0..30 {
                            edge.report_checkin(user, home);
                        }
                        for _ in 0..(5 + 12 * cycle) {
                            edge.report_checkin(user, away);
                        }
                        edge.finalize_window_with(user, &mut rng);
                        for i in 0..REQUESTS_PER_CYCLE {
                            if flush {
                                edge.flush_selection_cache();
                            }
                            let at = if i % 2 == 0 { home } else { away };
                            stream.push(edge.reported_location_with(user, at, &mut rng));
                        }
                    }
                    out.push((u, stream));
                }
                out
            })
        })
        .collect();
    let mut per_user = vec![Vec::new(); USERS as usize];
    for h in handles {
        for (u, stream) in h.join().unwrap() {
            per_user[u as usize] = stream;
        }
    }
    per_user
}

#[test]
fn shared_device_streams_are_invariant_to_threads_and_cache_state() {
    let baseline = drive_shared(77, 1, false);
    for stream in &baseline {
        assert_eq!(stream.len(), WINDOW_CYCLES * REQUESTS_PER_CYCLE);
    }
    for threads in [1, 2] {
        for flush in [false, true] {
            if threads == 1 && !flush {
                continue;
            }
            let got = drive_shared(77, threads, flush);
            assert_eq!(
                got, baseline,
                "threads={threads} flush={flush} diverged from the 1-thread cached run"
            );
        }
    }
}
