//! Property-based tests of the Edge-PrivLocAd system invariants.

use privlocad::protocol::{ClientRequest, EdgeResponse};
use privlocad::{frequent_location_set, EdgeDevice, EtaThreshold, SystemConfig};
use privlocad_attack::{LocationProfile, ProfileEntry};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use proptest::prelude::*;

fn profile() -> impl Strategy<Value = LocationProfile> {
    proptest::collection::vec(1usize..500, 1..15).prop_map(|freqs| {
        LocationProfile::from_entries(freqs.into_iter().enumerate().map(|(i, f)| ProfileEntry {
            location: Point::new(i as f64 * 10_000.0, 0.0),
            frequency: f,
        }))
    })
}

proptest! {
    #[test]
    fn frequent_set_is_minimal_prefix(p in profile(), eta in 0.01..1.0f64) {
        let set = frequent_location_set(&p, EtaThreshold::Fraction(eta));
        let target = (eta * p.total_checkins() as f64).ceil() as usize;
        let covered: usize = set.iter().map(|e| e.frequency).sum();
        // Reaches the threshold (or exhausts the profile)…
        prop_assert!(covered >= target.min(p.total_checkins()));
        // …and is minimal: dropping the last entry goes below target.
        if set.len() > 1 {
            let without_last: usize = set[..set.len() - 1].iter().map(|e| e.frequency).sum();
            prop_assert!(without_last < target);
        }
        // It is a prefix of the rank-ordered profile.
        for (a, b) in set.iter().zip(p.iter()) {
            prop_assert_eq!(a.frequency, b.frequency);
        }
    }

    #[test]
    fn frequent_set_grows_with_eta(p in profile(), e1 in 0.05..0.9f64, de in 0.0..0.1f64) {
        let small = frequent_location_set(&p, EtaThreshold::Fraction(e1)).len();
        let large = frequent_location_set(&p, EtaThreshold::Fraction((e1 + de).min(1.0))).len();
        prop_assert!(large >= small);
    }

    #[test]
    fn reports_at_top_locations_come_from_candidates(
        seed in 0u64..200,
        hx in -10_000.0..10_000.0f64,
        hy in -10_000.0..10_000.0f64,
        window in 10usize..80,
        requests in 1usize..30,
    ) {
        let config = SystemConfig::builder().build().unwrap();
        let mut edge = EdgeDevice::new(config, seed);
        let user = UserId::new(0);
        let home = Point::new(hx, hy);
        for _ in 0..window {
            edge.report_checkin(user, home);
        }
        prop_assert_eq!(edge.finalize_window(user), 1);
        let candidates = edge.candidates(user, home).unwrap().to_vec();
        prop_assert_eq!(candidates.len(), config.geo_ind().n());
        for _ in 0..requests {
            let reported = edge.reported_location(user, home);
            prop_assert!(candidates.contains(&reported));
            prop_assert!(reported != home, "the true location must never be reported");
        }
    }

    #[test]
    fn protocol_decoders_never_panic_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Fuzz the wire decoders: any byte soup must yield Ok or Err,
        // never a panic.
        let _ = ClientRequest::decode(&bytes);
        let _ = EdgeResponse::decode(&bytes);
    }

    #[test]
    fn protocol_request_round_trip(
        user in any::<u32>(),
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        ts in 0i64..100_000_000,
        kind in 0usize..4,
    ) {
        let req = match kind {
            0 => ClientRequest::CheckIn {
                user: UserId::new(user),
                location: Point::new(x, y),
                timestamp: ts,
            },
            1 => ClientRequest::RequestLocation {
                user: UserId::new(user),
                location: Point::new(x, y),
            },
            2 => ClientRequest::FinalizeWindow { user: UserId::new(user) },
            _ => ClientRequest::Shutdown,
        };
        prop_assert_eq!(ClientRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn nomadic_reports_are_fresh_and_finite(
        seed in 0u64..200,
        x in -10_000.0..10_000.0f64,
        y in -10_000.0..10_000.0f64,
    ) {
        let config = SystemConfig::builder().build().unwrap();
        let mut edge = EdgeDevice::new(config, seed);
        let user = UserId::new(3);
        let spot = Point::new(x, y);
        let a = edge.reported_location(user, spot);
        let b = edge.reported_location(user, spot);
        prop_assert!(a.is_finite() && b.is_finite());
        prop_assert!(a != b);
        prop_assert!(a != spot && b != spot);
    }
}
