//! Adversarial fuzz of the hardened wire decoders: random truncation,
//! length-prefix lies, and bit flips must always yield a structured
//! `FrameError` (or a clean decode of a different valid frame), never a
//! panic — a malformed radio frame must cost the sender a strike, not the
//! edge worker its life.

use privlocad::protocol::{deframe, frame, ClientRequest, EdgeResponse, MAX_FRAME_LEN};
use privlocad::recovery::DeviceSnapshot;
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use proptest::prelude::*;

fn request(kind: usize, user: u32, x: f64, y: f64, ts: i64) -> ClientRequest {
    match kind {
        0 => ClientRequest::CheckIn {
            user: UserId::new(user),
            location: Point::new(x, y),
            timestamp: ts,
        },
        1 => ClientRequest::RequestLocation { user: UserId::new(user), location: Point::new(x, y) },
        2 => ClientRequest::FinalizeWindow { user: UserId::new(user) },
        _ => ClientRequest::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2_500))]

    #[test]
    fn truncated_frames_error_and_never_panic(
        kind in 0usize..4,
        user in any::<u32>(),
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        ts in 0i64..1_000_000,
        cut in 0usize..64,
    ) {
        let encoded = request(kind, user, x, y, ts).encode();
        // Every strict prefix must fail: the layouts are fixed-size and the
        // decoder rejects both missing and trailing bytes.
        let cut = cut % encoded.len();
        prop_assert!(ClientRequest::decode(&encoded[..cut]).is_err());
        // The framed stream decoder agrees on its own truncations.
        let framed = frame(&encoded);
        let cut = cut % framed.len();
        prop_assert!(ClientRequest::decode_framed(&framed[..cut]).is_err());
    }

    #[test]
    fn bit_flips_never_panic_and_reencode_faithfully(
        kind in 0usize..4,
        user in any::<u32>(),
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        ts in 0i64..1_000_000,
        byte in 0usize..32,
        bit in 0u8..8,
    ) {
        let mut bytes = request(kind, user, x, y, ts).encode().to_vec();
        let byte = byte % bytes.len();
        bytes[byte] ^= 1 << bit;
        // A flipped bit either breaks the frame (structured error) or
        // lands on another valid frame — which must re-encode to exactly
        // the corrupted bytes (the codec is a bijection on valid frames).
        if let Ok(req) = ClientRequest::decode(&bytes) {
            prop_assert_eq!(req.encode().to_vec(), bytes);
        }
    }

    #[test]
    fn lying_length_prefixes_error_and_never_panic(
        declared in any::<u16>(),
        body in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        // A hand-forged length prefix over arbitrary body bytes: deframe
        // must bound-check the declared length against both the buffer and
        // the protocol maximum.
        let mut stream = (declared as usize).to_be_bytes()[6..].to_vec();
        stream.extend_from_slice(&body);
        match deframe(&stream) {
            Ok((frame_body, rest)) => {
                prop_assert_eq!(frame_body.len(), declared as usize);
                prop_assert!(frame_body.len() <= MAX_FRAME_LEN);
                prop_assert_eq!(frame_body.len() + rest.len(), body.len());
            }
            Err(_) => {
                prop_assert!(declared as usize > body.len().min(MAX_FRAME_LEN));
            }
        }
        // And the typed stream decoders stay total on the same soup.
        let _ = ClientRequest::decode_framed(&stream);
        let _ = EdgeResponse::decode_framed(&stream);
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_any_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..160),
    ) {
        let _ = ClientRequest::decode(&bytes);
        let _ = EdgeResponse::decode(&bytes);
        let _ = ClientRequest::decode_framed(&bytes);
        let _ = EdgeResponse::decode_framed(&bytes);
        let _ = deframe(&bytes);
        // The recovery log decoder is part of the same trust boundary: a
        // corrupt persisted snapshot must error, never poison a device.
        prop_assert!(DeviceSnapshot::decode(&bytes).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    #[test]
    fn valid_framed_streams_round_trip(
        kinds in proptest::collection::vec(0usize..4, 1..12),
        user in any::<u32>(),
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        ts in 0i64..1_000_000,
    ) {
        let requests: Vec<ClientRequest> =
            kinds.iter().map(|&k| request(k, user, x, y, ts)).collect();
        let mut stream = Vec::new();
        for r in &requests {
            stream.extend_from_slice(&frame(&r.encode()));
        }
        let mut rest: &[u8] = &stream;
        let mut decoded = Vec::new();
        while !rest.is_empty() {
            let (req, tail) = ClientRequest::decode_framed(rest).unwrap();
            decoded.push(req);
            rest = tail;
        }
        prop_assert_eq!(decoded, requests);
    }
}
