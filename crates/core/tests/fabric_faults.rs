//! End-to-end contracts of the self-healing fabric (DESIGN.md §17):
//!
//! 1. **Exactly-once under duplication.** A duplicate-heavy link (plus
//!    drops and corruption) must leave device state digests, restart
//!    counts, and the privacy-budget ledger bit-identical to the
//!    fault-free run — every duplicated `check_in` / `finalize_window`
//!    delivery is suppressed by the shards' dedup windows.
//! 2. **Duplicates + per-shard restarts combined.** Worker crashes
//!    replay batches from checkpoints while the wire re-delivers
//!    frames; the ledger must still audit exactly-once.
//! 3. **Breaker determinism.** The breaker transition trace — open,
//!    probe, reopen, close, in order — is identical at 1, 4, and 16
//!    shards under the same master seed when the failure burst rides a
//!    single user's lane.

use privlocad::{
    BreakerConfig, BreakerEvent, ChannelFaultPlan, FabricOptions, FabricRouter, FaultPlan,
    LaneOutage, ServedLocation, ServerOptions, SystemConfig,
};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use privlocad_telemetry::{top_key, Telemetry};

const USERS: u32 = 24;
const MASTER: u64 = 77;

fn config() -> SystemConfig {
    SystemConfig::builder().build().expect("default config is valid")
}

fn home_of(user: UserId) -> Point {
    Point::new(f64::from(user.raw()) * 5_000.0, -1_200.0)
}

fn chaos_plan(seed: u64) -> ChannelFaultPlan {
    ChannelFaultPlan {
        seed,
        drop_per_mille: 100,
        duplicate_per_mille: 300,
        duplicate_delay: 3,
        corrupt_per_mille: 100,
        outages: Vec::new(),
    }
}

struct FleetRun {
    reports: Vec<Point>,
    digests: Vec<u64>,
    restarts: u64,
    duplicates_injected: u64,
    duplicates_suppressed: u64,
    hub: Telemetry,
    released: Vec<(u64, privlocad_telemetry::TopKey)>,
}

/// Drives the standard workload (40 check-ins, one window close, four
/// location requests per user) through a fabric and collects every
/// witness the contracts compare.
fn run_fleet(shards: usize, plan: ChannelFaultPlan, kills: bool) -> FleetRun {
    let hub = Telemetry::new();
    let fabric = FabricRouter::spawn(config(), MASTER, FabricOptions {
        shards,
        fault_plan: plan,
        kill_plans: if kills {
            // One early crash per shard, well within the restart budget.
            (0..shards).map(|_| FaultPlan::kill_at([5])).collect()
        } else {
            Vec::new()
        },
        server: ServerOptions {
            telemetry: hub.clone(),
            backoff_base: 1,
            backoff_cap: 1,
            ..ServerOptions::default()
        },
        ..FabricOptions::default()
    });
    let users: Vec<UserId> = (0..USERS).map(UserId::new).collect();
    for t in 0..40 {
        for &u in &users {
            fabric.check_in(u, home_of(u), t).expect("check-in survives the wire");
        }
    }
    for &u in &users {
        assert_eq!(fabric.finalize_window(u).expect("window close survives"), 1);
    }
    let mut reports = Vec::new();
    for _ in 0..4 {
        for &u in &users {
            match fabric.request_location(u, home_of(u)).expect("request survives") {
                ServedLocation::Fresh(p) => reports.push(p),
                ServedLocation::Degraded(_) => panic!("no breaker should open in this run"),
            }
        }
    }
    // Shutdown first: delayed duplicate copies flush there, and the
    // injected/suppressed totals must cover them.
    fabric.shutdown().expect("clean shutdown");
    let stats = fabric.stats();
    let devices = fabric.join().expect("every shard survives");
    let metrics = hub.registry().snapshot();
    assert_eq!(devices.iter().map(|d| d.user_count()).sum::<usize>(), USERS as usize);
    let mut released = Vec::new();
    for device in &devices {
        let snapshot = device.snapshot();
        for (user, top) in snapshot.released_sets().expect("final checkpoint is well-formed") {
            released.push((u64::from(user.raw()), top_key(top.x, top.y)));
        }
    }
    released.sort();
    let mut digests: Vec<u64> = devices.iter().map(|d| d.state_digest()).collect();
    digests.sort_unstable();
    FleetRun {
        reports,
        digests,
        restarts: metrics.counter("server.restarts").unwrap_or(0),
        duplicates_injected: stats.duplicates_injected,
        duplicates_suppressed: metrics.counter("server.duplicates_suppressed").unwrap_or(0),
        hub,
        released,
    }
}

#[test]
fn exactly_once_under_duplication_matches_fault_free() {
    let clean = run_fleet(1, ChannelFaultPlan::none(), false);
    assert_eq!(clean.duplicates_injected, 0);
    let faulty = run_fleet(1, chaos_plan(MASTER), false);
    // Faults were really injected, and every duplicate was suppressed.
    assert!(faulty.duplicates_injected > 0, "the plan must inject duplicates");
    assert_eq!(faulty.duplicates_suppressed, faulty.duplicates_injected);
    // Device digests, outputs, and restart counts match the clean run.
    assert_eq!(faulty.reports, clean.reports);
    assert_eq!(faulty.digests, clean.digests);
    assert_eq!(faulty.restarts, clean.restarts);
    assert_eq!(faulty.restarts, 0);
    // The ledger audits exactly-once against the live candidate sets.
    assert_eq!(faulty.released.len(), USERS as usize);
    faulty
        .hub
        .ledger()
        .assert_no_double_spend(faulty.released.clone())
        .expect("duplicated deliveries must not double-spend");
    assert_eq!(faulty.hub.ledger().totals().candidate_sets, u64::from(USERS));
}

#[test]
fn ledger_audits_clean_under_duplicates_and_restarts_combined() {
    let clean = run_fleet(4, ChannelFaultPlan::none(), false);
    let stormy = run_fleet(4, chaos_plan(MASTER), true);
    assert!(stormy.duplicates_injected > 0);
    assert_eq!(stormy.restarts, 4, "one supervised crash per shard");
    // Checkpoint-exact restores + dedup windows: same outputs, same
    // final state, exactly-once budget spends.
    assert_eq!(stormy.reports, clean.reports);
    assert_eq!(stormy.digests, clean.digests);
    stormy
        .hub
        .ledger()
        .assert_no_double_spend(stormy.released.clone())
        .expect("duplicates + restarts must not double-spend");
    assert_eq!(stormy.hub.ledger().totals().candidate_sets, u64::from(USERS));
}

#[test]
fn duplication_survival_is_shard_count_invariant() {
    let one = run_fleet(1, chaos_plan(MASTER), false);
    let four = run_fleet(4, chaos_plan(MASTER), false);
    let sixteen = run_fleet(16, chaos_plan(MASTER), false);
    assert_eq!(one.reports, four.reports);
    assert_eq!(one.reports, sixteen.reports);
    // Lane-keyed fault draws: the injected and suppressed totals are
    // partition-invariant, not just the outputs.
    assert_eq!(one.duplicates_injected, four.duplicates_injected);
    assert_eq!(one.duplicates_injected, sixteen.duplicates_injected);
    assert_eq!(one.duplicates_suppressed, four.duplicates_suppressed);
    assert_eq!(one.duplicates_suppressed, sixteen.duplicates_suppressed);
}

/// Primes every user, then drives a failure burst and recovery strictly
/// through user 0's lane, returning the breaker transition trace.
fn breaker_trace(shards: usize) -> Vec<BreakerEvent> {
    // Outage: user 0's deliveries 42..45 fail (40 check-ins + finalize
    // + 1 released request precede it).
    let fabric = FabricRouter::spawn(config(), MASTER, FabricOptions {
        shards,
        fault_plan: ChannelFaultPlan {
            seed: MASTER,
            outages: vec![LaneOutage { lane: 0, from: 42, calls: 3 }],
            ..ChannelFaultPlan::none()
        },
        breaker: BreakerConfig { failure_threshold: 2, cooldown: 4, max_cooldown: 16 },
        ..FabricOptions::default()
    });
    let users: Vec<UserId> = (0..12).map(UserId::new).collect();
    for t in 0..40 {
        for &u in &users {
            fabric.check_in(u, home_of(u), t).expect("priming check-in");
        }
    }
    for &u in &users {
        fabric.finalize_window(u).expect("priming window close");
    }
    let user = UserId::new(0);
    fabric.request_location(user, home_of(user)).expect("release one location");
    // Failure burst + recovery, all on lane 0 so the trace cannot
    // depend on which other lanes share shard 0.
    for _ in 0..24 {
        let _ = fabric.request_location(user, home_of(user));
    }
    let trace = fabric.trace();
    fabric.shutdown().expect("clean shutdown");
    fabric.join().expect("every shard survives");
    trace
}

#[test]
fn breaker_traces_are_identical_across_shard_counts() {
    let one = breaker_trace(1);
    assert!(
        one.contains(&BreakerEvent::Opened { shard: 0, failures: 2 }),
        "the outage must open the breaker: {one:?}"
    );
    assert_eq!(
        one.last(),
        Some(&BreakerEvent::Closed { shard: 0 }),
        "the breaker must close again after the outage: {one:?}"
    );
    assert_eq!(one, breaker_trace(4), "trace changed between 1 and 4 shards");
    assert_eq!(one, breaker_trace(16), "trace changed between 1 and 16 shards");
}
