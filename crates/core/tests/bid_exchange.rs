//! End-to-end contracts of the OpenRTB-lite bid pipeline (DESIGN.md §18):
//!
//! 1. **Partition invariance.** The exchange log settled from a fleet's
//!    bid stream is bit-identical at 1, 4 and 16 shards: per-user RNG
//!    streams fix the served locations, and per-device wire sequence
//!    numbers fix the canonical log order regardless of how users are
//!    partitioned.
//! 2. **Fault invariance.** A run with one seeded worker kill per shard
//!    settles the same digest: bid emission sits in the commit phase, so
//!    a killed batch never half-emits and a replayed batch emits exactly
//!    once.
//! 3. **Ledger integrity.** The serving ledger's recorded spend equals
//!    the sum of cleared prices on the wire (so a replayed batch can
//!    never double-spend a budget), per-device frequency caps hold for
//!    every campaign, and the faulted run spends identically to the
//!    clean one.

use std::collections::BTreeMap;
use std::sync::Arc;

use privlocad::{FaultPlan, ServerOptions, ShardRouter, SystemConfig};
use privlocad_adnet::inventory::{generate, InventoryConfig};
use privlocad_adnet::{AdNetwork, BidExchange, Campaign, ServingPolicy};
use privlocad_geo::rng::derive_seed;
use privlocad_mobility::{shanghai, PopulationConfig, UserTrace, SECONDS_PER_DAY};
use privlocad_openrtb::{BidSink, DeviceId, PendingBid};
use privlocad_telemetry::Telemetry;

const USERS: usize = 16;
const CHECKINS: usize = 40;
const MASTER: u64 = 23;
const FREQUENCY_CAP: u32 = 3;
const BUDGET: f64 = 60.0;

fn config() -> SystemConfig {
    SystemConfig::builder().build().expect("default config is valid")
}

/// The synthetic population every fleet run replays: identical traces,
/// so any digest difference is the fleet's fault.
fn traces() -> Vec<UserTrace> {
    let population = PopulationConfig::builder().num_users(USERS).seed(MASTER).build();
    (0..USERS)
        .map(|i| {
            let mut trace = population.generate_user(i as u32);
            trace.checkins.truncate(CHECKINS);
            trace
        })
        .collect()
}

/// A small marketplace under budgets and frequency caps, so the ledgered
/// eligibility paths are live during settlement.
fn marketplace() -> (Vec<Campaign>, ServingPolicy) {
    let inventory = InventoryConfig { count: 80, ..InventoryConfig::default() };
    let campaigns = generate(
        &inventory,
        shanghai::bounding_box(),
        &shanghai::projection(),
        derive_seed(MASTER, 0xad5),
    );
    (campaigns, ServingPolicy::unlimited().with_budget(BUDGET).with_frequency_cap(FREQUENCY_CAP))
}

/// Drives the population through a fleet of `shards` serving loops, every
/// shard submitting into one shared sink; with `kill` each shard's
/// supervisor executes one seeded worker kill early in its operation
/// stream. Returns the drained bid stream and the restart count.
fn fleet_pending(shards: usize, kill: bool) -> (Vec<PendingBid>, u64) {
    let sys = config();
    let sink = Arc::new(BidSink::new());
    let hub = Telemetry::new();
    let options = (0..shards)
        .map(|_| ServerOptions {
            telemetry: hub.clone(),
            bid_sink: Some(Arc::clone(&sink)),
            // Every shard owns at least one user's ~80-operation stream,
            // so an ordinal this early always fires.
            fault_plan: if kill { FaultPlan::kill_at([7]) } else { FaultPlan::none() },
            backoff_base: 1,
            backoff_cap: 1,
            ..ServerOptions::default()
        })
        .collect();
    let router = ShardRouter::spawn_with(sys, derive_seed(MASTER, 0xf1ee7), options);
    let window = i64::from(sys.window_days()) * SECONDS_PER_DAY;
    for trace in traces() {
        let mut window_end = window;
        for checkin in &trace.checkins {
            while checkin.time.seconds() >= window_end {
                router.finalize_window(trace.user).expect("window close survives the fleet");
                window_end += window;
            }
            router
                .check_in(trace.user, checkin.location, checkin.time.seconds())
                .expect("check-in survives the fleet");
            router
                .request_location(trace.user, checkin.location)
                .expect("ad request survives the fleet");
        }
    }
    router.shutdown().expect("fleet shuts down cleanly");
    router.join().expect("every shard survives its schedule");
    let restarts = hub.registry().snapshot().counter("server.restarts").unwrap_or(0);
    (sink.drain(), restarts)
}

/// Settles a drained bid stream against a fresh marketplace.
fn settle(campaigns: &[Campaign], policy: ServingPolicy, pending: &[PendingBid]) -> BidExchange {
    let mut network = AdNetwork::new(campaigns.to_vec());
    for campaign in campaigns {
        network.set_policy(campaign.id(), policy);
    }
    let mut exchange = BidExchange::new(network);
    exchange.pump_pending(pending).expect("sink frames decode");
    exchange
}

fn digest_of(campaigns: &[Campaign], policy: ServingPolicy, pending: &[PendingBid]) -> u64 {
    settle(campaigns, policy, pending).log().digest()
}

#[test]
fn exchange_log_is_bit_identical_across_shard_counts() {
    let (campaigns, policy) = marketplace();
    let (one, r1) = fleet_pending(1, false);
    let (four, r4) = fleet_pending(4, false);
    let (sixteen, r16) = fleet_pending(16, false);
    assert_eq!((r1, r4, r16), (0, 0, 0), "clean runs must not restart");
    assert_eq!(one.len(), USERS * CHECKINS, "one bid per served ad request");
    let reference = digest_of(&campaigns, policy, &one);
    assert_eq!(reference, digest_of(&campaigns, policy, &four), "1 vs 4 shards");
    assert_eq!(reference, digest_of(&campaigns, policy, &sixteen), "1 vs 16 shards");
}

#[test]
fn exchange_log_survives_one_worker_kill_per_shard() {
    let (campaigns, policy) = marketplace();
    let (clean, _) = fleet_pending(4, false);
    let reference = digest_of(&campaigns, policy, &clean);
    for shards in [1usize, 4, 16] {
        let (pending, restarts) = fleet_pending(shards, true);
        assert_eq!(restarts, shards as u64, "one supervised restart per shard");
        assert_eq!(
            digest_of(&campaigns, policy, &pending),
            reference,
            "faulted {shards}-shard run diverged from the clean log"
        );
    }
}

/// Per-campaign cleared micro-spend and win counts read off the wire.
fn wire_spend(exchange: &BidExchange) -> BTreeMap<u64, (u64, u32)> {
    let mut spend: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
    for record in exchange.log().records() {
        if let Some(sb) = &record.response.seatbid {
            let entry = spend.entry(sb.seat).or_insert((0, 0));
            entry.0 += sb.bid.price_micros;
            entry.1 += 1;
        }
    }
    spend
}

#[test]
fn ledger_spend_matches_the_wire_and_respects_caps() {
    let (campaigns, policy) = marketplace();
    let (pending, _) = fleet_pending(4, false);
    let exchange = settle(&campaigns, policy, &pending);
    let spend = wire_spend(&exchange);
    assert!(exchange.log().wins() > 0, "the marketplace must win some auctions");

    let devices: Vec<DeviceId> = exchange.log().devices();
    for campaign in &campaigns {
        let state = exchange.network().serving_state(campaign.id());
        let (wire_micros, wire_wins) =
            spend.get(&campaign.id().raw()).copied().unwrap_or((0, 0));
        // Prices cross the wire as round(cpm * 1e6): the ledger's float
        // spend and the wire total agree to within half a micro per win.
        let ledger_micros = state.spent() * 1e6;
        assert!(
            (ledger_micros - wire_micros as f64).abs() <= f64::from(wire_wins),
            "campaign {} ledger spend {ledger_micros} != wire {wire_micros}",
            campaign.id().raw()
        );
        assert_eq!(state.total_impressions(), wire_wins, "one impression per cleared win");
        // Budget overshoot is bounded by the final impression (pacing
        // semantics): spend below the budget before the last win.
        if wire_wins > 0 {
            let max_price = spend.values().map(|&(m, _)| m).max().unwrap_or(0) as f64;
            assert!(
                ledger_micros < BUDGET * 1e6 + max_price,
                "campaign {} blew through its budget",
                campaign.id().raw()
            );
        }
        for &device in &devices {
            assert!(
                state.impressions_for(device) <= FREQUENCY_CAP,
                "campaign {} exceeded the frequency cap for device {}",
                campaign.id().raw(),
                device.raw()
            );
        }
    }

    // A replayed (faulted) stream settles the identical spend: the ledger
    // cannot double-spend what the commit phase emitted exactly once.
    let (faulted, restarts) = fleet_pending(4, true);
    assert!(restarts > 0);
    let replay = settle(&campaigns, policy, &faulted);
    assert_eq!(wire_spend(&replay), spend, "faulted run settled different spend");
    for campaign in &campaigns {
        let clean = exchange.network().serving_state(campaign.id());
        let stormy = replay.network().serving_state(campaign.id());
        assert_eq!(clean, stormy, "serving state diverged for campaign {}", campaign.id().raw());
    }
}
