//! **Edge-PrivLocAd**: an edge-assisted location privacy system for
//! location-based advertising, reproducing the ICDCS 2022 paper
//! *"Thwarting Longitudinal Location Exposure Attacks in Advertising
//! Ecosystem via Edge Computing"*.
//!
//! The system (Fig. 5 of the paper) interposes a trusted edge device
//! between mobile users and the untrusted LBA provider and runs three
//! modules per user:
//!
//! 1. **Location management** ([`LocationManager`]): collects check-ins
//!    over a configurable time window, builds the location profile
//!    (Equation 2) and extracts the η-frequent location set (Definition 6,
//!    Algorithm 2) — the top locations that need longitudinal protection.
//! 2. **Location obfuscation** ([`ObfuscationModule`]): for every top
//!    location, generates `n` *permanent* obfuscated candidates with the
//!    n-fold Gaussian mechanism (Theorem 2) and stores them in the
//!    obfuscation table `T`. Re-using the same candidates forever is what
//!    defeats the longitudinal attacker: more observations reveal nothing
//!    new.
//! 3. **Output selection** ([`privlocad_mechanisms::PosteriorSelector`]
//!    via [`EdgeDevice`]): per ad request, draws one candidate with
//!    posterior-proportional probability (Algorithm 4) — pure
//!    post-processing, so no extra privacy is spent — and reports it to
//!    the ad network. Returned ads are filtered to the user's true area of
//!    interest ([`filter_ads`]) before delivery.
//!
//! Check-ins at *nomadic* (non-top) locations fall back to classic
//! one-time planar-Laplace geo-IND, which is safe for locations the user
//! rarely revisits.
//!
//! # Quickstart
//!
//! ```
//! use privlocad::{EdgeDevice, SystemConfig};
//! use privlocad_geo::Point;
//! use privlocad_mobility::UserId;
//!
//! let config = SystemConfig::builder().build()?;
//! let mut edge = EdgeDevice::new(config, 7);
//! let user = UserId::new(0);
//!
//! // A window of check-ins at the user's home.
//! for _ in 0..50 {
//!     edge.report_checkin(user, Point::new(1_000.0, 2_000.0));
//! }
//! edge.finalize_window(user);
//!
//! // Ad requests from home now report a *permanent* obfuscated candidate.
//! let a = edge.reported_location(user, Point::new(1_000.0, 2_000.0));
//! let b = edge.reported_location(user, Point::new(1_000.0, 2_000.0));
//! let candidates = edge.candidates(user, Point::new(1_000.0, 2_000.0)).unwrap();
//! assert!(candidates.contains(&a) && candidates.contains(&b));
//! # Ok::<(), privlocad::SystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod concurrent;
mod config;
mod edge;
mod error;
pub mod fabric;
mod filter;
mod fleet;
mod management;
mod obfuscation;
pub mod protocol;
pub mod recovery;
mod risk;
mod server;
mod shard;
mod system;
mod user;

pub use arena::{CandidateArena, PreparedSet};
pub use concurrent::SharedEdgeDevice;
pub use fabric::{
    BreakerConfig, BreakerEvent, BreakerState, ChannelFaultPlan, FabricError, FabricOptions,
    FabricRouter, FabricStats, LaneOutage, ServedLocation, StaleCache,
};
pub use recovery::{candidate_redraws, DeviceSnapshot, RecoveryError, StreamMode};
pub use shard::{ShardRouter, StateFootprint};
pub use risk::{LocationRisk, Recommendation, RiskAssessor, RiskReport};
pub use server::{
    EdgeHandle, EdgeServer, FaultPlan, HealthSnapshot, RetryPolicy, ServerOptions, TransportError,
};
pub use config::{EtaThreshold, SelectionKind, SystemConfig, SystemConfigBuilder};
pub use edge::{AdDelivery, DeviceStats, EdgeDevice};
pub use error::SystemError;
pub use filter::{filter_ads, filter_ads_by};
pub use fleet::EdgeFleet;
pub use management::{frequent_location_set, LocationManager};
pub use obfuscation::{ObfuscationModule, ObfuscationTable, TableDecodeError};
pub use system::{LbaSimulation, SimulationReport};
