//! Privacy-risk assessment — the edge's "assess the risk of location
//! privacy breaches" role (Section I).
//!
//! Before Edge-PrivLocAd chooses an LPPM per location, it must know which
//! locations are *top* (longitudinally exposed, needing permanent
//! obfuscation) and which are nomadic (safe under one-time geo-IND). This
//! module quantifies that exposure: per-location release counts, the
//! privacy budget a naive one-time mechanism would have burned under basic
//! composition, and a traffic-light recommendation.

use privlocad_attack::LocationProfile;
use privlocad_geo::Point;
use privlocad_mechanisms::basic_composition;
use serde::{Deserialize, Serialize};

/// Recommendation for protecting one location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recommendation {
    /// Rarely visited: one-time geo-IND noise per report suffices.
    OneTimeGeoInd,
    /// Routinely revisited: only a permanent candidate set (the n-fold
    /// Gaussian mechanism) prevents longitudinal averaging.
    PermanentObfuscation,
}

impl std::fmt::Display for Recommendation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Recommendation::OneTimeGeoInd => write!(f, "one-time geo-IND"),
            Recommendation::PermanentObfuscation => write!(f, "permanent obfuscation"),
        }
    }
}

/// The longitudinal exposure of one profiled location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationRisk {
    /// The profiled location.
    pub location: Point,
    /// How many times it was (or would be) reported in the window.
    pub releases: usize,
    /// The ε a one-time `(ε₀, δ₀)` mechanism would have accumulated over
    /// those releases under basic composition.
    pub composed_epsilon: f64,
    /// The expected attacker error after averaging `releases` independent
    /// noisy reports with per-report deviation σ₀: `σ₀/√releases` (meters).
    /// This is the longitudinal attack's convergence rate.
    pub attacker_error_m: f64,
    /// The recommendation for this location.
    pub recommendation: Recommendation,
}

/// A user's aggregated risk report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskReport {
    /// Per-location risks, most-released first.
    pub locations: Vec<LocationRisk>,
    /// The profile's location entropy (low entropy ⇒ routine-bound user
    /// ⇒ high longitudinal exposure; cf. Fig. 3).
    pub entropy: f64,
}

/// Configuration of the risk assessor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RiskAssessor {
    /// Per-release ε of the hypothetical one-time mechanism.
    pub one_time_epsilon: f64,
    /// Per-release δ of the hypothetical one-time mechanism.
    pub one_time_delta: f64,
    /// Per-release noise deviation σ₀ in meters (sets the attacker-error
    /// estimate scale).
    pub one_time_sigma_m: f64,
    /// Locations released at least this many times per window are flagged
    /// for permanent obfuscation.
    pub release_threshold: usize,
}

impl Default for RiskAssessor {
    fn default() -> Self {
        // One-time planar Laplace at l = ln 4, r = 200 m: ε per release is
        // ln 4, per-report radial deviation ≈ sqrt(6)/ε_m ≈ 353 m.
        RiskAssessor {
            one_time_epsilon: 4f64.ln(),
            one_time_delta: 1e-9,
            one_time_sigma_m: 353.0,
            release_threshold: 10,
        }
    }
}

impl RiskAssessor {
    /// Assesses the longitudinal exposure of a profiled window.
    pub fn assess(&self, profile: &LocationProfile) -> RiskReport {
        let locations = profile
            .iter()
            .map(|entry| {
                let releases = entry.frequency;
                let composed_epsilon =
                    basic_composition(self.one_time_epsilon, self.one_time_delta, releases.max(1))
                        .map(|(e, _)| e)
                        .unwrap_or(f64::INFINITY);
                let attacker_error_m = self.one_time_sigma_m / (releases.max(1) as f64).sqrt();
                let recommendation = if releases >= self.release_threshold {
                    Recommendation::PermanentObfuscation
                } else {
                    Recommendation::OneTimeGeoInd
                };
                LocationRisk {
                    location: entry.location,
                    releases,
                    composed_epsilon,
                    attacker_error_m,
                    recommendation,
                }
            })
            .collect();
        RiskReport { locations, entropy: profile.entropy() }
    }
}

impl RiskReport {
    /// The locations flagged for permanent obfuscation.
    pub fn flagged(&self) -> Vec<&LocationRisk> {
        self.locations
            .iter()
            .filter(|l| l.recommendation == Recommendation::PermanentObfuscation)
            .collect()
    }

    /// Returns `true` if any location needs permanent protection.
    pub fn needs_permanent_protection(&self) -> bool {
        !self.flagged().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_attack::ProfileEntry;

    fn profile(freqs: &[usize]) -> LocationProfile {
        LocationProfile::from_entries(freqs.iter().enumerate().map(|(i, &f)| ProfileEntry {
            location: Point::new(i as f64 * 10_000.0, 0.0),
            frequency: f,
        }))
    }

    #[test]
    fn routine_locations_flagged_nomadic_not() {
        let report = RiskAssessor::default().assess(&profile(&[500, 40, 3, 1]));
        assert_eq!(report.locations.len(), 4);
        assert_eq!(report.locations[0].recommendation, Recommendation::PermanentObfuscation);
        assert_eq!(report.locations[1].recommendation, Recommendation::PermanentObfuscation);
        assert_eq!(report.locations[2].recommendation, Recommendation::OneTimeGeoInd);
        assert_eq!(report.locations[3].recommendation, Recommendation::OneTimeGeoInd);
        assert_eq!(report.flagged().len(), 2);
        assert!(report.needs_permanent_protection());
    }

    #[test]
    fn composed_epsilon_grows_linearly() {
        let report = RiskAssessor::default().assess(&profile(&[1000, 10]));
        let heavy = report.locations[0].composed_epsilon;
        let light = report.locations[1].composed_epsilon;
        assert!((heavy / light - 100.0).abs() < 1e-9);
        assert!((heavy - 1000.0 * 4f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn attacker_error_shrinks_with_sqrt_releases() {
        let report = RiskAssessor::default().assess(&profile(&[400]));
        // 353/√400 ≈ 17.7 m — the meter-scale convergence of Fig. 4.
        assert!((report.locations[0].attacker_error_m - 353.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_riskless() {
        let report = RiskAssessor::default().assess(&LocationProfile::default());
        assert!(report.locations.is_empty());
        assert!(!report.needs_permanent_protection());
        assert_eq!(report.entropy, 0.0);
    }

    #[test]
    fn threshold_is_configurable() {
        let assessor = RiskAssessor { release_threshold: 100, ..RiskAssessor::default() };
        let report = assessor.assess(&profile(&[50]));
        assert_eq!(report.locations[0].recommendation, Recommendation::OneTimeGeoInd);
    }

    #[test]
    fn recommendation_display() {
        assert_eq!(Recommendation::OneTimeGeoInd.to_string(), "one-time geo-IND");
        assert_eq!(
            Recommendation::PermanentObfuscation.to_string(),
            "permanent obfuscation"
        );
    }
}
