use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use privlocad_telemetry::{Counter, Determinism, Gauge, Histogram, Telemetry, Tracer};
use rand::rngs::StdRng;
use rand::Rng;

use crate::protocol::{split_sequenced, ClientRequest, EdgeResponse, ErrorCode, FrameError};
use crate::recovery::CommittedLog;
use crate::{EdgeDevice, SystemConfig, SystemError};

/// RNG stream index reserved for the supervisor's backoff jitter, far
/// away from the per-operation streams the devices derive.
const SUPERVISOR_STREAM: u64 = u64::MAX - 1;

/// An encoded request frame, tagged with the sending client's identity
/// (for per-connection malformed-frame accounting) and paired with the
/// channel its response frame is sent back on. Responses travel as
/// [`Bytes`] so a batched wakeup can encode every response into one block
/// and send O(1) slices of it.
#[derive(Debug)]
struct Envelope {
    client: u64,
    frame: Vec<u8>,
    reply: SyncSender<Bytes>,
}

/// A handle for talking to a running [`EdgeServer`] from any thread.
///
/// Cloneable; all clones feed the same serving loop, and each clone has
/// its own client identity for the server's per-connection error
/// accounting. Requests and responses cross the transport in their
/// binary frame encoding, exactly as they would over a radio link.
#[derive(Debug)]
pub struct EdgeHandle {
    tx: SyncSender<Envelope>,
    client: u64,
    next_client: Arc<AtomicU64>,
    metrics: Arc<ServerMetrics>,
}

impl Clone for EdgeHandle {
    fn clone(&self) -> Self {
        EdgeHandle {
            tx: self.tx.clone(),
            client: self.next_client.fetch_add(1, Ordering::Relaxed),
            next_client: Arc::clone(&self.next_client),
            metrics: Arc::clone(&self.metrics),
        }
    }
}

/// Errors surfaced by [`EdgeHandle`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The serving loop has shut down.
    Disconnected,
    /// A frame failed to decode.
    Frame(FrameError),
    /// The server answered with an unexpected response type.
    UnexpectedResponse,
    /// The server rejected this client's frame as malformed. After
    /// `strikes_left` more consecutive malformed frames the client is
    /// dropped.
    Malformed {
        /// Consecutive malformed frames left before the server drops
        /// this client.
        strikes_left: u32,
    },
    /// The request queue is full; back off and retry
    /// ([`EdgeHandle::call_with_retry`]) or shed the request.
    Overloaded,
    /// The serving worker failed permanently after `restarts` supervised
    /// restarts.
    WorkerFailed {
        /// How many times the supervisor restarted the worker before
        /// giving up.
        restarts: u32,
    },
    /// The server rejected a sequenced frame as older than its dedup
    /// window: the cached response is gone, and re-serving would
    /// double-apply the request.
    StaleSequence {
        /// The rejected sequence number.
        seq: u32,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "edge server disconnected"),
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::UnexpectedResponse => write!(f, "unexpected response type"),
            TransportError::Malformed { strikes_left } => {
                write!(f, "server rejected malformed frame ({strikes_left} strikes left)")
            }
            TransportError::Overloaded => write!(f, "edge server request queue is full"),
            TransportError::WorkerFailed { restarts } => {
                write!(f, "edge worker failed permanently after {restarts} restarts")
            }
            TransportError::StaleSequence { seq } => {
                write!(f, "server rejected sequence number {seq} as older than its dedup window")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// Client-side retry policy for [`EdgeHandle::call_with_retry`]: a
/// bounded attempt budget with exponential, wall-clock-free backoff
/// (cooperative yield spins), so overload handling is deterministic and
/// testable without sleeping on a real clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1), for
    /// [`TransportError::Overloaded`] rejections.
    pub max_attempts: u32,
    /// Total attempts, including the first (minimum 1), for
    /// [`TransportError::Disconnected`] — its own budget, separate from
    /// the overload one: during a supervised shard restart the transport
    /// briefly has no live endpoint, and a bounded reconnect retry
    /// bridges the gap (the fabric swaps the healed shard's handle in
    /// between attempts — see [`crate::fabric`]). `1` fails fast, the
    /// pre-fabric behaviour.
    pub disconnect_attempts: u32,
    /// Yield spins before the first retry; doubles every retry.
    pub backoff_base: u32,
    /// Upper bound on spins for one backoff step.
    pub backoff_cap: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            disconnect_attempts: 2,
            backoff_base: 32,
            backoff_cap: 4_096,
        }
    }
}

impl RetryPolicy {
    fn spins(&self, attempt: u32) -> u32 {
        let exp = attempt.min(16);
        self.backoff_base.saturating_mul(1 << exp).min(self.backoff_cap)
    }
}

impl EdgeHandle {
    /// Sends one request frame and waits for the response frame, blocking
    /// while the request queue is full.
    pub fn call(&self, request: ClientRequest) -> Result<EdgeResponse, TransportError> {
        self.call_raw(request.encode().to_vec())
    }

    /// [`EdgeHandle::call`] with reject-instead-of-block overload
    /// semantics: a full request queue fails fast with
    /// [`TransportError::Overloaded`] instead of parking the caller.
    pub fn try_call(&self, request: ClientRequest) -> Result<EdgeResponse, TransportError> {
        self.try_call_raw(request.encode().to_vec())
    }

    /// [`EdgeHandle::try_call`] with a deterministic retry budget: on
    /// [`TransportError::Overloaded`], backs off (bounded exponential
    /// yield spins — no wall clock) and retries until `policy` is
    /// exhausted. A transient [`TransportError::Disconnected`] — the
    /// window where a supervised restart has torn the old endpoint down
    /// — is retried too, on its own
    /// [`RetryPolicy::disconnect_attempts`] budget.
    pub fn call_with_retry(
        &self,
        request: ClientRequest,
        policy: &RetryPolicy,
    ) -> Result<EdgeResponse, TransportError> {
        let frame = request.encode().to_vec();
        let overload_budget = policy.max_attempts.max(1);
        let disconnect_budget = policy.disconnect_attempts.max(1);
        let mut overloads = 0;
        let mut disconnects = 0;
        loop {
            match self.try_call_raw(frame.clone()) {
                Err(TransportError::Overloaded) => {
                    overloads += 1;
                    if overloads >= overload_budget {
                        return Err(TransportError::Overloaded);
                    }
                    for _ in 0..policy.spins(overloads - 1) {
                        std::thread::yield_now();
                    }
                }
                Err(TransportError::Disconnected) => {
                    disconnects += 1;
                    if disconnects >= disconnect_budget {
                        return Err(TransportError::Disconnected);
                    }
                    self.metrics.disconnect_retries.inc();
                    for _ in 0..policy.spins(disconnects - 1) {
                        std::thread::yield_now();
                    }
                }
                outcome => return outcome,
            }
        }
    }

    /// Sends a pre-encoded request frame — possibly corrupted, which is
    /// exactly what the chaos harness does to exercise the server's
    /// hardened decode path — and waits for the response frame.
    pub fn call_raw(&self, frame: Vec<u8>) -> Result<EdgeResponse, TransportError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.metrics.queue_depth.add(1);
        if self
            .tx
            .send(Envelope { client: self.client, frame, reply: reply_tx })
            .is_err()
        {
            self.metrics.queue_depth.sub(1);
            return Err(TransportError::Disconnected);
        }
        self.receive(&reply_rx)
    }

    /// [`EdgeHandle::call_raw`] with reject-instead-of-block overload
    /// semantics.
    pub fn try_call_raw(&self, frame: Vec<u8>) -> Result<EdgeResponse, TransportError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.metrics.queue_depth.add(1);
        match self.tx.try_send(Envelope { client: self.client, frame, reply: reply_tx }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.metrics.queue_depth.sub(1);
                self.metrics.overload_rejections.inc();
                return Err(TransportError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.queue_depth.sub(1);
                return Err(TransportError::Disconnected);
            }
        }
        self.receive(&reply_rx)
    }

    fn receive(&self, reply_rx: &Receiver<Bytes>) -> Result<EdgeResponse, TransportError> {
        let frame = reply_rx.recv().map_err(|_| TransportError::Disconnected)?;
        match EdgeResponse::decode(&frame)? {
            EdgeResponse::Error { code: ErrorCode::Malformed, detail } => {
                Err(TransportError::Malformed { strikes_left: detail })
            }
            EdgeResponse::Error { code: ErrorCode::WorkerFailed, detail } => {
                Err(TransportError::WorkerFailed { restarts: detail })
            }
            EdgeResponse::Error { code: ErrorCode::StaleSequence, detail } => {
                Err(TransportError::StaleSequence { seq: detail })
            }
            response => Ok(response),
        }
    }

    /// Reports a check-in (fire-and-forget semantics at the API level; the
    /// transport still acknowledges).
    pub fn check_in(
        &self,
        user: UserId,
        location: Point,
        timestamp: i64,
    ) -> Result<(), TransportError> {
        match self.call(ClientRequest::CheckIn { user, location, timestamp })? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Asks for the location to report for an ad request.
    pub fn request_location(
        &self,
        user: UserId,
        location: Point,
    ) -> Result<Point, TransportError> {
        match self.call(ClientRequest::RequestLocation { user, location })? {
            EdgeResponse::ReportedLocation { location } => Ok(location),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Closes the user's profile window.
    pub fn finalize_window(&self, user: UserId) -> Result<u32, TransportError> {
        match self.call(ClientRequest::FinalizeWindow { user })? {
            EdgeResponse::WindowClosed { fresh_obfuscations } => Ok(fresh_obfuscations),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Stops the serving loop.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        match self.call(ClientRequest::Shutdown)? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }
}

/// Tuning knobs for a supervised [`EdgeServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Request-queue capacity; beyond it, [`EdgeHandle::try_call`]
    /// rejects with [`TransportError::Overloaded`] (and [`EdgeHandle::call`]
    /// blocks).
    pub queue_capacity: usize,
    /// Consecutive malformed frames from one client before the server
    /// drops that client instead of answering it.
    pub malformed_limit: u32,
    /// Worker restarts the supervisor attempts before failing the server
    /// permanently with [`SystemError::WorkerFailed`].
    pub max_restarts: u32,
    /// Backoff spins (cooperative yields) before the first restart;
    /// doubles every restart.
    pub backoff_base: u32,
    /// Upper bound on spins for one backoff step.
    pub backoff_cap: u32,
    /// Deterministic crash schedule, for supervision tests and the chaos
    /// harness. Empty in production.
    pub fault_plan: FaultPlan,
    /// Serve from per-user RNG streams
    /// ([`EdgeDevice::with_per_user_streams`]) instead of one device
    /// stream. Sharded fleets ([`crate::ShardRouter`]) set this so every
    /// user's outputs are invariant to the user→shard partition; the
    /// classic single-device mode keeps the default `false`.
    pub per_user_streams: bool,
    /// The telemetry hub this server publishes into: serving metrics,
    /// logical-clock spans, and the privacy-budget ledger. Defaults to a
    /// private hub; hand several servers a clone of one hub to aggregate a
    /// fleet (cloning `ServerOptions` shares the hub — it is a handle).
    pub telemetry: Telemetry,
    /// Per-lane exactly-once dedup depth: how many committed sequenced
    /// responses each user lane caches for duplicate replay (see
    /// [`crate::protocol::split_sequenced`]). A duplicate older than the
    /// window is rejected with [`TransportError::StaleSequence`] instead
    /// of being double-applied. Clamped to at least 1.
    pub dedup_window: usize,
    /// Start the device from this committed checkpoint instead of empty
    /// — how the fabric respawns a permanently failed shard without
    /// re-drawing a single released candidate ([`crate::fabric`]). An
    /// unreadable checkpoint fails the spawn (the serving loop exits
    /// with the recovery error; clients observe a disconnect), never
    /// silently serves from empty state.
    pub restore_from: Option<Bytes>,
    /// Where served ad requests are emitted as OpenRTB-lite bid requests.
    /// `None` (the default) serves without a bid pipeline. The sink is
    /// shared — hand every shard of a fleet a clone of one `Arc` — and it
    /// outlives individual workers, so per-device sequence numbers stay
    /// continuous across restarts and fabric heals. Emission happens in
    /// the commit phase, strictly after the checkpoint, giving each
    /// *applied* request exactly one bid (duplicates and rolled-back
    /// batches never emit); only the released obfuscated candidate from
    /// the response crosses into the sink.
    pub bid_sink: Option<Arc<privlocad_openrtb::BidSink>>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            queue_capacity: 1_024,
            malformed_limit: 8,
            max_restarts: 8,
            backoff_base: 16,
            backoff_cap: 4_096,
            fault_plan: FaultPlan::none(),
            per_user_streams: false,
            telemetry: Telemetry::new(),
            dedup_window: 32,
            restore_from: None,
            bid_sink: None,
        }
    }
}

/// A deterministic schedule of injected worker crashes: the worker
/// panics just before serving request ordinal `k` (0-based, counted over
/// successfully decoded, non-shutdown requests across the server's
/// lifetime). Each point fires exactly once — the retry after the
/// supervised restart proceeds past it, like a real transient fault.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kill_at: Vec<u64>,
}

impl FaultPlan {
    /// The empty schedule: no injected faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A schedule crashing the worker at each listed request ordinal.
    pub fn kill_at<I: IntoIterator<Item = u64>>(points: I) -> Self {
        let mut kill_at: Vec<u64> = points.into_iter().collect();
        kill_at.sort_unstable();
        kill_at.dedup();
        FaultPlan { kill_at }
    }

    /// Number of crash points remaining.
    pub fn remaining(&self) -> usize {
        self.kill_at.len()
    }

    /// Removes and returns the first crash point in `[start, end)`.
    fn take(&mut self, start: u64, end: u64) -> Option<u64> {
        let i = self.kill_at.iter().position(|&k| start <= k && k < end)?;
        Some(self.kill_at.remove(i))
    }
}

/// Registry-backed serving metrics: one set of pre-registered handles
/// shared by the serving loop and every client handle, publishing into
/// the hub carried by [`ServerOptions::telemetry`].
///
/// Replaces the old hand-rolled atomic `HealthCounters` — the same
/// numbers now come out of the telemetry registry, so they appear in the
/// JSON export alongside everything else while [`EdgeServer::health`]
/// keeps its [`HealthSnapshot`] API.
#[derive(Debug)]
struct ServerMetrics {
    requests: Counter,
    restarts: Counter,
    malformed_frames: Counter,
    dropped_clients: Counter,
    failed_replies: Counter,
    overload_rejections: Counter,
    checkpoints: Counter,
    wakeups: Counter,
    duplicates_suppressed: Counter,
    stale_rejections: Counter,
    disconnect_retries: Counter,
    queue_depth: Gauge,
    batch_size: Histogram,
    checkpoint_bytes: Histogram,
}

impl ServerMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.registry();
        use Determinism::{Deterministic, Scheduling};
        // Request, decode, and restart counts are pure functions of the
        // workload and seed; anything keyed to wakeup boundaries (batch
        // shapes, checkpoint cadence) or cross-thread races (overload,
        // failed replies) is scheduling-dependent and excluded from the
        // deterministic export.
        ServerMetrics {
            requests: registry.counter("server.requests", Deterministic),
            // Restarts count *caught crashes*, which land wherever the
            // fault plan (or the real world) puts them relative to wakeup
            // boundaries — scheduling-dependent, like the recovery
            // restores they trigger.
            restarts: registry.counter("server.restarts", Scheduling),
            malformed_frames: registry.counter("server.malformed_frames", Deterministic),
            dropped_clients: registry.counter("server.dropped_clients", Deterministic),
            failed_replies: registry.counter("server.failed_replies", Scheduling),
            overload_rejections: registry.counter("server.overload_rejections", Scheduling),
            checkpoints: registry.counter("server.checkpoints", Scheduling),
            wakeups: registry.counter("server.wakeups", Scheduling),
            // Duplicate suppression counts logical re-deliveries, which a
            // deterministic per-lane fault plan places independently of
            // batch boundaries and the user→shard partition.
            duplicates_suppressed: registry.counter("server.duplicates_suppressed", Deterministic),
            stale_rejections: registry.counter("server.stale_rejections", Deterministic),
            // Reconnect retries land wherever a restart races the caller —
            // scheduling-dependent, like the restarts that cause them.
            disconnect_retries: registry.counter("server.disconnect_retries", Scheduling),
            queue_depth: registry.gauge("server.queue_depth", Scheduling),
            batch_size: registry.histogram("server.batch_size", Scheduling),
            checkpoint_bytes: registry.histogram("server.checkpoint_bytes", Scheduling),
        }
    }

    fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            restarts: self.restarts.value(),
            malformed_frames: self.malformed_frames.value(),
            dropped_clients: self.dropped_clients.value(),
            failed_replies: self.failed_replies.value(),
            overload_rejections: self.overload_rejections.value(),
            queue_depth: self.queue_depth.value().max(0) as u64,
            checkpoints: self.checkpoints.value(),
            duplicates_suppressed: self.duplicates_suppressed.value(),
        }
    }
}

/// A point-in-time health snapshot of a supervised [`EdgeServer`] — what
/// a fleet operator scrapes to see a device degrading before it fails.
///
/// Backed by the telemetry registry: when several servers share one hub
/// (see [`ServerOptions::telemetry`]), the numbers are hub-wide totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Supervised worker restarts so far.
    pub restarts: u64,
    /// Malformed request frames rejected by the hardened decode path.
    pub malformed_frames: u64,
    /// Clients dropped for exceeding the consecutive-malformed limit.
    pub dropped_clients: u64,
    /// Pending replies failed explicitly (worker gave up or queue was
    /// abandoned) instead of left hanging.
    pub failed_replies: u64,
    /// Requests rejected with `Overloaded` by a full queue.
    pub overload_rejections: u64,
    /// Requests currently queued (approximate under concurrency).
    pub queue_depth: u64,
    /// Recovery checkpoints committed (one per delivered batch).
    pub checkpoints: u64,
    /// Duplicate sequenced deliveries answered from the dedup window's
    /// cached response frames instead of being re-applied.
    pub duplicates_suppressed: u64,
}

/// An edge device behind a supervised message-passing serving loop.
///
/// [`EdgeServer::spawn`] starts a dedicated thread owning an
/// [`EdgeDevice`] and returns a cloneable [`EdgeHandle`]; any number of
/// client threads can then check in and request locations concurrently,
/// with the loop serializing access — the deployment shape of Fig. 5
/// where one edge node fronts many nearby mobile users.
///
/// The loop runs under a supervisor: worker panics are caught, the device
/// is restored from its last committed recovery checkpoint (candidates,
/// posterior tables, window buffers, and RNG position — see
/// [`crate::recovery`]), and the interrupted batch is retried once,
/// bit-for-bit. Responses are delivered only after a batch commits, so a
/// crash can never expose state that the restore then rolls back. A
/// worker that keeps dying fails pending replies explicitly
/// ([`TransportError::WorkerFailed`]) rather than hanging its clients.
///
/// # Examples
///
/// ```
/// use privlocad::{EdgeServer, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let (server, handle) = EdgeServer::spawn(SystemConfig::builder().build()?, 5);
/// let user = UserId::new(1);
/// for t in 0..30 {
///     handle.check_in(user, Point::new(100.0, 100.0), t)?;
/// }
/// assert_eq!(handle.finalize_window(user)?, 1);
/// let reported = handle.request_location(user, Point::new(100.0, 100.0))?;
/// assert!(reported.is_finite());
/// handle.shutdown()?;
/// let edge = server.join()?;
/// assert_eq!(edge.user_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EdgeServer {
    thread: std::thread::JoinHandle<Result<EdgeDevice, SystemError>>,
    metrics: Arc<ServerMetrics>,
    telemetry: Telemetry,
    checkpoint: Arc<Mutex<Option<CommittedLog>>>,
}

impl EdgeServer {
    /// Spawns the serving loop with default [`ServerOptions`] and returns
    /// the server plus a client handle.
    pub fn spawn(config: SystemConfig, seed: u64) -> (EdgeServer, EdgeHandle) {
        EdgeServer::spawn_with(config, seed, ServerOptions::default())
    }

    /// Spawns the serving loop with explicit options.
    pub fn spawn_with(
        config: SystemConfig,
        seed: u64,
        options: ServerOptions,
    ) -> (EdgeServer, EdgeHandle) {
        let (tx, rx): (SyncSender<Envelope>, Receiver<_>) =
            sync_channel(options.queue_capacity.max(1));
        let telemetry = options.telemetry.clone();
        let metrics = Arc::new(ServerMetrics::new(&telemetry));
        let worker_metrics = Arc::clone(&metrics);
        let checkpoint = Arc::new(Mutex::new(None));
        let worker_checkpoint = Arc::clone(&checkpoint);
        let thread = std::thread::spawn(move || {
            serve(config, seed, rx, options, worker_metrics, worker_checkpoint)
        });
        let handle = EdgeHandle {
            tx,
            client: 0,
            // lint:allow(telemetry-hygiene): client-identity allocator, not a metric — never exported
            next_client: Arc::new(AtomicU64::new(1)),
            metrics: Arc::clone(&metrics),
        };
        (EdgeServer { thread, metrics, telemetry, checkpoint }, handle)
    }

    /// The last committed recovery checkpoint (empty until the serving
    /// loop has started). The loop maintains the committed state
    /// incrementally — O(batch) per commit, not O(device) — and this
    /// call materializes it into the versioned v2 byte image on demand.
    /// This is what the fabric feeds back through
    /// [`ServerOptions::restore_from`] to respawn a permanently failed
    /// shard from its committed state — released candidate sets, window
    /// buffers, and RNG positions all resume exactly, so not a single
    /// released candidate is ever re-drawn by the replacement.
    pub fn last_checkpoint(&self) -> Bytes {
        self.checkpoint.lock().as_ref().map_or_else(Bytes::new, CommittedLog::materialize)
    }

    /// The server's current health counters, read from the telemetry
    /// registry. Hub-wide totals when servers share a hub.
    pub fn health(&self) -> HealthSnapshot {
        self.metrics.snapshot()
    }

    /// The telemetry hub this server publishes into (the one passed via
    /// [`ServerOptions::telemetry`], or the private default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Waits for the serving loop to finish (after a shutdown request or
    /// once every handle is dropped) and returns the edge device with its
    /// final state for inspection.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::WorkerFailed`] if the worker died past its
    /// restart budget (its clients all received explicit failures, never
    /// a hung channel).
    pub fn join(self) -> Result<EdgeDevice, SystemError> {
        let restarts = self.metrics.restarts.value() as u32;
        match self.thread.join() {
            Ok(outcome) => outcome,
            // The supervisor itself never panics by design; if it somehow
            // does, surface a structured error instead of re-panicking.
            Err(_) => Err(SystemError::WorkerFailed { restarts }),
        }
    }
}

/// What the serving loop decided to do with one envelope of a batch.
enum Verdict {
    /// Serve it: reply with response at this index of the batch output.
    /// A same-batch duplicate of a sequenced request shares its
    /// original's index, so both clients receive the one response.
    Serve(usize),
    /// A duplicate of an already-committed sequenced request: reply with
    /// the cached response frame, byte-for-byte what the original got,
    /// without re-applying anything.
    Replay(Bytes),
    /// A sequenced request older than the dedup window: the cached
    /// response is gone and re-serving would double-apply, so reject it
    /// explicitly with [`ErrorCode::StaleSequence`].
    RejectStale(u32),
    /// Reject it as malformed, with this many strikes left.
    Reject(u32),
    /// Drop it silently (banned client): the reply channel closes and the
    /// client observes a disconnect.
    Drop,
}

/// Per-user exactly-once state: the next expected sequence number (one
/// past the highest committed) and the window of recently committed
/// `(seq, response frame)` pairs available for duplicate replay.
#[derive(Debug, Default)]
struct LaneState {
    next_seq: u32,
    window: VecDeque<(u32, Bytes)>,
}

/// Books one malformed frame against its sender: a strike with an
/// explicit countdown reply while under the limit, a ban (silent drop,
/// the client observes a disconnect) once the limit is reached.
fn book_malformed(
    client: u64,
    strikes: &mut BTreeMap<u64, u32>,
    banned: &mut BTreeSet<u64>,
    malformed_limit: u32,
    metrics: &ServerMetrics,
) -> Verdict {
    metrics.malformed_frames.inc();
    let count = strikes.entry(client).or_insert(0);
    *count += 1;
    if *count >= malformed_limit {
        strikes.remove(&client);
        banned.insert(client);
        metrics.dropped_clients.inc();
        Verdict::Drop
    } else {
        Verdict::Reject(malformed_limit - *count)
    }
}

fn serve(
    config: SystemConfig,
    seed: u64,
    rx: Receiver<Envelope>,
    options: ServerOptions,
    metrics: Arc<ServerMetrics>,
    checkpoint_cell: Arc<Mutex<Option<CommittedLog>>>,
) -> Result<EdgeDevice, SystemError> {
    let mut edge = if options.per_user_streams {
        EdgeDevice::with_per_user_streams(config, seed)
    } else {
        EdgeDevice::new(config, seed)
    };
    if let Some(snapshot) = options.restore_from.as_ref() {
        // Resume from the committed checkpoint of a failed predecessor.
        // An unreadable snapshot fails the spawn outright — serving from
        // empty state here would silently re-draw released candidates.
        restore_checkpoint(snapshot, config, &mut edge)?;
    }
    let telemetry = options.telemetry.clone();
    // Logical-clock tracer for the per-wakeup pipeline stages. The clock
    // advances one tick per decoded request — never wall time — so span
    // boundaries are reproducible. With the `trace` feature off this is a
    // zero-sized no-op.
    let tracer = Tracer::default();
    // The committed recovery checkpoint: the state behind the versioned,
    // checksummed byte log described in `crate::recovery`, maintained
    // incrementally — every delivered batch re-captures only the users it
    // touched (O(batch) per commit, not O(device)) and the byte image is
    // materialized only on the read paths (rollback after a caught panic,
    // shard respawn, `EdgeServer::last_checkpoint`). Replies go out only
    // after the commit, so restoring it can never roll back state a
    // client has already observed.
    *checkpoint_cell.lock() = Some(CommittedLog::rebuild(&edge));
    let mut backoff_rng = seeded(derive_seed(seed, SUPERVISOR_STREAM));
    let mut fault_plan = options.fault_plan.clone();
    let malformed_limit = options.malformed_limit.max(1);
    let dedup_window = options.dedup_window.max(1);
    // Served-request ordinal (successfully decoded, non-shutdown), the
    // clock the fault plan runs on.
    let mut served: u64 = 0;
    let mut restarts: u32 = 0;
    // Per-client consecutive-malformed counts and the ban set. BTree
    // keeps health iteration order deterministic.
    let mut strikes: BTreeMap<u64, u32> = BTreeMap::new();
    let mut banned: BTreeSet<u64> = BTreeSet::new();
    // Exactly-once state: one lane per user carrying its sequence
    // horizon and replay window. Committed response frames are inserted
    // at commit time only, so a batch the supervisor rolls back leaves
    // no trace here and its retry is a first application.
    let mut lanes: BTreeMap<u32, LaneState> = BTreeMap::new();
    // Per-batch scratch: first index of each fresh (lane, seq) in the
    // batch, and the (lane, seq, response index) triples to cache at
    // commit.
    let mut batch_seen: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    let mut pending_cache: Vec<(u32, u32, usize)> = Vec::new();

    // Scratch reused across wakeups: one blocking recv per batch, then the
    // queue is drained non-blocking and handed to `EdgeDevice::serve_batch`
    // in one call, so the per-wakeup cost is amortized over the batch.
    let mut batch: Vec<Envelope> = Vec::new();
    let mut verdicts: Vec<Verdict> = Vec::new();
    let mut requests: Vec<ClientRequest> = Vec::new();
    let mut touched: Vec<UserId> = Vec::new();
    let mut responses: Vec<EdgeResponse> = Vec::new();
    let mut frame_buf: Vec<u8> = Vec::new();
    let mut offsets: Vec<std::ops::Range<usize>> = Vec::new();

    'accept: while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while let Ok(next) = rx.try_recv() {
            batch.push(next);
        }
        metrics.wakeups.inc();
        metrics.batch_size.observe(batch.len() as u64);
        metrics.queue_depth.sub(batch.len() as i64);

        // Decode phase — total: every frame passes the hardened strict
        // decode, and malformed input costs its sender strikes, never the
        // worker its life.
        verdicts.clear();
        requests.clear();
        batch_seen.clear();
        pending_cache.clear();
        let mut shutdown_at = None;
        {
            let _span = tracer.span("server.decode");
            for (i, envelope) in batch.iter().enumerate() {
                if banned.contains(&envelope.client) {
                    verdicts.push(Verdict::Drop);
                    continue;
                }
                // Peel the exactly-once envelope first. The checksum over
                // (lane, seq, inner) fails closed: a corrupted header can
                // never alias another lane's cached response, it lands on
                // the malformed path like any other damaged frame.
                let (sequenced, inner) = match split_sequenced(&envelope.frame) {
                    Ok(Some((header, inner))) => (Some(header), inner),
                    Ok(None) => (None, envelope.frame.as_slice()),
                    Err(_) => {
                        verdicts.push(book_malformed(
                            envelope.client,
                            &mut strikes,
                            &mut banned,
                            malformed_limit,
                            &metrics,
                        ));
                        continue;
                    }
                };
                if let Some(header) = sequenced {
                    let lane = lanes.entry(header.lane).or_default();
                    if let Some((_, cached)) =
                        lane.window.iter().find(|(seq, _)| *seq == header.seq)
                    {
                        // Committed duplicate: replay the exact response
                        // frame the original received.
                        strikes.remove(&envelope.client);
                        metrics.duplicates_suppressed.inc();
                        verdicts.push(Verdict::Replay(cached.clone()));
                        continue;
                    }
                    if let Some(&index) = batch_seen.get(&(header.lane, header.seq)) {
                        // Same-batch duplicate: share the original's
                        // response slot; it is applied exactly once.
                        strikes.remove(&envelope.client);
                        metrics.duplicates_suppressed.inc();
                        verdicts.push(Verdict::Serve(index));
                        continue;
                    }
                    if header.seq < lane.next_seq {
                        // Older than the replay window: re-serving would
                        // double-apply, so reject explicitly instead.
                        strikes.remove(&envelope.client);
                        metrics.stale_rejections.inc();
                        verdicts.push(Verdict::RejectStale(header.seq));
                        continue;
                    }
                }
                match ClientRequest::decode(inner) {
                    Ok(ClientRequest::Shutdown) => {
                        shutdown_at = Some(i);
                        break;
                    }
                    Ok(request) => {
                        strikes.remove(&envelope.client);
                        if let Some(header) = sequenced {
                            batch_seen.insert((header.lane, header.seq), requests.len());
                            pending_cache.push((header.lane, header.seq, requests.len()));
                        }
                        verdicts.push(Verdict::Serve(requests.len()));
                        requests.push(request);
                    }
                    Err(_) => {
                        verdicts.push(book_malformed(
                            envelope.client,
                            &mut strikes,
                            &mut banned,
                            malformed_limit,
                            &metrics,
                        ));
                    }
                }
            }
        }

        // Serve phase, under the supervisor. A panic rolls the device
        // back to the committed checkpoint (unwinding leaves `edge` in an
        // unknown state, which is exactly why it is replaced wholesale —
        // that is what makes the `AssertUnwindSafe` sound) and retries
        // the batch once: the restored RNG position makes the retry
        // bit-for-bit identical, and injected fault points have already
        // been consumed. A second panic on the same batch fails its
        // replies explicitly and drops the batch.
        let mut attempt = 0;
        loop {
            responses.clear();
            let outcome = {
                let _span = tracer.span("server.serve_batch");
                catch_unwind(AssertUnwindSafe(|| {
                    serve_requests(&mut edge, &requests, &mut responses, &mut fault_plan, served)
                }))
            };
            if outcome.is_ok() {
                break;
            }
            restarts += 1;
            metrics.restarts.inc();
            // Materialize the committed image only here, on the rollback
            // path — the hot loop never pays for the full encode.
            let restored = restarts <= options.max_restarts
                && checkpoint_cell
                    .lock()
                    .as_ref()
                    .map(CommittedLog::materialize)
                    .is_some_and(|log| restore_checkpoint(&log, config, &mut edge).is_ok());
            if restored {
                // The restored device is a fresh allocation graph, so the
                // committed log is rebuilt wholesale: pool pointer
                // identities must track the live `Arc`s.
                *checkpoint_cell.lock() = Some(CommittedLog::rebuild(&edge));
            }
            if !restored {
                // Past the restart budget (or the checkpoint itself is
                // unreadable): fail every pending reply explicitly and
                // surface a structured error — never a hang, never an
                // escaped panic. The device is in an unknown post-panic
                // state, so its undrained telemetry dies with it — only
                // committed batches ever reach the ledger.
                fail_replies(batch.drain(..), restarts, &metrics);
                while let Ok(envelope) = rx.try_recv() {
                    metrics.queue_depth.sub(1);
                    fail_replies(std::iter::once(envelope), restarts, &metrics);
                }
                return Err(SystemError::WorkerFailed { restarts });
            }
            backoff(&mut backoff_rng, restarts, &options);
            attempt += 1;
            if attempt >= 2 {
                // The batch poisoned the worker twice: reply with an
                // explicit failure and move on with the restored device.
                fail_replies(batch.drain(..), restarts, &metrics);
                continue 'accept;
            }
        }
        served += requests.len() as u64;
        metrics.requests.add(requests.len() as u64);
        tracer.advance(requests.len() as u64);

        // Commit phase: checkpoint first, deliver second. A crash between
        // the two replays the batch from the *old* checkpoint without
        // having exposed anything, so clients never observe rolled-back
        // state. The committed log is updated incrementally: only the
        // users this batch touched are re-captured (plus the device-wide
        // generator words), so the commit costs O(batch) — the full
        // encode happens only if someone actually restores or reads it.
        touched.clear();
        touched.extend(requests.iter().filter_map(ClientRequest::user));
        touched.sort_unstable();
        touched.dedup();
        {
            let mut cell = checkpoint_cell.lock();
            let committed = cell.get_or_insert_with(|| CommittedLog::rebuild(&edge));
            committed.set_rng(edge.checkpoint_header().0);
            for &user in &touched {
                if let Some(state) = edge.user_state(user) {
                    committed.capture_user(user, state);
                }
            }
            metrics.checkpoint_bytes.observe(committed.encoded_len() as u64);
        }
        metrics.checkpoints.inc();
        // Telemetry drains strictly after the commit: a crash wipes any
        // undelivered ledger events together with the device state they
        // described, keeping budget-spend delivery exactly-once.
        edge.drain_telemetry(&telemetry);
        // Bid emission shares the same post-commit slot and therefore the
        // same exactly-once guarantee: `requests`/`responses` are parallel
        // and hold only the non-duplicate requests this batch *applied*
        // (replays and same-batch duplicates never enter them; a killed
        // batch rolls back before reaching here).
        if let Some(sink) = options.bid_sink.as_ref() {
            emit_bids(sink, &requests, &responses);
        }

        // One encode block per wakeup: every response frame lands in
        // `frame_buf`, is frozen into a single shared allocation, and each
        // client gets a zero-copy slice — no per-response allocation.
        frame_buf.clear();
        offsets.clear();
        {
            let _span = tracer.span("server.encode");
            for response in &responses {
                let start = frame_buf.len();
                response.encode_into(&mut frame_buf);
                offsets.push(start..frame_buf.len());
            }
        }
        let block = Bytes::copy_from_slice(&frame_buf);
        // Dedup-window commit, strictly before any reply leaves: the
        // cached frames are the exact bytes the clients are about to
        // receive, so a duplicate racing in behind its original can only
        // ever observe the committed response.
        for &(lane_id, seq, index) in &pending_cache {
            let lane = lanes.entry(lane_id).or_default();
            lane.window.push_back((seq, block.slice(offsets[index].clone())));
            while lane.window.len() > dedup_window {
                lane.window.pop_front();
            }
            lane.next_seq = lane.next_seq.max(seq.saturating_add(1));
        }
        for (envelope, verdict) in batch.iter().zip(verdicts.iter()) {
            match verdict {
                Verdict::Serve(i) => {
                    let _ = envelope.reply.send(block.slice(offsets[*i].clone()));
                }
                Verdict::Replay(frame) => {
                    let _ = envelope.reply.send(frame.clone());
                }
                Verdict::RejectStale(seq) => {
                    let _ = envelope.reply.send(
                        EdgeResponse::Error { code: ErrorCode::StaleSequence, detail: *seq }
                            .encode(),
                    );
                }
                Verdict::Reject(strikes_left) => {
                    let _ = envelope.reply.send(
                        EdgeResponse::Error {
                            code: ErrorCode::Malformed,
                            detail: *strikes_left,
                        }
                        .encode(),
                    );
                }
                Verdict::Drop => {}
            }
        }
        if let Some(i) = shutdown_at {
            // Ack the shutdown itself; envelopes queued behind it are
            // dropped, so their clients observe a disconnect — the same
            // outcome as racing a shutdown in the unbatched loop.
            let _ = batch[i].reply.send(EdgeResponse::Ack.encode());
            break;
        }
        // Drop the batch's envelopes now: a `Drop` verdict answers its
        // banned client by closing the reply channel, which must not wait
        // for the next wakeup.
        batch.clear();
    }
    // Final drain: a restore whose batch was then abandoned (the poisoned
    // twice-crashing case) leaves its restore events pending with no later
    // commit to carry them.
    edge.drain_telemetry(&telemetry);
    Ok(edge)
}

/// Serves one decoded batch, injecting any scheduled crash: requests
/// before the kill point are served (mutating device state — the
/// realistic partial-failure shape the checkpoint restore must undo),
/// then the worker dies.
fn serve_requests(
    edge: &mut EdgeDevice,
    requests: &[ClientRequest],
    responses: &mut Vec<EdgeResponse>,
    fault_plan: &mut FaultPlan,
    served_before: u64,
) {
    match fault_plan.take(served_before, served_before + requests.len() as u64) {
        None => edge.serve_batch(requests, responses),
        Some(kill_at) => {
            let prefix = (kill_at - served_before) as usize;
            edge.serve_batch(&requests[..prefix], responses);
            // lint:allow(panic-hygiene): the injected fault IS a panic — the supervisor's catch_unwind/restore path is what it exercises
            panic!("injected fault: worker killed before request {kill_at}");
        }
    }
}

/// Decodes the committed checkpoint and swaps the restored device in.
fn restore_checkpoint(
    log: &Bytes,
    config: SystemConfig,
    edge: &mut EdgeDevice,
) -> Result<(), crate::recovery::RecoveryError> {
    *edge = EdgeDevice::restore_from_checkpoint(config, log)?;
    Ok(())
}

/// Emits one OpenRTB-lite bid request per applied ad request in a
/// committed batch. `requests` and `responses` are the serving loop's
/// parallel vectors, so the `(request, response)` pairs line up
/// one-to-one; only `RequestLocation` entries answered with a
/// `ReportedLocation` produce a bid, and the coordinate that crosses into
/// the sink is the *released* obfuscated candidate out of the response —
/// never the true position. The sink assigns the per-device sequence
/// number (submission count), which the per-user in-order serving
/// contract makes invariant to the user→shard partition.
fn emit_bids(
    sink: &privlocad_openrtb::BidSink,
    requests: &[ClientRequest],
    responses: &[EdgeResponse],
) {
    for (request, response) in requests.iter().zip(responses) {
        if let (
            ClientRequest::RequestLocation { user, .. },
            EdgeResponse::ReportedLocation { location },
        ) = (request, response)
        {
            sink.submit(
                privlocad_openrtb::DeviceId::new(u64::from(user.raw())),
                privlocad_openrtb::Geo::from_point(*location),
            );
        }
    }
}

/// Fails pending replies with an explicit error frame instead of leaving
/// the clients hanging on dead channels.
fn fail_replies(
    envelopes: impl Iterator<Item = Envelope>,
    restarts: u32,
    metrics: &ServerMetrics,
) {
    for envelope in envelopes {
        metrics.failed_replies.inc();
        let _ = envelope.reply.send(
            EdgeResponse::Error { code: ErrorCode::WorkerFailed, detail: restarts }.encode(),
        );
    }
}

/// Bounded, deterministic, wall-clock-free backoff between restarts:
/// exponential in the restart count with seeded jitter, realized as
/// cooperative yields so supervision is testable without real sleeps.
fn backoff(rng: &mut StdRng, restarts: u32, options: &ServerOptions) {
    let exp = restarts.saturating_sub(1).min(16);
    let spins = options
        .backoff_base
        .saturating_mul(1 << exp)
        .min(options.backoff_cap)
        .saturating_add(rng.gen_range(0..options.backoff_base.max(1)));
    for _ in 0..spins {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn() -> (EdgeServer, EdgeHandle) {
        EdgeServer::spawn(SystemConfig::builder().build().unwrap(), 11)
    }

    fn spawn_with(options: ServerOptions) -> (EdgeServer, EdgeHandle) {
        EdgeServer::spawn_with(SystemConfig::builder().build().unwrap(), 11, options)
    }

    #[test]
    fn full_protocol_round_trip() {
        let (server, handle) = spawn();
        let user = UserId::new(3);
        let home = Point::new(10.0, 20.0);
        for t in 0..40 {
            handle.check_in(user, home, t).unwrap();
        }
        assert_eq!(handle.finalize_window(user).unwrap(), 1);
        let reported = handle.request_location(user, home).unwrap();
        assert_ne!(reported, home);
        handle.shutdown().unwrap();
        let edge = server.join().unwrap();
        assert_eq!(edge.user_count(), 1);
        assert!(edge.candidates(user, home).unwrap().contains(&reported));
    }

    #[test]
    fn bid_sink_gets_exactly_one_released_location_per_ad_request() {
        let sink = Arc::new(privlocad_openrtb::BidSink::new());
        let (server, handle) = spawn_with(ServerOptions {
            bid_sink: Some(Arc::clone(&sink)),
            ..ServerOptions::default()
        });
        let user = UserId::new(3);
        let home = Point::new(10.0, 20.0);
        for t in 0..40 {
            handle.check_in(user, home, t).unwrap();
        }
        handle.finalize_window(user).unwrap();
        let first = handle.request_location(user, home).unwrap();
        let second = handle.request_location(user, home).unwrap();
        handle.shutdown().unwrap();
        server.join().unwrap();
        // Check-ins and window closes emit nothing; the two ad requests
        // emit exactly one bid each, carrying the released candidate the
        // client saw — never the true check-in position.
        let pending = sink.drain();
        assert_eq!(pending.len(), 2);
        for (bid, reported) in pending.iter().zip([first, second]) {
            let (decoded, _) = privlocad_openrtb::BidRequest::decode(&bid.frame).unwrap();
            assert_eq!(decoded.device.id.raw(), 3);
            assert_eq!(decoded.device.geo.point(), reported);
            assert_ne!(decoded.device.geo.point(), home);
        }
        assert_eq!(pending[0].seq, 0);
        assert_eq!(pending[1].seq, 1);
    }

    #[test]
    fn many_client_threads_share_one_edge() {
        let (server, handle) = spawn();
        let handles: Vec<_> = (0..6u32)
            .map(|u| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let user = UserId::new(u);
                    let home = Point::new(u as f64 * 3_000.0, 0.0);
                    for t in 0..30 {
                        h.check_in(user, home, t).unwrap();
                    }
                    assert_eq!(h.finalize_window(user).unwrap(), 1);
                    h.request_location(user, home).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_finite());
        }
        handle.shutdown().unwrap();
        assert_eq!(server.join().unwrap().user_count(), 6);
    }

    #[test]
    fn handle_calls_after_shutdown_fail() {
        let (server, handle) = spawn();
        handle.shutdown().unwrap();
        server.join().unwrap();
        let err = handle.check_in(UserId::new(0), Point::ORIGIN, 0).unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
    }

    #[test]
    fn dropping_all_handles_stops_the_loop() {
        let (server, handle) = spawn();
        drop(handle);
        let edge = server.join().unwrap();
        assert_eq!(edge.user_count(), 0);
    }

    #[test]
    fn transport_error_display_and_source() {
        use std::error::Error;
        let e = TransportError::Frame(FrameError::Empty);
        assert!(e.to_string().contains("frame error"));
        assert!(e.source().is_some());
        for e in [
            TransportError::Disconnected,
            TransportError::UnexpectedResponse,
            TransportError::Malformed { strikes_left: 3 },
            TransportError::Overloaded,
            TransportError::WorkerFailed { restarts: 2 },
            TransportError::StaleSequence { seq: 7 },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }

    #[test]
    fn malformed_frames_are_rejected_then_client_dropped() {
        let (server, handle) = spawn_with(ServerOptions {
            malformed_limit: 3,
            ..ServerOptions::default()
        });
        let polluter = handle.clone();
        // Strikes 1 and 2: explicit Malformed rejections with a countdown.
        for strikes_left in [2u32, 1] {
            let err = polluter.call_raw(vec![0xFF, 0x00, 0x01]).unwrap_err();
            assert_eq!(err, TransportError::Malformed { strikes_left });
        }
        // Strike 3: the client is dropped; its reply channel just closes.
        assert_eq!(
            polluter.call_raw(vec![0xFF]).unwrap_err(),
            TransportError::Disconnected
        );
        // And stays dropped even for well-formed frames.
        assert_eq!(
            polluter.check_in(UserId::new(0), Point::ORIGIN, 0).unwrap_err(),
            TransportError::Disconnected
        );
        // The original handle (a different client id) is unaffected.
        handle.check_in(UserId::new(0), Point::ORIGIN, 0).unwrap();
        let health = server.health();
        assert_eq!(health.malformed_frames, 3);
        assert_eq!(health.dropped_clients, 1);
        handle.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn well_formed_frames_reset_the_strike_count() {
        let (server, handle) = spawn_with(ServerOptions {
            malformed_limit: 2,
            ..ServerOptions::default()
        });
        for _ in 0..4 {
            let err = handle.call_raw(vec![0xEE]).unwrap_err();
            assert_eq!(err, TransportError::Malformed { strikes_left: 1 });
            // A good frame in between resets the consecutive count.
            handle.check_in(UserId::new(1), Point::ORIGIN, 0).unwrap();
        }
        handle.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn supervisor_restarts_through_injected_faults() {
        let (server, handle) = spawn_with(ServerOptions {
            fault_plan: FaultPlan::kill_at([0, 3, 7]),
            ..ServerOptions::default()
        });
        let user = UserId::new(2);
        let home = Point::new(50.0, 50.0);
        // Every call succeeds: the supervisor restores the checkpoint and
        // retries the interrupted batch.
        for t in 0..30 {
            handle.check_in(user, home, t).unwrap();
        }
        assert_eq!(handle.finalize_window(user).unwrap(), 1);
        let reported = handle.request_location(user, home).unwrap();
        assert_eq!(server.health().restarts, 3);
        assert!(server.health().checkpoints > 0);
        handle.shutdown().unwrap();
        let edge = server.join().unwrap();
        assert!(edge.candidates(user, home).unwrap().contains(&reported));
    }

    #[test]
    fn faulty_run_matches_fault_free_run_bit_for_bit() {
        let drive = |fault_plan: FaultPlan| {
            let (server, handle) = spawn_with(ServerOptions {
                fault_plan,
                ..ServerOptions::default()
            });
            let user = UserId::new(4);
            let home = Point::new(75.0, -25.0);
            for t in 0..25 {
                handle.check_in(user, home, t).unwrap();
            }
            handle.finalize_window(user).unwrap();
            let reports: Vec<Point> =
                (0..10).map(|_| handle.request_location(user, home).unwrap()).collect();
            handle.shutdown().unwrap();
            server.join().unwrap();
            reports
        };
        let faulty = drive(FaultPlan::kill_at([1, 5, 26, 30, 33]));
        let clean = drive(FaultPlan::none());
        assert_eq!(faulty, clean);
    }

    #[test]
    fn worker_failing_past_restart_budget_fails_explicitly() {
        // One kill point per served ordinal: every call crashes the worker
        // once (the retry succeeds because the point is consumed), so the
        // cumulative restart count walks through the budget.
        let (server, handle) = spawn_with(ServerOptions {
            fault_plan: FaultPlan::kill_at(0..10),
            max_restarts: 2,
            ..ServerOptions::default()
        });
        // Restarts 1 and 2 are within budget: the calls still succeed.
        for t in 0..2 {
            handle.check_in(UserId::new(0), Point::ORIGIN, t).unwrap();
        }
        // Restart 3 exceeds it: explicit failure, never a hang.
        let err = handle.check_in(UserId::new(0), Point::ORIGIN, 2).unwrap_err();
        assert_eq!(err, TransportError::WorkerFailed { restarts: 3 });
        assert_eq!(server.join().unwrap_err(), SystemError::WorkerFailed { restarts: 3 });
        // The loop has terminated; later calls observe a disconnect.
        assert_eq!(
            handle.check_in(UserId::new(0), Point::ORIGIN, 3).unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn poisoned_batch_fails_its_replies_and_worker_recovers() {
        // Two kill points inside one batch: the retry dies too, so the
        // supervisor fails the batch's replies explicitly and keeps the
        // (restored) worker alive for later traffic. Queue the whole batch
        // before running `serve` so it drains in a single wakeup.
        let config = SystemConfig::builder().build().unwrap();
        let (tx, rx) = sync_channel::<Envelope>(16);
        let options = ServerOptions {
            fault_plan: FaultPlan::kill_at([0, 2]),
            backoff_base: 1,
            backoff_cap: 1,
            ..ServerOptions::default()
        };
        let metrics = Arc::new(ServerMetrics::new(&options.telemetry));
        let mut replies = Vec::new();
        for t in 0..4 {
            let (reply_tx, reply_rx) = sync_channel(1);
            let frame = ClientRequest::CheckIn {
                user: UserId::new(1),
                location: Point::ORIGIN,
                timestamp: t,
            }
            .encode()
            .to_vec();
            metrics.queue_depth.add(1);
            tx.send(Envelope { client: 0, frame, reply: reply_tx }).unwrap();
            replies.push(reply_rx);
        }
        drop(tx);
        let edge = serve(
            config,
            7,
            rx,
            options,
            Arc::clone(&metrics),
            Arc::new(Mutex::new(None)),
        )
        .unwrap();
        for reply_rx in replies {
            let frame = reply_rx.recv().unwrap();
            assert_eq!(
                EdgeResponse::decode(&frame).unwrap(),
                EdgeResponse::Error { code: ErrorCode::WorkerFailed, detail: 2 }
            );
        }
        // The batch was dropped after the restore: no check-in survived.
        assert_eq!(edge.user_count(), 0);
        assert_eq!(metrics.restarts.value(), 2);
        assert_eq!(metrics.failed_replies.value(), 4);
    }

    #[test]
    fn overload_rejects_and_retry_budget_is_bounded() {
        // Client-side path against a full queue: a capacity-1 channel with
        // no consumer, its single slot occupied directly.
        let (tx, _rx) = sync_channel::<Envelope>(1);
        let telemetry = Telemetry::new();
        let metrics = Arc::new(ServerMetrics::new(&telemetry));
        let handle = EdgeHandle {
            tx,
            client: 0,
            next_client: Arc::new(AtomicU64::new(1)),
            metrics: Arc::clone(&metrics),
        };
        let (reply_tx, _parked) = sync_channel(1);
        handle.tx.send(Envelope { client: 9, frame: Vec::new(), reply: reply_tx }).unwrap();
        let err = handle.try_call(ClientRequest::Shutdown).unwrap_err();
        assert_eq!(err, TransportError::Overloaded);
        let policy = RetryPolicy {
            max_attempts: 3,
            disconnect_attempts: 1,
            backoff_base: 4,
            backoff_cap: 64,
        };
        let err = handle.call_with_retry(ClientRequest::Shutdown, &policy).unwrap_err();
        assert_eq!(err, TransportError::Overloaded);
        assert_eq!(metrics.overload_rejections.value(), 4);
        // Rejected sends roll their depth increment back; the only queued
        // envelope went around the handle, so the depth reads zero.
        assert_eq!(metrics.queue_depth.value(), 0);
    }

    #[test]
    fn health_snapshot_counts_queue_depth() {
        let (server, handle) = spawn();
        handle.check_in(UserId::new(0), Point::ORIGIN, 0).unwrap();
        let health = server.health();
        assert_eq!(health.queue_depth, 0);
        assert_eq!(health.restarts, 0);
        assert!(health.checkpoints >= 1);
        handle.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn telemetry_hub_records_serving_and_ledger_audits_clean() {
        use privlocad_telemetry::top_key;
        let hub = Telemetry::new();
        let (server, handle) = EdgeServer::spawn_with(
            SystemConfig::builder().build().unwrap(),
            11,
            ServerOptions { telemetry: hub.clone(), ..ServerOptions::default() },
        );
        let user = UserId::new(6);
        let home = Point::new(30.0, 40.0);
        for t in 0..30 {
            handle.check_in(user, home, t).unwrap();
        }
        assert_eq!(handle.finalize_window(user).unwrap(), 1);
        for _ in 0..5 {
            handle.request_location(user, home).unwrap();
        }
        handle.shutdown().unwrap();
        let edge = server.join().unwrap();

        let metrics = hub.registry().snapshot();
        // 30 check-ins + 1 finalize + 5 requests (shutdown is transport-level).
        assert_eq!(metrics.counter("server.requests"), Some(36));
        assert_eq!(metrics.counter("edge.checkins"), Some(30));
        assert_eq!(metrics.counter("edge.windows_closed"), Some(1));
        assert_eq!(metrics.counter("edge.location_requests"), Some(5));
        assert_eq!(metrics.counter("server.restarts"), Some(0));

        // Every budget spend the device released is in the ledger, exactly
        // once.
        let live: Vec<(u64, _)> = edge
            .snapshot()
            .released_sets()
            .unwrap()
            .into_iter()
            .map(|(u, p)| (u64::from(u.raw()), top_key(p.x, p.y)))
            .collect();
        assert_eq!(live.len(), 1);
        hub.ledger().assert_no_double_spend(live).unwrap();
        assert_eq!(hub.ledger().totals().candidate_sets, 1);
        // The JSON export carries all three sections.
        let json = hub.to_json();
        for key in ["server.requests", "edge.checkins", "\"ledger\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn fault_plan_take_consumes_points_in_order() {
        let mut plan = FaultPlan::kill_at([5, 2, 9, 2]);
        assert_eq!(plan.remaining(), 3);
        assert_eq!(plan.take(0, 3), Some(2));
        assert_eq!(plan.take(0, 3), None);
        assert_eq!(plan.take(4, 10), Some(5));
        assert_eq!(plan.take(4, 10), Some(9));
        assert_eq!(plan.remaining(), 0);
        assert_eq!(FaultPlan::none(), FaultPlan::default());
    }

    #[test]
    fn sequenced_duplicates_replay_without_reapplying() {
        use crate::protocol::encode_sequenced;
        let hub = Telemetry::new();
        let (server, handle) = spawn_with(ServerOptions {
            telemetry: hub.clone(),
            ..ServerOptions::default()
        });
        let user = UserId::new(5);
        let home = Point::new(25.0, 75.0);
        for t in 0..30i64 {
            let frame = encode_sequenced(
                5,
                t as u32,
                &ClientRequest::CheckIn { user, location: home, timestamp: t },
            );
            assert_eq!(handle.call_raw(frame).unwrap(), EdgeResponse::Ack);
        }
        let finalize = encode_sequenced(5, 30, &ClientRequest::FinalizeWindow { user });
        let first = handle.call_raw(finalize.clone()).unwrap();
        assert_eq!(first, EdgeResponse::WindowClosed { fresh_obfuscations: 1 });
        // Re-delivering the committed finalize replays its cached
        // response — no second window ever closes.
        for _ in 0..3 {
            assert_eq!(handle.call_raw(finalize.clone()).unwrap(), first);
        }
        assert_eq!(server.health().duplicates_suppressed, 3);
        handle.shutdown().unwrap();
        server.join().unwrap();
        let metrics = hub.registry().snapshot();
        assert_eq!(metrics.counter("edge.checkins"), Some(30));
        assert_eq!(metrics.counter("edge.windows_closed"), Some(1));
        assert_eq!(metrics.counter("server.duplicates_suppressed"), Some(3));
    }

    #[test]
    fn sequences_older_than_the_window_are_rejected() {
        use crate::protocol::encode_sequenced;
        let (server, handle) = spawn_with(ServerOptions {
            dedup_window: 2,
            ..ServerOptions::default()
        });
        let user = UserId::new(1);
        let checkin = |seq: u32| {
            encode_sequenced(
                1,
                seq,
                &ClientRequest::CheckIn {
                    user,
                    location: Point::ORIGIN,
                    timestamp: seq as i64,
                },
            )
        };
        for seq in 0..5 {
            handle.call_raw(checkin(seq)).unwrap();
        }
        // The window holds seqs {3, 4}; seq 0 fell out, so its duplicate
        // is rejected explicitly instead of being double-applied.
        assert_eq!(
            handle.call_raw(checkin(0)).unwrap_err(),
            TransportError::StaleSequence { seq: 0 }
        );
        // An in-window duplicate still replays fine.
        assert_eq!(handle.call_raw(checkin(4)).unwrap(), EdgeResponse::Ack);
        assert_eq!(server.health().duplicates_suppressed, 1);
        handle.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn corrupted_sequenced_frames_cost_strikes_not_replays() {
        use crate::protocol::encode_sequenced;
        let (server, handle) = spawn();
        let user = UserId::new(2);
        let good = encode_sequenced(
            2,
            0,
            &ClientRequest::CheckIn { user, location: Point::ORIGIN, timestamp: 0 },
        );
        handle.call_raw(good.clone()).unwrap();
        // A corrupted duplicate of seq 0: the checksum catches the damage
        // before the dedup window is ever consulted.
        let mut corrupt = good;
        corrupt[6] ^= 0x10;
        let err = handle.call_raw(corrupt).unwrap_err();
        assert!(matches!(err, TransportError::Malformed { .. }));
        assert_eq!(server.health().duplicates_suppressed, 0);
        assert_eq!(server.health().malformed_frames, 1);
        handle.shutdown().unwrap();
        server.join().unwrap();
    }

    #[test]
    fn restore_from_continues_streams_bit_for_bit() {
        let config = SystemConfig::builder().build().unwrap();
        let user = UserId::new(4);
        let home = Point::new(60.0, 10.0);
        let prime = |handle: &EdgeHandle| {
            for t in 0..30 {
                handle.check_in(user, home, t).unwrap();
            }
            handle.finalize_window(user).unwrap();
        };
        // Continuous run: five draws on one server.
        let (server, handle) = EdgeServer::spawn_with(config, 11, ServerOptions::default());
        prime(&handle);
        let continuous: Vec<Point> =
            (0..5).map(|_| handle.request_location(user, home).unwrap()).collect();
        handle.shutdown().unwrap();
        server.join().unwrap();
        // Split run: four draws, then a new server restored from the
        // committed checkpoint takes the fifth — bit-for-bit the same.
        let (server, handle) = EdgeServer::spawn_with(config, 11, ServerOptions::default());
        prime(&handle);
        let mut split: Vec<Point> =
            (0..4).map(|_| handle.request_location(user, home).unwrap()).collect();
        let snapshot = server.last_checkpoint();
        assert!(!snapshot.is_empty());
        handle.shutdown().unwrap();
        server.join().unwrap();
        let (server, handle) = EdgeServer::spawn_with(
            config,
            11,
            ServerOptions { restore_from: Some(snapshot), ..ServerOptions::default() },
        );
        split.push(handle.request_location(user, home).unwrap());
        handle.shutdown().unwrap();
        assert_eq!(server.join().unwrap().user_count(), 1);
        assert_eq!(split, continuous);
    }

    #[test]
    fn disconnect_retries_have_their_own_budget() {
        // A dead endpoint: every attempt observes Disconnected.
        let (tx, rx) = sync_channel::<Envelope>(4);
        drop(rx);
        let telemetry = Telemetry::new();
        let metrics = Arc::new(ServerMetrics::new(&telemetry));
        let handle = EdgeHandle {
            tx,
            client: 0,
            next_client: Arc::new(AtomicU64::new(1)),
            metrics: Arc::clone(&metrics),
        };
        let policy = RetryPolicy {
            max_attempts: 1,
            disconnect_attempts: 3,
            backoff_base: 1,
            backoff_cap: 4,
        };
        let err = handle.call_with_retry(ClientRequest::Shutdown, &policy).unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
        // Two retries ran before the third attempt gave up.
        assert_eq!(metrics.disconnect_retries.value(), 2);
        // The pre-fabric fail-fast shape: a budget of 1 never retries.
        let policy = RetryPolicy { disconnect_attempts: 1, ..policy };
        handle.call_with_retry(ClientRequest::Shutdown, &policy).unwrap_err();
        assert_eq!(metrics.disconnect_retries.value(), 2);
    }

    #[test]
    fn retry_policy_backoff_is_capped() {
        let policy = RetryPolicy {
            max_attempts: 10,
            disconnect_attempts: 1,
            backoff_base: 8,
            backoff_cap: 100,
        };
        assert_eq!(policy.spins(0), 8);
        assert_eq!(policy.spins(1), 16);
        assert_eq!(policy.spins(30), 100);
    }
}
