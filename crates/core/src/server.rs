use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use bytes::Bytes;
use privlocad_geo::Point;
use privlocad_mobility::UserId;

use crate::protocol::{ClientRequest, EdgeResponse, FrameError};
use crate::{EdgeDevice, SystemConfig};

/// An encoded request frame paired with the channel its response frame is
/// sent back on. Responses travel as [`Bytes`] so a batched wakeup can
/// encode every response into one block and send O(1) slices of it.
type Envelope = (Vec<u8>, SyncSender<Bytes>);

/// A handle for talking to a running [`EdgeServer`] from any thread.
///
/// Cloneable; all clones feed the same serving loop. Requests and
/// responses cross the transport in their binary frame encoding, exactly
/// as they would over a radio link.
#[derive(Debug, Clone)]
pub struct EdgeHandle {
    tx: SyncSender<Envelope>,
}

/// Errors surfaced by [`EdgeHandle`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The serving loop has shut down.
    Disconnected,
    /// A frame failed to decode.
    Frame(FrameError),
    /// The server answered with an unexpected response type.
    UnexpectedResponse,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "edge server disconnected"),
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::UnexpectedResponse => write!(f, "unexpected response type"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl EdgeHandle {
    /// Sends one request frame and waits for the response frame.
    pub fn call(&self, request: ClientRequest) -> Result<EdgeResponse, TransportError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send((request.encode().to_vec(), reply_tx))
            .map_err(|_| TransportError::Disconnected)?;
        let frame = reply_rx.recv().map_err(|_| TransportError::Disconnected)?;
        Ok(EdgeResponse::decode(&frame)?)
    }

    /// Reports a check-in (fire-and-forget semantics at the API level; the
    /// transport still acknowledges).
    pub fn check_in(
        &self,
        user: UserId,
        location: Point,
        timestamp: i64,
    ) -> Result<(), TransportError> {
        match self.call(ClientRequest::CheckIn { user, location, timestamp })? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Asks for the location to report for an ad request.
    pub fn request_location(
        &self,
        user: UserId,
        location: Point,
    ) -> Result<Point, TransportError> {
        match self.call(ClientRequest::RequestLocation { user, location })? {
            EdgeResponse::ReportedLocation { location } => Ok(location),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Closes the user's profile window.
    pub fn finalize_window(&self, user: UserId) -> Result<u32, TransportError> {
        match self.call(ClientRequest::FinalizeWindow { user })? {
            EdgeResponse::WindowClosed { fresh_obfuscations } => Ok(fresh_obfuscations),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Stops the serving loop.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        match self.call(ClientRequest::Shutdown)? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }
}

/// An edge device behind a message-passing serving loop.
///
/// [`EdgeServer::spawn`] starts a dedicated thread owning an
/// [`EdgeDevice`] and returns a cloneable [`EdgeHandle`]; any number of
/// client threads can then check in and request locations concurrently,
/// with the loop serializing access — the deployment shape of Fig. 5
/// where one edge node fronts many nearby mobile users.
///
/// # Examples
///
/// ```
/// use privlocad::{EdgeServer, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let (server, handle) = EdgeServer::spawn(SystemConfig::builder().build()?, 5);
/// let user = UserId::new(1);
/// for t in 0..30 {
///     handle.check_in(user, Point::new(100.0, 100.0), t)?;
/// }
/// assert_eq!(handle.finalize_window(user)?, 1);
/// let reported = handle.request_location(user, Point::new(100.0, 100.0))?;
/// assert!(reported.is_finite());
/// handle.shutdown()?;
/// server.join();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EdgeServer {
    thread: std::thread::JoinHandle<EdgeDevice>,
}

impl EdgeServer {
    /// Spawns the serving loop and returns the server plus a client handle.
    pub fn spawn(config: SystemConfig, seed: u64) -> (EdgeServer, EdgeHandle) {
        let (tx, rx): (SyncSender<Envelope>, Receiver<_>) = sync_channel(1_024);
        let thread = std::thread::spawn(move || serve(EdgeDevice::new(config, seed), rx));
        (EdgeServer { thread }, EdgeHandle { tx })
    }

    /// Waits for the serving loop to finish (after a shutdown request or
    /// once every handle is dropped) and returns the edge device with its
    /// final state for inspection.
    pub fn join(self) -> EdgeDevice {
        // lint:allow(panic-hygiene): join fails only if the serving thread panicked; re-raising that panic is the correct propagation
        self.thread.join().expect("edge serving loop must not panic")
    }
}

fn serve(mut edge: EdgeDevice, rx: Receiver<Envelope>) -> EdgeDevice {
    // Scratch reused across wakeups: one blocking recv per batch, then the
    // queue is drained non-blocking and handed to `EdgeDevice::serve_batch`
    // in one call, so the per-wakeup cost (and, in the shared-device
    // deployment shape, the per-lock cost) is amortized over the batch.
    let mut batch: Vec<Envelope> = Vec::new();
    let mut requests: Vec<ClientRequest> = Vec::new();
    let mut responses: Vec<EdgeResponse> = Vec::new();
    let mut frame_buf: Vec<u8> = Vec::new();
    let mut offsets: Vec<std::ops::Range<usize>> = Vec::new();
    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while let Ok(next) = rx.try_recv() {
            batch.push(next);
        }
        requests.clear();
        responses.clear();
        let mut shutdown_at = None;
        for (i, (frame, _)) in batch.iter().enumerate() {
            match ClientRequest::decode(frame) {
                Ok(ClientRequest::Shutdown) => {
                    shutdown_at = Some(i);
                    break;
                }
                Ok(request) => requests.push(request),
                // A malformed frame cannot be answered meaningfully; ack
                // so the client does not hang, and drop the frame. The
                // device treats `Shutdown` as exactly that no-op ack —
                // the transport-level shutdown was intercepted above.
                Err(_) => requests.push(ClientRequest::Shutdown),
            }
        }
        edge.serve_batch(&requests, &mut responses);
        // One encode block per wakeup: every response frame lands in
        // `frame_buf`, is frozen into a single shared allocation, and each
        // client gets a zero-copy slice — no per-response allocation.
        frame_buf.clear();
        offsets.clear();
        for response in &responses {
            let start = frame_buf.len();
            response.encode_into(&mut frame_buf);
            offsets.push(start..frame_buf.len());
        }
        let block = Bytes::copy_from_slice(&frame_buf);
        for ((_, reply), range) in batch.iter().zip(offsets.iter().cloned()) {
            let _ = reply.send(block.slice(range));
        }
        if let Some(i) = shutdown_at {
            // Ack the shutdown itself; envelopes queued behind it are
            // dropped, so their clients observe a disconnect — the same
            // outcome as racing a shutdown in the unbatched loop.
            let _ = batch[i].1.send(EdgeResponse::Ack.encode());
            break;
        }
    }
    edge
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn() -> (EdgeServer, EdgeHandle) {
        EdgeServer::spawn(SystemConfig::builder().build().unwrap(), 11)
    }

    #[test]
    fn full_protocol_round_trip() {
        let (server, handle) = spawn();
        let user = UserId::new(3);
        let home = Point::new(10.0, 20.0);
        for t in 0..40 {
            handle.check_in(user, home, t).unwrap();
        }
        assert_eq!(handle.finalize_window(user).unwrap(), 1);
        let reported = handle.request_location(user, home).unwrap();
        assert_ne!(reported, home);
        handle.shutdown().unwrap();
        let edge = server.join();
        assert_eq!(edge.user_count(), 1);
        assert!(edge.candidates(user, home).unwrap().contains(&reported));
    }

    #[test]
    fn many_client_threads_share_one_edge() {
        let (server, handle) = spawn();
        let handles: Vec<_> = (0..6u32)
            .map(|u| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let user = UserId::new(u);
                    let home = Point::new(u as f64 * 3_000.0, 0.0);
                    for t in 0..30 {
                        h.check_in(user, home, t).unwrap();
                    }
                    assert_eq!(h.finalize_window(user).unwrap(), 1);
                    h.request_location(user, home).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_finite());
        }
        handle.shutdown().unwrap();
        assert_eq!(server.join().user_count(), 6);
    }

    #[test]
    fn handle_calls_after_shutdown_fail() {
        let (server, handle) = spawn();
        handle.shutdown().unwrap();
        server.join();
        let err = handle.check_in(UserId::new(0), Point::ORIGIN, 0).unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
    }

    #[test]
    fn dropping_all_handles_stops_the_loop() {
        let (server, handle) = spawn();
        drop(handle);
        let edge = server.join();
        assert_eq!(edge.user_count(), 0);
    }

    #[test]
    fn transport_error_display_and_source() {
        use std::error::Error;
        let e = TransportError::Frame(FrameError::Empty);
        assert!(e.to_string().contains("frame error"));
        assert!(e.source().is_some());
        assert!(TransportError::Disconnected.source().is_none());
        assert!(!TransportError::UnexpectedResponse.to_string().is_empty());
    }
}
