use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

use privlocad_geo::Point;
use privlocad_mobility::UserId;

use crate::protocol::{ClientRequest, EdgeResponse, FrameError};
use crate::{EdgeDevice, SystemConfig};

/// An encoded request frame paired with the channel its response frame is
/// sent back on.
type Envelope = (Vec<u8>, SyncSender<Vec<u8>>);

/// A handle for talking to a running [`EdgeServer`] from any thread.
///
/// Cloneable; all clones feed the same serving loop. Requests and
/// responses cross the transport in their binary frame encoding, exactly
/// as they would over a radio link.
#[derive(Debug, Clone)]
pub struct EdgeHandle {
    tx: SyncSender<Envelope>,
}

/// Errors surfaced by [`EdgeHandle`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The serving loop has shut down.
    Disconnected,
    /// A frame failed to decode.
    Frame(FrameError),
    /// The server answered with an unexpected response type.
    UnexpectedResponse,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "edge server disconnected"),
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::UnexpectedResponse => write!(f, "unexpected response type"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

impl EdgeHandle {
    /// Sends one request frame and waits for the response frame.
    pub fn call(&self, request: ClientRequest) -> Result<EdgeResponse, TransportError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        self.tx
            .send((request.encode().to_vec(), reply_tx))
            .map_err(|_| TransportError::Disconnected)?;
        let bytes = reply_rx.recv().map_err(|_| TransportError::Disconnected)?;
        Ok(EdgeResponse::decode(&bytes)?)
    }

    /// Reports a check-in (fire-and-forget semantics at the API level; the
    /// transport still acknowledges).
    pub fn check_in(
        &self,
        user: UserId,
        location: Point,
        timestamp: i64,
    ) -> Result<(), TransportError> {
        match self.call(ClientRequest::CheckIn { user, location, timestamp })? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Asks for the location to report for an ad request.
    pub fn request_location(
        &self,
        user: UserId,
        location: Point,
    ) -> Result<Point, TransportError> {
        match self.call(ClientRequest::RequestLocation { user, location })? {
            EdgeResponse::ReportedLocation { location } => Ok(location),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Closes the user's profile window.
    pub fn finalize_window(&self, user: UserId) -> Result<u32, TransportError> {
        match self.call(ClientRequest::FinalizeWindow { user })? {
            EdgeResponse::WindowClosed { fresh_obfuscations } => Ok(fresh_obfuscations),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }

    /// Stops the serving loop.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        match self.call(ClientRequest::Shutdown)? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(TransportError::UnexpectedResponse),
        }
    }
}

/// An edge device behind a message-passing serving loop.
///
/// [`EdgeServer::spawn`] starts a dedicated thread owning an
/// [`EdgeDevice`] and returns a cloneable [`EdgeHandle`]; any number of
/// client threads can then check in and request locations concurrently,
/// with the loop serializing access — the deployment shape of Fig. 5
/// where one edge node fronts many nearby mobile users.
///
/// # Examples
///
/// ```
/// use privlocad::{EdgeServer, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let (server, handle) = EdgeServer::spawn(SystemConfig::builder().build()?, 5);
/// let user = UserId::new(1);
/// for t in 0..30 {
///     handle.check_in(user, Point::new(100.0, 100.0), t)?;
/// }
/// assert_eq!(handle.finalize_window(user)?, 1);
/// let reported = handle.request_location(user, Point::new(100.0, 100.0))?;
/// assert!(reported.is_finite());
/// handle.shutdown()?;
/// server.join();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EdgeServer {
    thread: std::thread::JoinHandle<EdgeDevice>,
}

impl EdgeServer {
    /// Spawns the serving loop and returns the server plus a client handle.
    pub fn spawn(config: SystemConfig, seed: u64) -> (EdgeServer, EdgeHandle) {
        let (tx, rx): (SyncSender<Envelope>, Receiver<_>) = sync_channel(1_024);
        let thread = std::thread::spawn(move || serve(EdgeDevice::new(config, seed), rx));
        (EdgeServer { thread }, EdgeHandle { tx })
    }

    /// Waits for the serving loop to finish (after a shutdown request or
    /// once every handle is dropped) and returns the edge device with its
    /// final state for inspection.
    pub fn join(self) -> EdgeDevice {
        // lint:allow(panic-hygiene): join fails only if the serving thread panicked; re-raising that panic is the correct propagation
        self.thread.join().expect("edge serving loop must not panic")
    }
}

fn serve(mut edge: EdgeDevice, rx: Receiver<Envelope>) -> EdgeDevice {
    while let Ok((frame, reply)) = rx.recv() {
        let response = match ClientRequest::decode(&frame) {
            Ok(ClientRequest::CheckIn { user, location, .. }) => {
                edge.report_checkin(user, location);
                EdgeResponse::Ack
            }
            Ok(ClientRequest::RequestLocation { user, location }) => {
                EdgeResponse::ReportedLocation {
                    location: edge.reported_location(user, location),
                }
            }
            Ok(ClientRequest::FinalizeWindow { user }) => EdgeResponse::WindowClosed {
                fresh_obfuscations: edge.finalize_window(user) as u32,
            },
            Ok(ClientRequest::Shutdown) => {
                let _ = reply.send(EdgeResponse::Ack.encode().to_vec());
                break;
            }
            // A malformed frame cannot be answered meaningfully; ack so
            // the client does not hang, and drop the frame.
            Err(_) => EdgeResponse::Ack,
        };
        let _ = reply.send(response.encode().to_vec());
    }
    edge
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn() -> (EdgeServer, EdgeHandle) {
        EdgeServer::spawn(SystemConfig::builder().build().unwrap(), 11)
    }

    #[test]
    fn full_protocol_round_trip() {
        let (server, handle) = spawn();
        let user = UserId::new(3);
        let home = Point::new(10.0, 20.0);
        for t in 0..40 {
            handle.check_in(user, home, t).unwrap();
        }
        assert_eq!(handle.finalize_window(user).unwrap(), 1);
        let reported = handle.request_location(user, home).unwrap();
        assert_ne!(reported, home);
        handle.shutdown().unwrap();
        let edge = server.join();
        assert_eq!(edge.user_count(), 1);
        assert!(edge.candidates(user, home).unwrap().contains(&reported));
    }

    #[test]
    fn many_client_threads_share_one_edge() {
        let (server, handle) = spawn();
        let handles: Vec<_> = (0..6u32)
            .map(|u| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let user = UserId::new(u);
                    let home = Point::new(u as f64 * 3_000.0, 0.0);
                    for t in 0..30 {
                        h.check_in(user, home, t).unwrap();
                    }
                    assert_eq!(h.finalize_window(user).unwrap(), 1);
                    h.request_location(user, home).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_finite());
        }
        handle.shutdown().unwrap();
        assert_eq!(server.join().user_count(), 6);
    }

    #[test]
    fn handle_calls_after_shutdown_fail() {
        let (server, handle) = spawn();
        handle.shutdown().unwrap();
        server.join();
        let err = handle.check_in(UserId::new(0), Point::ORIGIN, 0).unwrap_err();
        assert_eq!(err, TransportError::Disconnected);
    }

    #[test]
    fn dropping_all_handles_stops_the_loop() {
        let (server, handle) = spawn();
        drop(handle);
        let edge = server.join();
        assert_eq!(edge.user_count(), 0);
    }

    #[test]
    fn transport_error_display_and_source() {
        use std::error::Error;
        let e = TransportError::Frame(FrameError::Empty);
        assert!(e.to_string().contains("frame error"));
        assert!(e.source().is_some());
        assert!(TransportError::Disconnected.source().is_none());
        assert!(!TransportError::UnexpectedResponse.to_string().is_empty());
    }
}
