//! Hub-of-hubs fleet sharding: a [`ShardRouter`] in front of N
//! supervised [`EdgeServer`] shards.
//!
//! The scalability story of the paper's third design goal, taken past a
//! single device: a million-user deployment cannot live on one edge
//! node, so the fleet is partitioned user→shard and a thin router
//! dispatches each request to the owning shard in O(1). Two properties
//! make the partition *invisible* in outputs:
//!
//! 1. **Per-user RNG streams** ([`crate::StreamMode::PerUser`]): every
//!    shard serves its users from private generators derived from one
//!    fleet master, so a user's responses depend only on the master,
//!    their id, and their own operation sequence — never on which shard
//!    they landed on or how neighbours interleave. Exports and output
//!    digests are bit-for-bit identical at 1, 4, or 16 shards.
//! 2. **One telemetry hub** shared by every shard
//!    ([`crate::ServerOptions::telemetry`]): deterministic counters and
//!    the privacy-budget ledger aggregate fleet-wide, and the
//!    checkpoint-then-reply commit order of each shard keeps ledger
//!    delivery exactly-once across per-shard restarts.
//!
//! [`StateFootprint`] is the memory side of the same story: compact
//! per-shard state measured in bytes per user, with pooled candidate
//! sets and posterior tables counted once however many users share
//! them.

use privlocad_geo::Point;
use privlocad_mobility::UserId;
use privlocad_telemetry::Telemetry;

use crate::protocol::{ClientRequest, EdgeResponse};
use crate::server::{EdgeHandle, EdgeServer, ServerOptions, TransportError};
use crate::{EdgeDevice, SystemConfig, SystemError};

/// Measured resident state of one shard ([`EdgeDevice::footprint`]).
///
/// Splits bytes into what each user uniquely owns (`user_bytes`: window
/// buffers, profiles, top sets, table/cache reference entries) and what
/// lives once in shared pools (`shared_bytes`: distinct candidate sets
/// and posterior tables, stored per distinct `Arc` regardless of how
/// many users cite them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateFootprint {
    /// Users resident on the shard.
    pub users: usize,
    /// Bytes attributable to individual users.
    pub user_bytes: u64,
    /// Bytes in shared pools, counted once per distinct `Arc`.
    pub shared_bytes: u64,
    /// Distinct permanent candidate sets (pool entries).
    pub distinct_candidate_sets: usize,
    /// Candidate-set references across all user tables (≥ distinct when
    /// fleet installs share sets between users).
    pub candidate_set_refs: usize,
    /// Distinct cached posterior tables (pool entries).
    pub distinct_posterior_tables: usize,
}

impl StateFootprint {
    /// Total resident bytes: per-user plus shared-pool.
    pub fn total_bytes(&self) -> u64 {
        self.user_bytes + self.shared_bytes
    }

    /// Resident bytes per user — the budget DESIGN.md §16 holds the
    /// scale bench to. `0.0` for an empty shard.
    pub fn bytes_per_user(&self) -> f64 {
        if self.users == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.users as f64
    }
}

/// A hub-of-hubs fleet front: O(1) user→shard routing over N supervised
/// [`EdgeServer`] shards serving per-user RNG streams from one master
/// seed, publishing into one shared telemetry hub.
///
/// # Examples
///
/// ```
/// use privlocad::{ShardRouter, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let router = ShardRouter::spawn(SystemConfig::builder().build()?, 7, 4);
/// let user = UserId::new(9); // lives on shard 9 % 4 == 1
/// for t in 0..40 {
///     router.check_in(user, Point::new(100.0, 100.0), t)?;
/// }
/// assert_eq!(router.finalize_window(user)?, 1);
/// let reported = router.request_location(user, Point::new(100.0, 100.0))?;
/// assert!(reported.is_finite());
/// router.shutdown()?;
/// let shards = router.join()?;
/// assert_eq!(shards.iter().map(|d| d.user_count()).sum::<usize>(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ShardRouter {
    servers: Vec<EdgeServer>,
    handles: Vec<EdgeHandle>,
}

impl ShardRouter {
    /// Spawns `shards` supervised edge servers sharing one fresh
    /// telemetry hub, every shard serving per-user streams derived from
    /// `master`. `shards` is clamped to at least 1.
    pub fn spawn(config: SystemConfig, master: u64, shards: usize) -> ShardRouter {
        let hub = Telemetry::new();
        let options = (0..shards.max(1))
            .map(|_| ServerOptions { telemetry: hub.clone(), ..ServerOptions::default() })
            .collect();
        ShardRouter::spawn_with(config, master, options)
    }

    /// [`ShardRouter::spawn`] with every shard submitting served ad
    /// requests into one shared OpenRTB-lite bid sink
    /// ([`crate::ServerOptions::bid_sink`]). The sink outlives the
    /// shards, so per-device bid sequences are continuous across worker
    /// restarts, and — with per-user streams forced on — the emitted
    /// stream is invariant to the shard count.
    pub fn spawn_with_sink(
        config: SystemConfig,
        master: u64,
        shards: usize,
        sink: std::sync::Arc<privlocad_openrtb::BidSink>,
    ) -> ShardRouter {
        let hub = Telemetry::new();
        let options = (0..shards.max(1))
            .map(|_| ServerOptions {
                telemetry: hub.clone(),
                bid_sink: Some(std::sync::Arc::clone(&sink)),
                ..ServerOptions::default()
            })
            .collect();
        ShardRouter::spawn_with(config, master, options)
    }

    /// [`ShardRouter::spawn`] with explicit per-shard options — fault
    /// plans, queue capacities, or a caller-owned hub. One shard is
    /// spawned per entry (at least one entry required, panics on an
    /// empty list). `per_user_streams` is forced on: the router's
    /// shard-count invariance only holds when users own their streams.
    pub fn spawn_with(
        config: SystemConfig,
        master: u64,
        options: Vec<ServerOptions>,
    ) -> ShardRouter {
        assert!(!options.is_empty(), "a shard router needs at least one shard");
        let mut servers = Vec::with_capacity(options.len());
        let mut handles = Vec::with_capacity(options.len());
        for shard_options in options {
            let (server, handle) = EdgeServer::spawn_with(
                config,
                master,
                ServerOptions { per_user_streams: true, ..shard_options },
            );
            servers.push(server);
            handles.push(handle);
        }
        ShardRouter { servers, handles }
    }

    /// Number of shards behind this router.
    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// The shard that owns `user`: a stateless modulo over the user id,
    /// so routing is O(1) with no directory to keep consistent.
    pub fn route(&self, user: UserId) -> usize {
        user.raw() as usize % self.handles.len()
    }

    /// The client handle of the shard owning `user`.
    pub fn handle(&self, user: UserId) -> &EdgeHandle {
        &self.handles[self.route(user)]
    }

    /// Routes a check-in to the owning shard
    /// ([`EdgeHandle::check_in`]).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`TransportError`].
    pub fn check_in(
        &self,
        user: UserId,
        location: Point,
        timestamp: i64,
    ) -> Result<(), TransportError> {
        self.handle(user).check_in(user, location, timestamp)
    }

    /// Routes an ad-request location report to the owning shard
    /// ([`EdgeHandle::request_location`]).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`TransportError`].
    pub fn request_location(
        &self,
        user: UserId,
        location: Point,
    ) -> Result<Point, TransportError> {
        self.handle(user).request_location(user, location)
    }

    /// Routes a window close to the owning shard
    /// ([`EdgeHandle::finalize_window`]).
    ///
    /// # Errors
    ///
    /// Propagates the shard's [`TransportError`].
    pub fn finalize_window(&self, user: UserId) -> Result<u32, TransportError> {
        self.handle(user).finalize_window(user)
    }

    /// Dispatches a batch of pre-routed requests: partitions by owning
    /// shard, drives every shard concurrently (each shard sees its own
    /// requests strictly in input order), and returns one result per
    /// request in the original order.
    ///
    /// This is the fleet analogue of [`EdgeDevice::serve_batch`] — the
    /// shape a load balancer in front of the fleet would produce. With
    /// per-user streams, responses are identical whatever the shard
    /// count, because each user's sub-sequence is preserved.
    pub fn dispatch(
        &self,
        requests: &[(UserId, ClientRequest)],
    ) -> Vec<Result<EdgeResponse, TransportError>> {
        let mut lanes: Vec<Vec<(usize, ClientRequest)>> = vec![Vec::new(); self.handles.len()];
        for (i, &(user, request)) in requests.iter().enumerate() {
            lanes[self.route(user)].push((i, request));
        }
        let mut results: Vec<Option<Result<EdgeResponse, TransportError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut answered: Vec<Vec<(usize, Result<EdgeResponse, TransportError>)>> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = lanes
                    .iter()
                    .zip(&self.handles)
                    .map(|(lane, handle)| {
                        scope.spawn(move || {
                            lane.iter()
                                .map(|&(i, request)| (i, handle.call(request)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    // lint:allow(panic-hygiene): provably infallible — the worker closure only forwards `handle.call` results (errors travel as values) and cannot itself panic
                    .map(|w| w.join().expect("shard dispatch worker panicked"))
                    .collect()
            });
        for (i, outcome) in answered.iter_mut().flat_map(|lane| lane.drain(..)) {
            results[i] = Some(outcome);
        }
        // lint:allow(panic-hygiene): provably infallible — every input index was pushed into exactly one lane above, so every slot is filled
        results.into_iter().map(|r| r.expect("every request answered")).collect()
    }

    /// Stops every shard's serving loop (first failure wins, remaining
    /// shards are still asked to stop).
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`TransportError`], if any.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        let mut first_err = None;
        for handle in &self.handles {
            if let Err(e) = handle.shutdown() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Waits for every shard to finish and returns the final per-shard
    /// devices, in shard order, for inspection (footprints, snapshots,
    /// released-set audits).
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`SystemError`]; later shards are still
    /// joined so no worker thread leaks.
    pub fn join(self) -> Result<Vec<EdgeDevice>, SystemError> {
        drop(self.handles);
        let mut devices = Vec::with_capacity(self.servers.len());
        let mut first_err = None;
        for server in self.servers {
            match server.join() {
                Ok(device) => devices.push(device),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(devices),
        }
    }

    /// The telemetry hub the shards publish into (all shards share one;
    /// this is shard 0's handle).
    pub fn telemetry(&self) -> &Telemetry {
        self.servers[0].telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig {
        SystemConfig::builder().build().unwrap()
    }

    fn home_of(user: UserId) -> Point {
        Point::new(f64::from(user.raw()) * 9_000.0, -400.0)
    }

    fn drive(router: &ShardRouter, users: u32) -> Vec<Point> {
        let users: Vec<UserId> = (0..users).map(UserId::new).collect();
        for t in 0..40 {
            for &u in &users {
                router.check_in(u, home_of(u), t).unwrap();
            }
        }
        for &u in &users {
            assert_eq!(router.finalize_window(u).unwrap(), 1);
        }
        users.iter().map(|&u| router.request_location(u, home_of(u)).unwrap()).collect()
    }

    #[test]
    fn routing_is_modulo_and_owns_every_user() {
        let router = ShardRouter::spawn(config(), 3, 4);
        assert_eq!(router.shards(), 4);
        for raw in 0..32 {
            assert_eq!(router.route(UserId::new(raw)), raw as usize % 4);
        }
        router.shutdown().unwrap();
        router.join().unwrap();
    }

    #[test]
    fn outputs_are_shard_count_invariant() {
        let reports_at = |shards: usize| {
            let router = ShardRouter::spawn(config(), 99, shards);
            let reports = drive(&router, 12);
            router.shutdown().unwrap();
            let devices = router.join().unwrap();
            assert_eq!(devices.len(), shards);
            assert_eq!(devices.iter().map(|d| d.user_count()).sum::<usize>(), 12);
            reports
        };
        let one = reports_at(1);
        assert_eq!(one, reports_at(3));
        assert_eq!(one, reports_at(12));
    }

    #[test]
    fn dispatch_preserves_input_order_and_matches_typed_calls() {
        let user_a = UserId::new(0);
        let user_b = UserId::new(1);
        let batch: Vec<(UserId, ClientRequest)> = (0..40)
            .flat_map(|t| {
                [
                    (user_a, ClientRequest::CheckIn { user: user_a, location: home_of(user_a), timestamp: t }),
                    (user_b, ClientRequest::CheckIn { user: user_b, location: home_of(user_b), timestamp: t }),
                ]
            })
            .chain([
                (user_a, ClientRequest::FinalizeWindow { user: user_a }),
                (user_b, ClientRequest::FinalizeWindow { user: user_b }),
                (user_a, ClientRequest::RequestLocation { user: user_a, location: home_of(user_a) }),
                (user_b, ClientRequest::RequestLocation { user: user_b, location: home_of(user_b) }),
            ])
            .collect();

        let run = |shards: usize| {
            let router = ShardRouter::spawn(config(), 7, shards);
            let responses: Vec<EdgeResponse> =
                router.dispatch(&batch).into_iter().map(|r| r.unwrap()).collect();
            router.shutdown().unwrap();
            router.join().unwrap();
            responses
        };
        let sharded = run(2);
        assert_eq!(sharded.len(), batch.len());
        assert_eq!(sharded[80], EdgeResponse::WindowClosed { fresh_obfuscations: 1 });
        assert_eq!(sharded[81], EdgeResponse::WindowClosed { fresh_obfuscations: 1 });
        assert!(matches!(sharded[82], EdgeResponse::ReportedLocation { .. }));
        // Same batch on one shard: identical responses in identical order.
        assert_eq!(sharded, run(1));
    }

    #[test]
    fn shards_share_one_telemetry_hub() {
        let router = ShardRouter::spawn(config(), 5, 4);
        drive(&router, 8);
        router.shutdown().unwrap();
        let telemetry = router.telemetry().clone();
        router.join().unwrap();
        let metrics = telemetry.registry().snapshot();
        assert_eq!(metrics.counter("edge.checkins"), Some(40 * 8));
        assert_eq!(metrics.counter("edge.windows_closed"), Some(8));
        assert_eq!(metrics.counter("edge.location_requests"), Some(8));
    }

    #[test]
    fn footprint_bytes_per_user_is_positive_and_totals_add_up() {
        let router = ShardRouter::spawn(config(), 5, 2);
        drive(&router, 6);
        router.shutdown().unwrap();
        let devices = router.join().unwrap();
        for device in &devices {
            let fp = device.footprint();
            assert_eq!(fp.users, 3);
            assert!(fp.user_bytes > 0);
            assert!(fp.shared_bytes > 0, "settled users hold pooled sets");
            assert_eq!(fp.total_bytes(), fp.user_bytes + fp.shared_bytes);
            assert!(fp.bytes_per_user() > 0.0);
            assert_eq!(fp.candidate_set_refs, 3);
            assert_eq!(fp.distinct_candidate_sets, 3);
        }
        assert_eq!(StateFootprint::default().bytes_per_user(), 0.0);
    }
}
