//! The candidate arena: reusable batched-generation buffers plus the
//! staged, Arc-shared `(top, candidates, posterior table)` sets a fleet
//! install distributes to its edges.
//!
//! The pre-arena install path paid, **per edge**: one `Vec` clone of every
//! candidate set plus one posterior-table build (`n` exponentials). The
//! arena moves all of that to the authority: candidates are drawn once
//! through the batched lane kernel, each set lands in one `Arc<[Point]>`,
//! and each *distinct* set gets exactly one `Arc<PosteriorTable>` — edges
//! then install `Arc::clone` handles. Because a candidate set is permanent
//! and a posterior table is a pure deterministic function of
//! `(candidates, σ)`, sharing the allocations cannot change any reported
//! location.

use std::sync::Arc;

use privlocad_geo::Point;
use privlocad_mechanisms::{BatchScratch, CandidateLanes, PosteriorSelector, PosteriorTable};

use crate::ObfuscationModule;

/// One staged install unit: a queried top location, the shared permanent
/// candidates covering it, and the shared posterior table over those
/// candidates.
#[derive(Debug, Clone)]
pub struct PreparedSet {
    top: Point,
    candidates: Arc<[Point]>,
    table: Arc<PosteriorTable>,
}

impl PreparedSet {
    /// The top location this set was staged for (the *queried* top; the
    /// covering table anchor may differ by centroid drift).
    pub fn top(&self) -> Point {
        self.top
    }

    /// The shared permanent candidate set.
    pub fn candidates(&self) -> &Arc<[Point]> {
        &self.candidates
    }

    /// The shared posterior table over [`PreparedSet::candidates`].
    pub fn table(&self) -> &Arc<PosteriorTable> {
        &self.table
    }
}

/// Reusable staging area for fleet-wide protection installs.
///
/// Holds the batched-generation scratch (uniform/angle/radius lanes) and
/// the staged [`PreparedSet`]s of the current install; both keep their
/// allocations across [`CandidateArena::prepare`] calls, so a long-running
/// fleet closes windows with zero steady-state allocation beyond the
/// permanent `Arc`s themselves.
#[derive(Debug, Default)]
pub struct CandidateArena {
    scratch: BatchScratch,
    lanes: CandidateLanes,
    sets: Vec<PreparedSet>,
}

impl CandidateArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        CandidateArena::default()
    }

    /// Ensures `authority` covers every location of `tops` (batched
    /// generation, one derived stream per fresh `(window, top)` pair via
    /// `master`/`pair_counter` — see
    /// [`ObfuscationModule::obfuscate_top_set_derived`]), then stages one
    /// [`PreparedSet`] per queried top: the covering shared candidates and
    /// one shared posterior table per *distinct* covering set. Returns the
    /// number of freshly generated sets.
    pub fn prepare(
        &mut self,
        authority: &mut ObfuscationModule,
        tops: &[Point],
        master: u64,
        pair_counter: &mut u64,
    ) -> usize {
        self.sets.clear();
        let fresh = authority.obfuscate_top_set_derived(
            tops,
            master,
            pair_counter,
            &mut self.scratch,
            &mut self.lanes,
        );
        let selector = PosteriorSelector::new(authority.mechanism().sigma());
        for &top in tops {
            let candidates = authority
                .table()
                .get_shared(top)
                // lint:allow(panic-hygiene): provably infallible — obfuscate_top_set_derived just covered every queried top
                .expect("top covered after batched obfuscation");
            let candidates = Arc::clone(candidates);
            // Drifted tops can share one covering set; build its posterior
            // table once and hand out clones.
            let table = match self.sets.iter().find(|s| Arc::ptr_eq(&s.candidates, &candidates)) {
                Some(staged) => Arc::clone(&staged.table),
                None => Arc::new(selector.table(&candidates)),
            };
            self.sets.push(PreparedSet { top, candidates, table });
        }
        fresh
    }

    /// The staged sets of the latest [`CandidateArena::prepare`] call.
    pub fn sets(&self) -> &[PreparedSet] {
        &self.sets
    }

    /// Number of staged sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Returns `true` when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Split-borrow access to the generation buffers, for install paths
    /// that batch candidates without staging shared sets (an edge device's
    /// own window close).
    pub(crate) fn buffers(&mut self) -> (&mut BatchScratch, &mut CandidateLanes) {
        (&mut self.scratch, &mut self.lanes)
    }

    /// Accounts the staged shared sets into `fp` with caller-owned dedup
    /// state — the fleet-footprint leg that covers `Arc`s the staging
    /// area keeps alive. Sets already counted through a device that
    /// installed them (the common case) dedup to zero extra bytes.
    pub(crate) fn accumulate_footprint(
        &self,
        fp: &mut crate::StateFootprint,
        seen_sets: &mut std::collections::BTreeSet<usize>,
        seen_tables: &mut std::collections::BTreeSet<usize>,
    ) {
        use std::mem::size_of;
        for set in &self.sets {
            if seen_sets.insert(set.candidates.as_ptr() as usize) {
                fp.distinct_candidate_sets += 1;
                fp.shared_bytes +=
                    (set.candidates.len() * size_of::<Point>() + 2 * size_of::<usize>()) as u64;
            }
            if seen_tables.insert(Arc::as_ptr(&set.table) as usize) {
                fp.distinct_posterior_tables += 1;
                fp.shared_bytes += (std::mem::size_of_val(set.table.cdf())
                    + size_of::<PosteriorTable>()
                    + 2 * size_of::<usize>()) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::{derive_seed, seeded};
    use privlocad_mechanisms::{GeoIndParams, Lppm};

    fn authority(n: usize) -> ObfuscationModule {
        ObfuscationModule::new(GeoIndParams::new(500.0, 1.0, 0.01, n).unwrap(), 200.0)
    }

    #[test]
    fn prepare_stages_every_queried_top_with_shared_tables() {
        let mut auth = authority(6);
        let mut arena = CandidateArena::new();
        let mut counter = 0u64;
        // Two distant tops plus a drifted duplicate of the first.
        let tops = [Point::new(0.0, 0.0), Point::new(9_000.0, 0.0), Point::new(12.0, 5.0)];
        let fresh = arena.prepare(&mut auth, &tops, 7, &mut counter);
        assert_eq!(fresh, 2);
        assert_eq!(counter, 2);
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_empty());
        // The drifted duplicate shares both allocations with set 0.
        let sets = arena.sets();
        assert!(Arc::ptr_eq(sets[0].candidates(), sets[2].candidates()));
        assert!(Arc::ptr_eq(sets[0].table(), sets[2].table()));
        assert!(!Arc::ptr_eq(sets[0].candidates(), sets[1].candidates()));
        // Candidates match the derived-stream scalar reference.
        let mech = *auth.mechanism();
        for (k, set) in sets[..2].iter().enumerate() {
            let mut rng = seeded(derive_seed(7, k as u64));
            assert_eq!(&set.candidates()[..], mech.obfuscate(set.top(), &mut rng));
        }
        // And each table is exactly the per-edge rebuild it replaces.
        let selector = PosteriorSelector::new(auth.mechanism().sigma());
        for set in sets {
            assert_eq!(**set.table(), selector.table(set.candidates()));
        }
    }

    #[test]
    fn prepare_is_permanent_across_calls() {
        let mut auth = authority(4);
        let mut arena = CandidateArena::new();
        let mut counter = 0u64;
        let tops = [Point::new(0.0, 0.0)];
        arena.prepare(&mut auth, &tops, 3, &mut counter);
        let first = Arc::clone(arena.sets()[0].candidates());
        // Second window: the same top generates nothing new and re-stages
        // the same permanent allocation.
        let fresh = arena.prepare(&mut auth, &tops, 3, &mut counter);
        assert_eq!(fresh, 0);
        assert_eq!(counter, 1);
        assert!(Arc::ptr_eq(arena.sets()[0].candidates(), &first));
    }
}
