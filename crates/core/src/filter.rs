use privlocad_adnet::Campaign;
use privlocad_geo::{Circle, Point};

/// Filters ads returned for an obfuscated request down to those relevant
/// to the user's *true* area of interest.
///
/// Because the AOR is shifted away from the user, the ad network returns
/// campaigns the user does not care about; the trusted edge drops them
/// before forwarding to the device, which "can reduce the bandwidth
/// overhead" (Section V-A). Campaigns without a geographic business
/// location (area/country targeting) are kept — they are location-relevant
/// by construction of their coarser targeting.
///
/// # Panics
///
/// Panics if `targeting_radius_m` is not positive and finite.
///
/// # Examples
///
/// ```
/// use privlocad::filter_ads;
/// use privlocad_adnet::{Campaign, Targeting};
/// use privlocad_geo::Point;
///
/// let near = Campaign::new(0, "near", Targeting::radius(Point::new(1_000.0, 0.0), 5_000.0)?, 1.0)?;
/// let far = Campaign::new(1, "far", Targeting::radius(Point::new(30_000.0, 0.0), 5_000.0)?, 1.0)?;
/// let ads = [near, far];
/// let kept = filter_ads(&ads, Point::ORIGIN, 5_000.0);
/// assert_eq!(kept.len(), 1);
/// assert_eq!(kept[0].name(), "near");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn filter_ads(ads: &[Campaign], true_location: Point, targeting_radius_m: f64) -> Vec<&Campaign> {
    filter_ads_by(ads, true_location, targeting_radius_m)
}

/// [`filter_ads`] over any iterator of campaign references — e.g. the
/// borrowed matches straight out of `AdNetwork::matching`, without first
/// cloning them into an owned `Vec<Campaign>`.
///
/// # Panics
///
/// Panics if `targeting_radius_m` is not positive and finite.
pub fn filter_ads_by<'a>(
    ads: impl IntoIterator<Item = &'a Campaign>,
    true_location: Point,
    targeting_radius_m: f64,
) -> Vec<&'a Campaign> {
    let aoi = Circle::new(true_location, targeting_radius_m)
        // lint:allow(panic-hygiene): documented precondition — see the # Panics section above
        .expect("targeting radius must be positive and finite");
    ads.into_iter()
        .filter(|ad| match ad.business_location() {
            Some(loc) => aoi.contains(loc),
            None => true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_adnet::Targeting;

    fn radius_ad(id: u64, x: f64) -> Campaign {
        Campaign::new(id, format!("ad{id}"), Targeting::radius(Point::new(x, 0.0), 5_000.0).unwrap(), 1.0)
            .unwrap()
    }

    #[test]
    fn keeps_only_aoi_ads() {
        let ads = vec![radius_ad(0, 1_000.0), radius_ad(1, 4_999.0), radius_ad(2, 5_001.0)];
        let kept = filter_ads(&ads, Point::ORIGIN, 5_000.0);
        let ids: Vec<u64> = kept.iter().map(|a| a.id().raw()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn non_geographic_ads_pass_through() {
        let ads = vec![
            Campaign::new(0u64, "country", Targeting::Country(86), 1.0).unwrap(),
            radius_ad(1, 99_000.0),
        ];
        let kept = filter_ads(&ads, Point::ORIGIN, 5_000.0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name(), "country");
    }

    #[test]
    fn empty_input() {
        assert!(filter_ads(&[], Point::ORIGIN, 5_000.0).is_empty());
    }

    #[test]
    fn by_iterator_matches_slice_variant() {
        let ads = vec![radius_ad(0, 1_000.0), radius_ad(1, 99_000.0), radius_ad(2, 3_000.0)];
        let prefiltered: Vec<&Campaign> = ads.iter().filter(|a| a.id().raw() != 2).collect();
        let kept = filter_ads_by(prefiltered, Point::ORIGIN, 5_000.0);
        let ids: Vec<u64> = kept.iter().map(|a| a.id().raw()).collect();
        assert_eq!(ids, vec![0]);
        assert_eq!(
            filter_ads(&ads, Point::ORIGIN, 5_000.0),
            filter_ads_by(&ads, Point::ORIGIN, 5_000.0)
        );
    }

    #[test]
    #[should_panic(expected = "targeting radius")]
    fn rejects_bad_radius() {
        let _ = filter_ads(&[], Point::ORIGIN, 0.0);
    }
}
