//! Self-healing robustness fabric between the fleet front and its
//! shards: seeded faulty links, exactly-once delivery, deterministic
//! circuit breakers, and a privacy-safe degradation ladder.
//!
//! [`crate::ShardRouter`] (DESIGN.md §16) assumes its shards answer;
//! this module drops that assumption. A [`FabricRouter`] drives every
//! router↔shard call through a fault-injectable link governed by a
//! [`ChannelFaultPlan`] — frames are dropped, duplicated after a delay,
//! or corrupted in flight under a schedule derived from the master seed
//! — and keeps the paper's privacy contract intact anyway:
//!
//! 1. **Exactly-once delivery.** Every logical request travels in a
//!    sequence-numbered envelope ([`crate::protocol::encode_sequenced`])
//!    on its user's lane. The shard's dedup window replays the cached
//!    response frame for a duplicate, so device state and the
//!    privacy-budget ledger record each logical request exactly once no
//!    matter how many copies the wire delivers.
//! 2. **Supervision.** Per-shard consecutive-failure accounting feeds a
//!    deterministic circuit breaker ([`BreakerConfig`]): open after K
//!    failures, half-open probe after a *logical* cooldown counted in
//!    shed calls — never wall clock, consistent with
//!    [`crate::RetryPolicy`]'s spin-based design — and every call runs
//!    under a transmission budget so a dead link fails a request
//!    explicitly instead of hanging it.
//! 3. **Privacy-safe degradation.** While a breaker is open, location
//!    requests are served from a bounded [`StaleCache`] holding only
//!    *previously released obfuscated* locations (decoded from earlier
//!    responses — never fresh draws, never true locations), or rejected
//!    with an explicit [`FabricError::Degraded`]. Degradation fails
//!    closed in the geo-indistinguishability sense: nothing leaves the
//!    fabric that the adversary has not already seen.
//! 4. **Self-healing.** A shard that dies past its restart budget is
//!    respawned from its last committed checkpoint
//!    ([`crate::ServerOptions::restore_from`]), resuming every user's
//!    RNG stream bit-for-bit — the replacement never re-draws a
//!    released candidate (the longitudinal-privacy violation
//!    `crate::recovery` exists to prevent).
//!
//! Fault draws are keyed per *lane* (user) and per-lane delivery
//! ordinal, not per link: the same master seed injects the same faults
//! into a user's traffic whether the fleet runs 1, 4, or 16 shards,
//! which is what keeps the chaos bench's survival contract bit-for-bit
//! across shard counts.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use privlocad_telemetry::Telemetry;
use rand::Rng;

use crate::protocol::{encode_sequenced, ClientRequest, EdgeResponse};
use crate::server::{EdgeHandle, EdgeServer, FaultPlan, ServerOptions, TransportError};
use crate::{EdgeDevice, SystemConfig, SystemError};

/// Domain separator for fault-schedule RNG streams, far from the
/// per-user serving streams derived in `crate::edge`.
const FABRIC_FAULT_DOMAIN: u64 = u64::MAX - 2;

/// A deterministic outage: the link refuses `calls` consecutive
/// deliveries on one lane (ordinals `from .. from + calls`), as if the
/// shard were unreachable. Outage failures are what trip the circuit
/// breaker in tests and the chaos bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutage {
    /// The affected lane (raw user id).
    pub lane: u32,
    /// First lane-ordinal that fails.
    pub from: u64,
    /// How many consecutive lane-ordinals fail.
    pub calls: u32,
}

/// A seeded schedule of link faults on the router↔shard path.
///
/// Rates are per-mille probabilities drawn from a private RNG stream
/// per `(lane, ordinal)` — `derive_seed(derive_seed(derive_seed(seed,
/// FABRIC_FAULT_DOMAIN), lane), ordinal)` — so the schedule depends
/// only on the master seed and each user's own delivery sequence,
/// never on the user→shard partition or thread interleaving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelFaultPlan {
    /// Master seed for the fault streams.
    pub seed: u64,
    /// Per-mille chance a transmission is dropped on the wire (drawn up
    /// to twice per delivery: a delivery loses at most 2 transmissions).
    pub drop_per_mille: u32,
    /// Per-mille chance a served delivery leaves a stale duplicate copy
    /// behind on the link.
    pub duplicate_per_mille: u32,
    /// Upper bound on a duplicate's delay, counted in further
    /// deliveries on the same link before the copy is re-sent (the
    /// "delay-by-k-deliveries" model; actual k is drawn in `1..=max`).
    pub duplicate_delay: u32,
    /// Per-mille chance a transmission is corrupted in flight (drawn up
    /// to twice per delivery).
    pub corrupt_per_mille: u32,
    /// Scheduled lane outages (deterministic breaker fuel).
    pub outages: Vec<LaneOutage>,
}

/// What the plan decided for one logical delivery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DeliveryProfile {
    /// Leading transmissions that vanish on the wire.
    drops: u32,
    /// Transmissions (after the drops) that arrive corrupted.
    corrupts: u32,
    /// If set, a stale duplicate copy is queued and re-delivered after
    /// this many further deliveries on the link.
    duplicate: Option<u32>,
    /// Salt selecting which checksum bit the corruption flips.
    corrupt_salt: u32,
}

impl ChannelFaultPlan {
    /// The quiet plan: no faults, no outages.
    pub fn none() -> Self {
        ChannelFaultPlan::default()
    }

    /// True when the plan can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.drop_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.outages.is_empty()
    }

    /// True when `ordinal` on `lane` falls inside a scheduled outage.
    fn outage_active(&self, lane: u32, ordinal: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.lane == lane && o.from <= ordinal && ordinal < o.from + u64::from(o.calls))
    }

    /// Draws the fault profile for one delivery. Pure in `(self, lane,
    /// ordinal)`.
    fn draw(&self, lane: u32, ordinal: u64) -> DeliveryProfile {
        if self.drop_per_mille == 0
            && self.duplicate_per_mille == 0
            && self.corrupt_per_mille == 0
        {
            return DeliveryProfile::default();
        }
        let mut rng = seeded(derive_seed(
            derive_seed(derive_seed(self.seed, FABRIC_FAULT_DOMAIN), u64::from(lane)),
            ordinal,
        ));
        let mut drops = 0;
        while drops < 2 && rng.gen_range(0u32..1_000) < self.drop_per_mille {
            drops += 1;
        }
        let mut corrupts = 0;
        while corrupts < 2 && rng.gen_range(0u32..1_000) < self.corrupt_per_mille {
            corrupts += 1;
        }
        let duplicate = if rng.gen_range(0u32..1_000) < self.duplicate_per_mille {
            Some(1 + rng.gen_range(0..self.duplicate_delay.max(1)))
        } else {
            None
        };
        DeliveryProfile { drops, corrupts, duplicate, corrupt_salt: rng.gen() }
    }
}

/// Flips one bit inside a sequenced frame's declared checksum. The
/// recomputed checksum can then never match, so the shard is guaranteed
/// to detect the damage and answer with a malformed-frame strike — a
/// corrupted frame can never alias a cached response or apply as fresh.
fn corrupt_checksum(frame: &mut [u8], salt: u32) {
    // Checksum bytes sit at 9..13 of the sequenced header.
    let byte = 9 + (salt as usize % 4);
    let bit = (salt >> 8) % 8;
    frame[byte] ^= 1 << bit;
}

/// Circuit-breaker tuning. All quantities are logical counts — calls
/// and failures — never wall-clock durations, so breaker behaviour is
/// reproducible under any scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// Calls shed while open before the next call probes (half-open).
    pub cooldown: u32,
    /// Upper bound on the cooldown after repeated probe failures (the
    /// cooldown doubles on every reopen, capped here).
    pub max_cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 3, cooldown: 4, max_cooldown: 64 }
    }
}

/// The breaker's position in its open/half-open/closed cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls pass through; failures accumulate.
    Closed,
    /// Calls are shed (degraded serving) until the cooldown elapses.
    Open,
    /// The next call is a probe deciding between close and reopen.
    HalfOpen,
}

/// One entry of the breaker transition trace — the deterministic
/// witness the chaos tests compare across shard counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// The breaker opened after `failures` consecutive failures.
    Opened {
        /// Shard whose breaker transitioned.
        shard: usize,
        /// Consecutive failures that tripped it.
        failures: u32,
    },
    /// The cooldown elapsed; the triggering call runs as a probe.
    Probe {
        /// Shard whose breaker transitioned.
        shard: usize,
    },
    /// A probe succeeded; the breaker closed.
    Closed {
        /// Shard whose breaker transitioned.
        shard: usize,
    },
    /// A probe failed; the breaker reopened with a doubled cooldown.
    Reopened {
        /// Shard whose breaker transitioned.
        shard: usize,
        /// The new (doubled, capped) cooldown in shed calls.
        cooldown: u32,
    },
}

/// How the breaker admitted one call.
enum Admission {
    /// Closed: the call passes normally.
    Pass,
    /// Half-open: the call passes as the deciding probe.
    Probe,
    /// Open: the call is shed to the degradation ladder.
    Shed,
}

/// Per-shard consecutive-failure accounting and the deterministic
/// open → shed → probe → close/reopen state machine.
#[derive(Debug)]
struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    sheds: u32,
    cooldown: u32,
}

impl CircuitBreaker {
    fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            sheds: 0,
            cooldown: config.cooldown.max(1),
        }
    }

    fn admit(&mut self, shard: usize, trace: &mut Vec<BreakerEvent>) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Pass,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                self.sheds += 1;
                if self.sheds >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    trace.push(BreakerEvent::Probe { shard });
                    Admission::Probe
                } else {
                    Admission::Shed
                }
            }
        }
    }

    fn record_success(&mut self, shard: usize, trace: &mut Vec<BreakerEvent>) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
                self.sheds = 0;
                self.cooldown = self.config.cooldown.max(1);
                trace.push(BreakerEvent::Closed { shard });
            }
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::Open => {}
        }
    }

    fn record_failure(&mut self, shard: usize, trace: &mut Vec<BreakerEvent>) {
        match self.state {
            BreakerState::HalfOpen => {
                self.cooldown =
                    self.cooldown.saturating_mul(2).min(self.config.max_cooldown.max(1));
                self.state = BreakerState::Open;
                self.sheds = 0;
                trace.push(BreakerEvent::Reopened { shard, cooldown: self.cooldown });
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold.max(1) {
                    self.state = BreakerState::Open;
                    self.sheds = 0;
                    self.cooldown = self.config.cooldown.max(1);
                    trace.push(BreakerEvent::Opened {
                        shard,
                        failures: self.consecutive_failures,
                    });
                }
            }
            BreakerState::Open => {}
        }
    }
}

/// A bounded per-lane cache of the last *released obfuscated* location
/// each user was served — the only thing degraded serving may answer
/// with.
///
/// The cache is populated exclusively from decoded
/// [`EdgeResponse::ReportedLocation`] frames, i.e. outputs that already
/// crossed the release boundary: a degraded answer repeats something
/// the adversary has observed, so it spends zero additional privacy
/// budget. [`StaleCache::insert`] is modelled as a sink in the lint
/// flow analysis (the `degraded-cache` pattern) so a fresh taint source
/// can never reach it.
#[derive(Debug)]
pub struct StaleCache {
    capacity: usize,
    entries: BTreeMap<u32, Point>,
    order: std::collections::VecDeque<u32>,
}

impl StaleCache {
    /// An empty cache holding at most `capacity` lanes (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        StaleCache {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    /// Records `released` as the last released location on `lane`,
    /// evicting the oldest lane when full. Callers must only ever pass
    /// locations decoded from a response frame — never device state.
    pub fn insert(&mut self, lane: u32, released: Point) {
        if self.entries.insert(lane, released).is_none() {
            self.order.push_back(lane);
            while self.entries.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }

    /// The last released location on `lane`, if any survives.
    pub fn get(&self, lane: u32) -> Option<Point> {
        self.entries.get(&lane).copied()
    }

    /// Number of lanes currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no lane is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Errors surfaced by [`FabricRouter`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// The shard answered with a transport-level error.
    Transport(TransportError),
    /// The shard's breaker is open and no privacy-safe degraded answer
    /// exists (writes always take this path; reads take it when the
    /// stale cache has nothing for the lane).
    Degraded {
        /// The shard whose breaker shed the call.
        shard: usize,
    },
    /// An injected outage made the shard unreachable for this call.
    Unreachable {
        /// The unreachable shard.
        shard: usize,
    },
    /// The per-call transmission budget ran out before a clean delivery.
    DeadlineExceeded {
        /// The budget that was exhausted.
        budget: u32,
    },
    /// The shard died permanently and its heal budget is spent.
    ShardLost {
        /// The lost shard.
        shard: usize,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Transport(e) => write!(f, "transport error: {e}"),
            FabricError::Degraded { shard } => {
                write!(f, "shard {shard} breaker open and no released location to degrade to")
            }
            FabricError::Unreachable { shard } => write!(f, "shard {shard} unreachable (outage)"),
            FabricError::DeadlineExceeded { budget } => {
                write!(f, "transmission budget of {budget} exhausted before a clean delivery")
            }
            FabricError::ShardLost { shard } => {
                write!(f, "shard {shard} lost permanently (heal budget spent)")
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for FabricError {
    fn from(e: TransportError) -> Self {
        FabricError::Transport(e)
    }
}

/// A location answer from the fabric, labelled with how it was served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServedLocation {
    /// Drawn fresh by the owning shard (normal operation).
    Fresh(Point),
    /// Replayed from the stale cache while the shard's breaker is open
    /// — a previously released obfuscated location, nothing new.
    Degraded(Point),
}

impl ServedLocation {
    /// The reported location, however it was served.
    pub fn point(&self) -> Point {
        match *self {
            ServedLocation::Fresh(p) | ServedLocation::Degraded(p) => p,
        }
    }

    /// True when the answer came from the degradation ladder.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServedLocation::Degraded(_))
    }
}

/// Injected-fault and recovery totals, read via [`FabricRouter::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Transmissions dropped on the wire (masked by retransmission).
    pub drops_injected: u64,
    /// Transmissions corrupted in flight (caught by the checksum).
    pub corruptions_injected: u64,
    /// Stale duplicate copies re-delivered to shards.
    pub duplicates_injected: u64,
    /// Calls failed by scheduled outages.
    pub outage_failures: u64,
    /// Calls that exhausted their transmission budget.
    pub deadline_misses: u64,
    /// Reads answered from the stale cache while a breaker was open.
    pub degraded_serves: u64,
    /// Calls shed with an explicit [`FabricError::Degraded`] instead.
    pub degraded_rejections: u64,
    /// Shards respawned from their last committed checkpoint.
    pub heals: u64,
    /// Breaker transition events recorded (length of the trace).
    pub breaker_transitions: u64,
}

/// Tuning for a [`FabricRouter`].
#[derive(Debug, Clone)]
pub struct FabricOptions {
    /// Number of shards (clamped ≥ 1).
    pub shards: usize,
    /// The link fault schedule.
    pub fault_plan: ChannelFaultPlan,
    /// Circuit-breaker tuning, one breaker per shard.
    pub breaker: BreakerConfig,
    /// Stale-cache capacity in lanes.
    pub stale_capacity: usize,
    /// Transmissions allowed per logical call before it fails with
    /// [`FabricError::DeadlineExceeded`] (clamped ≥ 1).
    pub call_budget: u32,
    /// Checkpoint-respawn attempts allowed per shard.
    pub max_heals: u32,
    /// Per-shard worker crash schedules (index = shard; missing entries
    /// mean no injected kills).
    pub kill_plans: Vec<FaultPlan>,
    /// Template for each shard's [`ServerOptions`]; its telemetry hub
    /// is shared by every shard, and `per_user_streams` is forced on.
    pub server: ServerOptions,
}

impl Default for FabricOptions {
    fn default() -> Self {
        FabricOptions {
            shards: 1,
            fault_plan: ChannelFaultPlan::none(),
            breaker: BreakerConfig::default(),
            stale_capacity: 1_024,
            call_budget: 8,
            max_heals: 1,
            kill_plans: Vec::new(),
            server: ServerOptions::default(),
        }
    }
}

/// A queued stale duplicate waiting out its delivery delay.
#[derive(Debug)]
struct PendingDup {
    countdown: u32,
    frame: Vec<u8>,
}

/// Everything owned by one shard slot: the supervised server, its link
/// state (client-side sequence numbers, fault ordinals, pending
/// duplicates), and its breaker.
#[derive(Debug)]
struct ShardState {
    server: Option<EdgeServer>,
    handle: EdgeHandle,
    breaker: CircuitBreaker,
    lane_seq: BTreeMap<u32, u32>,
    lane_ordinal: BTreeMap<u32, u64>,
    pending: Vec<PendingDup>,
    heals: u32,
}

/// The self-healing fleet front: [`crate::ShardRouter`] semantics (O(1)
/// user→shard routing, per-user streams, one shared telemetry hub) plus
/// the fault model — every call crosses a [`ChannelFaultPlan`]-governed
/// link in a sequenced envelope, under a per-shard circuit breaker,
/// with checkpoint respawn for shards that die permanently.
///
/// # Examples
///
/// ```
/// use privlocad::{ChannelFaultPlan, FabricOptions, FabricRouter, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let options = FabricOptions {
///     shards: 2,
///     fault_plan: ChannelFaultPlan {
///         seed: 7,
///         drop_per_mille: 100,
///         duplicate_per_mille: 100,
///         duplicate_delay: 3,
///         corrupt_per_mille: 100,
///         ..ChannelFaultPlan::none()
///     },
///     ..FabricOptions::default()
/// };
/// let fabric = FabricRouter::spawn(SystemConfig::builder().build()?, 7, options);
/// let user = UserId::new(1);
/// for t in 0..40 {
///     fabric.check_in(user, Point::new(100.0, 100.0), t)?;
/// }
/// assert_eq!(fabric.finalize_window(user)?, 1);
/// let served = fabric.request_location(user, Point::new(100.0, 100.0))?;
/// assert!(!served.is_degraded());
/// fabric.shutdown()?;
/// fabric.join()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FabricRouter {
    config: SystemConfig,
    master: u64,
    shards: Vec<Mutex<ShardState>>,
    stale: Mutex<StaleCache>,
    stats: Mutex<FabricStats>,
    trace: Mutex<Vec<BreakerEvent>>,
    fault_plan: ChannelFaultPlan,
    call_budget: u32,
    max_heals: u32,
    server_template: ServerOptions,
    telemetry: Telemetry,
}

impl FabricRouter {
    /// Spawns `options.shards` supervised shards behind faulty links.
    /// Every shard serves per-user streams from `master` and publishes
    /// into the hub carried by `options.server.telemetry`.
    pub fn spawn(config: SystemConfig, master: u64, options: FabricOptions) -> FabricRouter {
        let shard_count = options.shards.max(1);
        let telemetry = options.server.telemetry.clone();
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let server_options = ServerOptions {
                per_user_streams: true,
                fault_plan: options.kill_plans.get(i).cloned().unwrap_or_default(),
                telemetry: telemetry.clone(),
                ..options.server.clone()
            };
            let (server, handle) = EdgeServer::spawn_with(config, master, server_options);
            shards.push(Mutex::new(ShardState {
                server: Some(server),
                handle,
                breaker: CircuitBreaker::new(options.breaker),
                lane_seq: BTreeMap::new(),
                lane_ordinal: BTreeMap::new(),
                pending: Vec::new(),
                heals: 0,
            }));
        }
        FabricRouter {
            config,
            master,
            shards,
            stale: Mutex::new(StaleCache::new(options.stale_capacity)),
            stats: Mutex::new(FabricStats::default()),
            trace: Mutex::new(Vec::new()),
            fault_plan: options.fault_plan,
            call_budget: options.call_budget.max(1),
            max_heals: options.max_heals,
            server_template: options.server,
            telemetry,
        }
    }

    /// Number of shards behind this fabric.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `user` — the same stateless modulo as
    /// [`crate::ShardRouter::route`].
    pub fn route(&self, user: UserId) -> usize {
        user.raw() as usize % self.shards.len()
    }

    /// Injected-fault and recovery totals so far.
    pub fn stats(&self) -> FabricStats {
        let mut stats = *self.stats.lock();
        stats.breaker_transitions = self.trace.lock().len() as u64;
        stats
    }

    /// The breaker transition trace so far, in event order — the
    /// deterministic witness compared across shard counts.
    pub fn trace(&self) -> Vec<BreakerEvent> {
        self.trace.lock().clone()
    }

    /// The telemetry hub every shard publishes into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Routes one typed request through the faulty link, the breaker,
    /// and the exactly-once envelope.
    ///
    /// # Errors
    ///
    /// See [`FabricError`]; shed reads are *not* degraded here — use
    /// [`FabricRouter::request_location`] for the degradation ladder.
    pub fn call(&self, user: UserId, request: ClientRequest) -> Result<EdgeResponse, FabricError> {
        let shard_idx = self.route(user);
        let mut state = self.shards[shard_idx].lock();
        self.drive(shard_idx, &mut state, user.raw(), request)
    }

    /// Routes a check-in. Writes have no privacy-safe degraded answer:
    /// a shed check-in fails with [`FabricError::Degraded`].
    ///
    /// # Errors
    ///
    /// Propagates [`FabricError`].
    pub fn check_in(
        &self,
        user: UserId,
        location: Point,
        timestamp: i64,
    ) -> Result<(), FabricError> {
        match self.guard_write(self.call(user, ClientRequest::CheckIn {
            user,
            location,
            timestamp,
        }))? {
            EdgeResponse::Ack => Ok(()),
            _ => Err(FabricError::Transport(TransportError::UnexpectedResponse)),
        }
    }

    /// Routes an ad-request location report, falling down the
    /// degradation ladder while the owning shard's breaker is open: the
    /// lane's last *released* location if the stale cache holds one
    /// ([`ServedLocation::Degraded`]), an explicit
    /// [`FabricError::Degraded`] otherwise. Never a fresh draw from
    /// stale state, never the true location.
    ///
    /// # Errors
    ///
    /// Propagates [`FabricError`].
    pub fn request_location(
        &self,
        user: UserId,
        location: Point,
    ) -> Result<ServedLocation, FabricError> {
        match self.call(user, ClientRequest::RequestLocation { user, location }) {
            Ok(EdgeResponse::ReportedLocation { location }) => {
                // The decoded response is a released candidate — the only
                // thing allowed into the degradation cache. Qualified call:
                // the flow engine models `StaleCache::insert` as a sink.
                StaleCache::insert(&mut self.stale.lock(), user.raw(), location);
                Ok(ServedLocation::Fresh(location))
            }
            Ok(_) => Err(FabricError::Transport(TransportError::UnexpectedResponse)),
            Err(FabricError::Degraded { shard }) => match self.stale.lock().get(user.raw()) {
                Some(last_released) => {
                    self.stats.lock().degraded_serves += 1;
                    Ok(ServedLocation::Degraded(last_released))
                }
                None => {
                    self.stats.lock().degraded_rejections += 1;
                    Err(FabricError::Degraded { shard })
                }
            },
            Err(e) => Err(e),
        }
    }

    /// Routes a window close (a write: no degraded answer).
    ///
    /// # Errors
    ///
    /// Propagates [`FabricError`].
    pub fn finalize_window(&self, user: UserId) -> Result<u32, FabricError> {
        match self.guard_write(self.call(user, ClientRequest::FinalizeWindow { user }))? {
            EdgeResponse::WindowClosed { fresh_obfuscations } => Ok(fresh_obfuscations),
            _ => Err(FabricError::Transport(TransportError::UnexpectedResponse)),
        }
    }

    /// Books a shed write in the stats before propagating it.
    fn guard_write(
        &self,
        outcome: Result<EdgeResponse, FabricError>,
    ) -> Result<EdgeResponse, FabricError> {
        if let Err(FabricError::Degraded { .. }) = &outcome {
            self.stats.lock().degraded_rejections += 1;
        }
        outcome
    }

    /// Dispatches a batch of pre-routed requests concurrently, one
    /// worker per shard, preserving each shard's input order — the
    /// fabric analogue of [`crate::ShardRouter::dispatch`]. Shed calls
    /// surface as [`FabricError::Degraded`]; the stale-cache ladder is
    /// only consulted by the typed [`FabricRouter::request_location`].
    pub fn dispatch(
        &self,
        requests: &[(UserId, ClientRequest)],
    ) -> Vec<Result<EdgeResponse, FabricError>> {
        let mut lanes: Vec<Vec<(usize, u32, ClientRequest)>> =
            vec![Vec::new(); self.shards.len()];
        for (i, &(user, request)) in requests.iter().enumerate() {
            lanes[self.route(user)].push((i, user.raw(), request));
        }
        let mut results: Vec<Option<Result<EdgeResponse, FabricError>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut answered: Vec<Vec<(usize, Result<EdgeResponse, FabricError>)>> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = lanes
                    .iter()
                    .enumerate()
                    .map(|(shard_idx, lane)| {
                        scope.spawn(move || {
                            let mut state = self.shards[shard_idx].lock();
                            lane.iter()
                                .map(|&(i, lane_id, request)| {
                                    (i, self.drive(shard_idx, &mut state, lane_id, request))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    // lint:allow(panic-hygiene): provably infallible — the worker closure only forwards `drive` results (errors travel as values) and cannot itself panic
                    .map(|w| w.join().expect("fabric dispatch worker panicked"))
                    .collect()
            });
        for (i, outcome) in answered.iter_mut().flat_map(|lane| lane.drain(..)) {
            results[i] = Some(outcome);
        }
        // lint:allow(panic-hygiene): provably infallible — every input index was pushed into exactly one lane above, so every slot is filled
        results.into_iter().map(|r| r.expect("every request answered")).collect()
    }

    /// The full link + exactly-once + breaker pipeline for one call.
    fn drive(
        &self,
        shard_idx: usize,
        state: &mut ShardState,
        lane: u32,
        request: ClientRequest,
    ) -> Result<EdgeResponse, FabricError> {
        let admission = state.breaker.admit(shard_idx, &mut self.trace.lock());
        if matches!(admission, Admission::Shed) {
            return Err(FabricError::Degraded { shard: shard_idx });
        }
        // One lane-ordinal per admitted call: the clock outages and
        // fault draws run on, invariant to the user→shard partition.
        let ordinal = {
            let next = state.lane_ordinal.entry(lane).or_insert(0);
            let current = *next;
            *next += 1;
            current
        };
        if self.fault_plan.outage_active(lane, ordinal) {
            self.stats.lock().outage_failures += 1;
            state.breaker.record_failure(shard_idx, &mut self.trace.lock());
            return Err(FabricError::Unreachable { shard: shard_idx });
        }
        let profile = self.fault_plan.draw(lane, ordinal);
        let seq = *state.lane_seq.entry(lane).or_insert(0);
        let frame = encode_sequenced(lane, seq, &request);
        let mut drops_left = profile.drops;
        let mut corrupts_left = profile.corrupts;
        let mut budget = self.call_budget;
        let response = loop {
            if budget == 0 {
                self.stats.lock().deadline_misses += 1;
                state.breaker.record_failure(shard_idx, &mut self.trace.lock());
                return Err(FabricError::DeadlineExceeded { budget: self.call_budget });
            }
            budget -= 1;
            if drops_left > 0 {
                // The transmission vanishes on the wire; the link notices
                // the missing response and retransmits.
                drops_left -= 1;
                self.stats.lock().drops_injected += 1;
                continue;
            }
            if corrupts_left > 0 {
                corrupts_left -= 1;
                self.stats.lock().corruptions_injected += 1;
                let mut damaged = frame.clone();
                corrupt_checksum(&mut damaged, profile.corrupt_salt);
                match state.handle.call_raw(damaged) {
                    // The checksum caught the damage; the strike reply is
                    // the link's cue to retransmit cleanly.
                    Err(TransportError::Malformed { .. }) => continue,
                    Err(TransportError::WorkerFailed { .. } | TransportError::Disconnected) => {
                        self.heal(shard_idx, state)?;
                        continue;
                    }
                    // Decode of a checksum-flipped frame cannot succeed;
                    // treat anything else as a lost transmission.
                    _ => continue,
                }
            }
            match state.handle.call_raw(frame.clone()) {
                Ok(response) => break response,
                Err(TransportError::WorkerFailed { .. } | TransportError::Disconnected) => {
                    // Commit-before-reply means the failed call was never
                    // applied: the healed shard sees the same seq as a
                    // first (and only) application.
                    self.heal(shard_idx, state)?;
                    continue;
                }
                Err(e) => {
                    state.breaker.record_failure(shard_idx, &mut self.trace.lock());
                    return Err(FabricError::Transport(e));
                }
            }
        };
        state.lane_seq.insert(lane, seq.wrapping_add(1));
        state.breaker.record_success(shard_idx, &mut self.trace.lock());
        if let Some(delay) = profile.duplicate {
            state.pending.push(PendingDup { countdown: delay, frame });
        }
        self.flush_due(state);
        Ok(response)
    }

    /// Respawns a permanently failed shard from its last committed
    /// checkpoint, swapping the fresh handle into the slot. Pending
    /// stale duplicates are discarded: the respawned shard's dedup
    /// window is empty, so re-delivering them would double-apply.
    fn heal(&self, shard_idx: usize, state: &mut ShardState) -> Result<(), FabricError> {
        if state.heals >= self.max_heals {
            state.breaker.record_failure(shard_idx, &mut self.trace.lock());
            return Err(FabricError::ShardLost { shard: shard_idx });
        }
        let Some(server) = state.server.take() else {
            state.breaker.record_failure(shard_idx, &mut self.trace.lock());
            return Err(FabricError::ShardLost { shard: shard_idx });
        };
        let checkpoint = server.last_checkpoint();
        // The dead worker already failed its pending replies explicitly;
        // joining reaps the thread. Its WorkerFailed outcome is expected.
        let _ = server.join();
        let server_options = ServerOptions {
            per_user_streams: true,
            // The predecessor's kill plan died with it: injected crash
            // schedules are not re-armed on the replacement.
            fault_plan: FaultPlan::none(),
            telemetry: self.telemetry.clone(),
            restore_from: (!checkpoint.is_empty()).then_some(checkpoint),
            ..self.server_template.clone()
        };
        let (server, handle) = EdgeServer::spawn_with(self.config, self.master, server_options);
        state.server = Some(server);
        state.handle = handle;
        state.pending.clear();
        state.heals += 1;
        self.stats.lock().heals += 1;
        Ok(())
    }

    /// Ticks pending duplicates by one delivery and re-sends the due
    /// ones. The shard replays each from its dedup window (or rejects
    /// it as stale) — never a second application.
    fn flush_due(&self, state: &mut ShardState) {
        let mut i = 0;
        while i < state.pending.len() {
            if state.pending[i].countdown > 1 {
                state.pending[i].countdown -= 1;
                i += 1;
            } else {
                let dup = state.pending.remove(i);
                self.stats.lock().duplicates_injected += 1;
                let _ = state.handle.call_raw(dup.frame);
            }
        }
    }

    /// Delivers every still-pending duplicate immediately (shutdown
    /// path: delayed copies must not silently disappear, or the
    /// injected/suppressed accounting would depend on timing).
    fn flush_all(&self, state: &mut ShardState) {
        for dup in state.pending.drain(..) {
            self.stats.lock().duplicates_injected += 1;
            let _ = state.handle.call_raw(dup.frame);
        }
    }

    /// Flushes pending duplicates and stops every shard (first failure
    /// wins; remaining shards are still asked to stop).
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`TransportError`], if any — a shard
    /// already lost permanently reports `Disconnected`.
    pub fn shutdown(&self) -> Result<(), TransportError> {
        let mut first_err = None;
        for slot in &self.shards {
            let mut state = slot.lock();
            self.flush_all(&mut state);
            if let Err(e) = state.handle.shutdown() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Waits for every shard to finish and returns the final devices in
    /// shard order.
    ///
    /// # Errors
    ///
    /// Returns the first shard's [`SystemError`]; later shards are
    /// still joined so no worker thread leaks.
    pub fn join(self) -> Result<Vec<EdgeDevice>, SystemError> {
        let mut devices = Vec::with_capacity(self.shards.len());
        let mut first_err = None;
        for slot in self.shards {
            let state = slot.into_inner();
            drop(state.handle);
            if let Some(server) = state.server {
                match server.join() {
                    Ok(device) => devices.push(device),
                    Err(e) => {
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(devices),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig {
        SystemConfig::builder().build().unwrap()
    }

    fn home_of(user: UserId) -> Point {
        Point::new(f64::from(user.raw()) * 7_000.0, 300.0)
    }

    fn chaos_plan(seed: u64) -> ChannelFaultPlan {
        ChannelFaultPlan {
            seed,
            drop_per_mille: 120,
            duplicate_per_mille: 150,
            duplicate_delay: 3,
            corrupt_per_mille: 120,
            outages: Vec::new(),
        }
    }

    #[test]
    fn fault_draws_are_deterministic_and_lane_keyed() {
        let plan = chaos_plan(42);
        for lane in 0..8 {
            for ordinal in 0..32 {
                assert_eq!(plan.draw(lane, ordinal), plan.draw(lane, ordinal));
            }
        }
        // Different lanes see different schedules (at these rates, 64
        // draws collapsing to identical profiles would be astronomical).
        let a: Vec<_> = (0..64).map(|o| plan.draw(1, o)).collect();
        let b: Vec<_> = (0..64).map(|o| plan.draw(2, o)).collect();
        assert_ne!(a, b);
        assert!(ChannelFaultPlan::none().is_quiet());
        assert_eq!(ChannelFaultPlan::none().draw(5, 5), DeliveryProfile::default());
    }

    #[test]
    fn breaker_walks_open_shed_probe_close_and_reopen() {
        let mut trace = Vec::new();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 2,
            max_cooldown: 8,
        });
        assert!(matches!(breaker.admit(0, &mut trace), Admission::Pass));
        breaker.record_failure(0, &mut trace);
        assert!(trace.is_empty(), "one failure is below the threshold");
        breaker.record_failure(0, &mut trace);
        assert_eq!(trace, vec![BreakerEvent::Opened { shard: 0, failures: 2 }]);
        // Shed once, then the cooldown elapses and the next call probes.
        assert!(matches!(breaker.admit(0, &mut trace), Admission::Shed));
        assert!(matches!(breaker.admit(0, &mut trace), Admission::Probe));
        // Probe fails: reopen with doubled cooldown.
        breaker.record_failure(0, &mut trace);
        assert_eq!(trace.last(), Some(&BreakerEvent::Reopened { shard: 0, cooldown: 4 }));
        for _ in 0..3 {
            assert!(matches!(breaker.admit(0, &mut trace), Admission::Shed));
        }
        assert!(matches!(breaker.admit(0, &mut trace), Admission::Probe));
        breaker.record_success(0, &mut trace);
        assert_eq!(trace.last(), Some(&BreakerEvent::Closed { shard: 0 }));
        assert!(matches!(breaker.admit(0, &mut trace), Admission::Pass));
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn stale_cache_is_bounded_and_last_release_wins() {
        let mut cache = StaleCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, Point::new(1.0, 1.0));
        cache.insert(1, Point::new(2.0, 2.0));
        assert_eq!(cache.get(1), Some(Point::new(2.0, 2.0)));
        assert_eq!(cache.len(), 1);
        cache.insert(2, Point::new(3.0, 3.0));
        cache.insert(3, Point::new(4.0, 4.0));
        // Lane 1 (oldest) was evicted to stay within capacity.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.get(3), Some(Point::new(4.0, 4.0)));
    }

    #[test]
    fn faulty_links_mask_drops_corruption_and_duplicates() {
        let drive = |options: FabricOptions| {
            let fabric = FabricRouter::spawn(config(), 23, options);
            let users: Vec<UserId> = (0..6).map(UserId::new).collect();
            for t in 0..40 {
                for &u in &users {
                    fabric.check_in(u, home_of(u), t).unwrap();
                }
            }
            for &u in &users {
                assert_eq!(fabric.finalize_window(u).unwrap(), 1);
            }
            let reports: Vec<Point> = users
                .iter()
                .map(|&u| fabric.request_location(u, home_of(u)).unwrap().point())
                .collect();
            let stats = fabric.stats();
            fabric.shutdown().unwrap();
            let digests: Vec<u64> =
                fabric.join().unwrap().iter().map(EdgeDevice::state_digest).collect();
            (reports, digests, stats)
        };
        let clean = drive(FabricOptions::default());
        assert_eq!(clean.2, FabricStats::default());
        let faulty = drive(FabricOptions {
            fault_plan: chaos_plan(23),
            ..FabricOptions::default()
        });
        // Faults were actually injected, and every one was masked: the
        // outputs and full device state match the fault-free run.
        assert!(faulty.2.drops_injected > 0);
        assert!(faulty.2.corruptions_injected > 0);
        assert!(faulty.2.duplicates_injected > 0);
        assert_eq!(faulty.2.breaker_transitions, 0);
        assert_eq!(faulty.0, clean.0);
        assert_eq!(faulty.1, clean.1);
    }

    #[test]
    fn duplicate_suppression_totals_are_shard_count_invariant() {
        let drive = |shards: usize| {
            let fabric = FabricRouter::spawn(config(), 31, FabricOptions {
                shards,
                fault_plan: chaos_plan(31),
                ..FabricOptions::default()
            });
            let users: Vec<UserId> = (0..8).map(UserId::new).collect();
            for t in 0..40 {
                for &u in &users {
                    fabric.check_in(u, home_of(u), t).unwrap();
                }
            }
            for &u in &users {
                fabric.finalize_window(u).unwrap();
            }
            let reports: Vec<Point> = users
                .iter()
                .map(|&u| fabric.request_location(u, home_of(u)).unwrap().point())
                .collect();
            let stats = fabric.stats();
            fabric.shutdown().unwrap();
            let suppressed = fabric
                .telemetry()
                .registry()
                .snapshot()
                .counter("server.duplicates_suppressed")
                .unwrap();
            fabric.join().unwrap();
            (reports, stats, suppressed)
        };
        let one = drive(1);
        let four = drive(4);
        assert_eq!(one.0, four.0);
        // Lane-keyed fault draws: injected totals are identical whatever
        // the partition, and the shards suppressed every single copy.
        assert_eq!(one.1, four.1);
        assert!(one.1.duplicates_injected > 0);
        assert_eq!(one.2, four.2);
        assert_eq!(one.2, one.1.duplicates_injected);
    }

    #[test]
    fn degraded_serving_fails_closed() {
        // Lane 0 goes dark for 3 calls starting at its 42nd delivery
        // (after priming: 40 check-ins + finalize + 1 request = 42).
        let outage = LaneOutage { lane: 0, from: 42, calls: 3 };
        let fabric = FabricRouter::spawn(config(), 5, FabricOptions {
            fault_plan: ChannelFaultPlan {
                seed: 5,
                outages: vec![outage],
                ..ChannelFaultPlan::none()
            },
            breaker: BreakerConfig { failure_threshold: 2, cooldown: 4, max_cooldown: 8 },
            ..FabricOptions::default()
        });
        let user = UserId::new(0);
        let fresh = UserId::new(1);
        for t in 0..40 {
            fabric.check_in(user, home_of(user), t).unwrap();
        }
        fabric.finalize_window(user).unwrap();
        let released = fabric.request_location(user, home_of(user)).unwrap();
        assert!(!released.is_degraded());
        // Outage: two failures open the breaker.
        for _ in 0..2 {
            assert_eq!(
                fabric.request_location(user, home_of(user)).unwrap_err(),
                FabricError::Unreachable { shard: 0 }
            );
        }
        assert_eq!(fabric.trace(), vec![BreakerEvent::Opened { shard: 0, failures: 2 }]);
        // Shed 1: reads degrade to the last *released* location —
        // bit-identical to what already crossed the trust boundary.
        let degraded = fabric.request_location(user, home_of(user)).unwrap();
        assert_eq!(degraded, ServedLocation::Degraded(released.point()));
        // Sheds 2 and 3: writes fail closed, and a lane with no release
        // history gets an explicit error — never a fresh draw, never a
        // true location.
        assert_eq!(
            fabric.check_in(user, home_of(user), 99).unwrap_err(),
            FabricError::Degraded { shard: 0 }
        );
        assert_eq!(
            fabric.request_location(fresh, home_of(fresh)).unwrap_err(),
            FabricError::Degraded { shard: 0 }
        );
        // Shed 4 elapses the cooldown: this call probes. The outage has
        // one failing call left (ordinal 44), so the probe reopens the
        // breaker with a doubled cooldown...
        assert_eq!(
            fabric.request_location(user, home_of(user)).unwrap_err(),
            FabricError::Unreachable { shard: 0 }
        );
        assert_eq!(
            fabric.trace().last(),
            Some(&BreakerEvent::Reopened { shard: 0, cooldown: 8 })
        );
        // ...and after 7 more degraded sheds the second probe lands past
        // the outage window and closes it.
        let mut degraded_serves = 0;
        loop {
            match fabric.request_location(user, home_of(user)) {
                Ok(ServedLocation::Degraded(p)) => {
                    assert_eq!(p, released.point());
                    degraded_serves += 1;
                }
                Ok(ServedLocation::Fresh(_)) => break,
                Err(e) => panic!("probe should succeed after the outage: {e}"),
            }
        }
        assert_eq!(degraded_serves, 7);
        assert_eq!(fabric.trace().last(), Some(&BreakerEvent::Closed { shard: 0 }));
        let stats = fabric.stats();
        assert_eq!(stats.outage_failures, 3);
        assert_eq!(stats.degraded_serves, 1 + 7);
        assert_eq!(stats.degraded_rejections, 2);
        assert_eq!(stats.breaker_transitions, fabric.trace().len() as u64);
        fabric.shutdown().unwrap();
        fabric.join().unwrap();
    }

    #[test]
    fn healed_shard_resumes_bit_for_bit() {
        let drive = |kill_plans: Vec<FaultPlan>, max_restarts: u32| {
            let fabric = FabricRouter::spawn(config(), 13, FabricOptions {
                kill_plans,
                server: ServerOptions {
                    max_restarts,
                    backoff_base: 1,
                    backoff_cap: 1,
                    ..ServerOptions::default()
                },
                ..FabricOptions::default()
            });
            let users: Vec<UserId> = (0..3).map(UserId::new).collect();
            for t in 0..40 {
                for &u in &users {
                    fabric.check_in(u, home_of(u), t).unwrap();
                }
            }
            for &u in &users {
                assert_eq!(fabric.finalize_window(u).unwrap(), 1);
            }
            let reports: Vec<Point> = users
                .iter()
                .map(|&u| fabric.request_location(u, home_of(u)).unwrap().point())
                .collect();
            let stats = fabric.stats();
            fabric.shutdown().unwrap();
            let digests: Vec<u64> =
                fabric.join().unwrap().iter().map(EdgeDevice::state_digest).collect();
            (reports, digests, stats)
        };
        let clean = drive(Vec::new(), 8);
        // Kill ordinals 60 and 61 with a zero restart budget: the shard
        // dies permanently mid-run and the fabric must respawn it from
        // its last committed checkpoint.
        let healed = drive(vec![FaultPlan::kill_at([60, 61])], 0);
        assert_eq!(healed.2.heals, 1);
        assert_eq!(healed.0, clean.0);
        assert_eq!(healed.1, clean.1);
    }

    #[test]
    fn lost_shard_past_heal_budget_fails_explicitly() {
        let fabric = FabricRouter::spawn(config(), 3, FabricOptions {
            // Every served ordinal is a kill point: the first heal's
            // replacement is clean, but the original dies immediately
            // and a zero heal budget leaves nothing to swap in.
            kill_plans: vec![FaultPlan::kill_at(0..4)],
            max_heals: 0,
            server: ServerOptions {
                max_restarts: 0,
                backoff_base: 1,
                backoff_cap: 1,
                ..ServerOptions::default()
            },
            ..FabricOptions::default()
        });
        let user = UserId::new(0);
        let err = fabric.check_in(user, home_of(user), 0).unwrap_err();
        assert_eq!(err, FabricError::ShardLost { shard: 0 });
        // The loss is also a breaker failure.
        assert_eq!(fabric.stats().heals, 0);
        let _ = fabric.shutdown();
        assert!(fabric.join().is_err());
    }

    #[test]
    fn deadline_budget_bounds_a_dead_wire() {
        // 100% drop rate with the 2-drop cap still converges; a budget
        // of 1 cannot absorb even one drop and must fail explicitly.
        let plan = ChannelFaultPlan {
            seed: 9,
            drop_per_mille: 1_000,
            ..ChannelFaultPlan::none()
        };
        let fabric = FabricRouter::spawn(config(), 9, FabricOptions {
            fault_plan: plan.clone(),
            call_budget: 1,
            breaker: BreakerConfig { failure_threshold: 1, cooldown: 1, max_cooldown: 2 },
            ..FabricOptions::default()
        });
        let user = UserId::new(0);
        assert_eq!(
            fabric.check_in(user, home_of(user), 0).unwrap_err(),
            FabricError::DeadlineExceeded { budget: 1 }
        );
        assert_eq!(fabric.stats().deadline_misses, 1);
        assert_eq!(fabric.trace(), vec![BreakerEvent::Opened { shard: 0, failures: 1 }]);
        fabric.shutdown().unwrap();
        fabric.join().unwrap();
    }

    #[test]
    fn fabric_error_display_and_source() {
        use std::error::Error;
        let e = FabricError::Transport(TransportError::Disconnected);
        assert!(e.to_string().contains("transport error"));
        assert!(e.source().is_some());
        for e in [
            FabricError::Degraded { shard: 1 },
            FabricError::Unreachable { shard: 2 },
            FabricError::DeadlineExceeded { budget: 3 },
            FabricError::ShardLost { shard: 4 },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
        assert_eq!(
            FabricError::from(TransportError::Overloaded),
            FabricError::Transport(TransportError::Overloaded)
        );
    }
}
