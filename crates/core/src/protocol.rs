//! The client ↔ edge wire protocol.
//!
//! Edge-PrivLocAd's deployment separates the mobile client from the edge
//! device; this module defines the message set exchanged between them and
//! a compact binary framing so the pair can run over any byte transport.
//! [`EdgeHandle`](crate::EdgeHandle) (the client side) and
//! [`EdgeServer`](crate::EdgeServer) implement the two endpoints over an
//! in-process channel; a production deployment would move the same frames
//! over the radio link.
//!
//! Frames carry a one-byte tag followed by a fixed layout per message
//! type, all integers big-endian. Decoding is *total*: every parse path
//! is bounds-checked and rejects truncated, oversized, trailing-garbage,
//! and unknown-tag input with a [`FrameError`] — corrupted bytes can
//! never panic the serving loop. For byte-stream transports that do not
//! preserve message boundaries, [`frame`]/[`deframe`] add a length
//! prefix that is itself validated against [`MAX_FRAME_LEN`], so a lying
//! length field cannot trigger unbounded reads or allocations.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use serde::{Deserialize, Serialize};

/// A client → edge request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Passively report a true-location check-in (no response expected).
    CheckIn {
        /// The reporting user.
        user: UserId,
        /// True location in study-plane meters.
        location: Point,
        /// Seconds since the study epoch.
        timestamp: i64,
    },
    /// Ask the edge which location to report for an LBA request.
    RequestLocation {
        /// The requesting user.
        user: UserId,
        /// Current true location.
        location: Point,
    },
    /// Ask the edge to close the user's profile window now.
    FinalizeWindow {
        /// The user whose window closes.
        user: UserId,
    },
    /// Orderly shutdown of the serving loop.
    Shutdown,
}

/// An edge → client response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EdgeResponse {
    /// The obfuscated location to use for the LBA request.
    ReportedLocation {
        /// The location to send to the ad network.
        location: Point,
    },
    /// Window closed; how many top locations were freshly obfuscated.
    WindowClosed {
        /// Newly protected top locations.
        fresh_obfuscations: u32,
    },
    /// Acknowledgement without payload (check-ins, shutdown).
    Ack,
    /// The request could not be served; the supervisor reports why so the
    /// client's reply channel fails explicitly instead of hanging.
    Error {
        /// Why the request failed.
        code: ErrorCode,
        /// Code-specific detail: remaining malformed-frame strikes for
        /// [`ErrorCode::Malformed`], worker restart count for
        /// [`ErrorCode::WorkerFailed`].
        detail: u32,
    },
}

/// Failure reason carried by an [`EdgeResponse::Error`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request frame failed to decode on the server side.
    Malformed,
    /// The worker serving the request failed permanently (panicked past
    /// its restart budget).
    WorkerFailed,
    /// A sequenced frame carried a sequence number older than the
    /// server's dedup window: the original response can no longer be
    /// replayed, and re-serving would double-apply the request, so it is
    /// rejected explicitly.
    StaleSequence,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::Malformed => 0x01,
            ErrorCode::WorkerFailed => 0x02,
            ErrorCode::StaleSequence => 0x03,
        }
    }

    fn from_wire(byte: u8) -> Result<Self, FrameError> {
        match byte {
            0x01 => Ok(ErrorCode::Malformed),
            0x02 => Ok(ErrorCode::WorkerFailed),
            0x03 => Ok(ErrorCode::StaleSequence),
            other => Err(FrameError::UnknownErrorCode(other)),
        }
    }
}

/// Error decoding a protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer is shorter than the frame layout requires.
    Truncated {
        /// Bytes required by the tag's layout.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The leading tag byte is not a known message type.
    UnknownTag(u8),
    /// The buffer is empty.
    Empty,
    /// The frame is longer than its tag's fixed layout — trailing bytes
    /// mean the sender and receiver disagree about the layout, so the
    /// whole frame is suspect.
    TrailingBytes {
        /// The frame's tag byte.
        tag: u8,
        /// Bytes past the end of the layout.
        extra: usize,
    },
    /// A length prefix declares a frame larger than any legal message.
    Oversized {
        /// The declared body length.
        declared: usize,
        /// The largest legal body length ([`MAX_FRAME_LEN`]).
        max: usize,
    },
    /// An [`EdgeResponse::Error`] frame carries an unknown failure code.
    UnknownErrorCode(u8),
    /// A sequenced frame's header checksum does not match its contents —
    /// the frame was corrupted in transit and nothing in it (not even the
    /// lane and sequence fields) can be trusted.
    ChecksumMismatch {
        /// The checksum the header declares.
        declared: u32,
        /// The checksum computed over the received bytes.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::Empty => write!(f, "empty frame"),
            FrameError::TrailingBytes { tag, extra } => {
                write!(f, "frame with tag {tag:#04x} has {extra} trailing bytes")
            }
            FrameError::Oversized { declared, max } => {
                write!(f, "length prefix declares {declared} bytes, max frame is {max}")
            }
            FrameError::UnknownErrorCode(c) => {
                write!(f, "unknown error code {c:#04x} in error frame")
            }
            FrameError::ChecksumMismatch { declared, computed } => {
                write!(
                    f,
                    "sequenced frame checksum mismatch: header declares {declared:#010x}, bytes hash to {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

const TAG_CHECK_IN: u8 = 0x01;
const TAG_REQUEST_LOCATION: u8 = 0x02;
const TAG_FINALIZE: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_SEQUENCED: u8 = 0x05;
const TAG_REPORTED: u8 = 0x81;
const TAG_WINDOW_CLOSED: u8 = 0x82;
const TAG_ACK: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;

/// Largest legal frame body in bytes. The biggest fixed layout is a
/// check-in (29 bytes); anything larger declared by a length prefix is
/// corruption, rejected before any read or allocation happens.
pub const MAX_FRAME_LEN: usize = 64;

fn need(buf: &[u8], needed: usize) -> Result<(), FrameError> {
    if buf.len() < needed {
        Err(FrameError::Truncated { needed, got: buf.len() })
    } else {
        Ok(())
    }
}

/// Rejects frames longer than their tag's fixed layout: `rest` must be
/// exactly what the layout consumed.
fn finish(tag: u8, rest: &[u8]) -> Result<(), FrameError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(FrameError::TrailingBytes { tag, extra: rest.len() })
    }
}

/// Length-prefixes a frame body for byte-stream transports: a big-endian
/// `u16` length followed by the body.
///
/// # Panics
///
/// Panics if `body` exceeds [`MAX_FRAME_LEN`] — encoders in this module
/// never produce such a frame.
pub fn frame(body: &[u8]) -> Bytes {
    assert!(body.len() <= MAX_FRAME_LEN, "frame body exceeds MAX_FRAME_LEN");
    let mut buf = BytesMut::with_capacity(2 + body.len());
    buf.put_u16(body.len() as u16);
    buf.put_slice(body);
    buf.freeze()
}

/// Splits one length-prefixed frame off the front of `buf`, returning
/// `(body, rest)`.
///
/// Total: a lying length prefix yields [`FrameError::Oversized`] (declared
/// length past [`MAX_FRAME_LEN`]) or [`FrameError::Truncated`] (declared
/// length past the available bytes) — never a panic or an out-of-bounds
/// read. The body still has to pass its own tag-layout decode.
///
/// # Errors
///
/// Returns a [`FrameError`] for empty, truncated, or oversized input.
pub fn deframe(buf: &[u8]) -> Result<(&[u8], &[u8]), FrameError> {
    if buf.is_empty() {
        return Err(FrameError::Empty);
    }
    need(buf, 2)?;
    let declared = usize::from(u16::from_be_bytes([buf[0], buf[1]]));
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { declared, max: MAX_FRAME_LEN });
    }
    need(&buf[2..], declared)?;
    Ok((&buf[2..2 + declared], &buf[2 + declared..]))
}

/// The delivery header of a sequenced request frame: which per-user lane
/// the request belongs to and its position in that lane's logical
/// sequence. The pair identifies one *logical* request however many
/// times the transport delivers it, which is what lets the server's
/// dedup window give every request exactly-once effect under
/// retransmission and duplication (see [`crate::fabric`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceHeader {
    /// The per-user delivery lane (the raw user id).
    pub lane: u32,
    /// Zero-based position of this logical request in its lane.
    pub seq: u32,
}

/// Byte length of a sequenced-frame header: tag, lane, seq, checksum.
pub const SEQUENCED_HEADER_LEN: usize = 13;

/// FNV-1a (32-bit) over the header fields and the inner frame — the
/// transit checksum a sequenced frame carries so that *any* corruption,
/// including of the lane/seq fields themselves, is detected before the
/// dedup window is consulted. A corrupted header that aliased another
/// lane's sequence number would otherwise replay the wrong cached
/// response.
fn sequenced_checksum(lane: u32, seq: u32, inner: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut hash = OFFSET;
    for byte in lane
        .to_be_bytes()
        .iter()
        .chain(seq.to_be_bytes().iter())
        .chain(inner.iter())
    {
        hash ^= u32::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Wraps an encoded request frame in a sequenced delivery envelope:
/// tag, big-endian lane and sequence number, an FNV-1a checksum over
/// lane/seq/body, then the inner frame bytes.
///
/// # Panics
///
/// Panics if the wrapped frame would exceed [`MAX_FRAME_LEN`] — inner
/// frames produced by [`ClientRequest::encode`] never do.
pub fn encode_sequenced(lane: u32, seq: u32, request: &ClientRequest) -> Vec<u8> {
    let inner = request.encode();
    assert!(
        SEQUENCED_HEADER_LEN + inner.len() <= MAX_FRAME_LEN,
        "sequenced frame exceeds MAX_FRAME_LEN"
    );
    let mut buf = Vec::with_capacity(SEQUENCED_HEADER_LEN + inner.len());
    buf.push(TAG_SEQUENCED);
    buf.extend_from_slice(&lane.to_be_bytes());
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&sequenced_checksum(lane, seq, &inner).to_be_bytes());
    buf.extend_from_slice(&inner);
    buf
}

/// Splits a sequenced frame into its verified [`SequenceHeader`] and the
/// inner request frame. Returns `Ok(None)` for frames that are not
/// sequenced (no leading [`TAG_SEQUENCED`]), so plain unsequenced frames
/// keep working unchanged.
///
/// Total like every other decode path: truncated headers and checksum
/// mismatches are rejected with a [`FrameError`], never a panic — a
/// corrupted sequenced frame costs its sender a malformed-frame strike
/// exactly like any other corrupted frame. The inner frame still has to
/// pass its own strict [`ClientRequest::decode`].
///
/// # Errors
///
/// Returns [`FrameError::Truncated`] for a short header and
/// [`FrameError::ChecksumMismatch`] when the frame was damaged in
/// transit.
pub fn split_sequenced(buf: &[u8]) -> Result<Option<(SequenceHeader, &[u8])>, FrameError> {
    match buf.first() {
        Some(&TAG_SEQUENCED) => {}
        _ => return Ok(None),
    }
    need(buf, SEQUENCED_HEADER_LEN)?;
    let lane = u32::from_be_bytes([buf[1], buf[2], buf[3], buf[4]]);
    let seq = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]);
    let declared = u32::from_be_bytes([buf[9], buf[10], buf[11], buf[12]]);
    let inner = &buf[SEQUENCED_HEADER_LEN..];
    let computed = sequenced_checksum(lane, seq, inner);
    if computed != declared {
        return Err(FrameError::ChecksumMismatch { declared, computed });
    }
    Ok(Some((SequenceHeader { lane, seq }, inner)))
}

impl ClientRequest {
    /// The user this request operates on — `None` only for
    /// [`ClientRequest::Shutdown`]. The serving loop uses this to limit
    /// its per-batch checkpoint maintenance to the users a batch
    /// actually touched.
    pub fn user(&self) -> Option<UserId> {
        match *self {
            ClientRequest::CheckIn { user, .. }
            | ClientRequest::RequestLocation { user, .. }
            | ClientRequest::FinalizeWindow { user } => Some(user),
            ClientRequest::Shutdown => None,
        }
    }

    /// Encodes the request into its wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(29);
        match *self {
            ClientRequest::CheckIn { user, location, timestamp } => {
                buf.put_u8(TAG_CHECK_IN);
                buf.put_u32(user.raw());
                buf.put_f64(location.x);
                buf.put_f64(location.y);
                buf.put_i64(timestamp);
            }
            ClientRequest::RequestLocation { user, location } => {
                buf.put_u8(TAG_REQUEST_LOCATION);
                buf.put_u32(user.raw());
                buf.put_f64(location.x);
                buf.put_f64(location.y);
            }
            ClientRequest::FinalizeWindow { user } => {
                buf.put_u8(TAG_FINALIZE);
                buf.put_u32(user.raw());
            }
            ClientRequest::Shutdown => buf.put_u8(TAG_SHUTDOWN),
        }
        buf.freeze()
    }

    /// Decodes a request frame. Strict: the frame must be exactly its
    /// tag's fixed layout — truncated or trailing bytes are rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for empty, truncated, oversized, or
    /// unknown frames.
    pub fn decode(mut buf: &[u8]) -> Result<Self, FrameError> {
        if buf.is_empty() {
            return Err(FrameError::Empty);
        }
        let tag = buf.get_u8();
        let decoded = match tag {
            TAG_CHECK_IN => {
                need(buf, 28)?;
                ClientRequest::CheckIn {
                    user: UserId::new(buf.get_u32()),
                    location: Point::new(buf.get_f64(), buf.get_f64()),
                    timestamp: buf.get_i64(),
                }
            }
            TAG_REQUEST_LOCATION => {
                need(buf, 20)?;
                ClientRequest::RequestLocation {
                    user: UserId::new(buf.get_u32()),
                    location: Point::new(buf.get_f64(), buf.get_f64()),
                }
            }
            TAG_FINALIZE => {
                need(buf, 4)?;
                ClientRequest::FinalizeWindow { user: UserId::new(buf.get_u32()) }
            }
            TAG_SHUTDOWN => ClientRequest::Shutdown,
            other => return Err(FrameError::UnknownTag(other)),
        };
        finish(tag, buf)?;
        Ok(decoded)
    }

    /// Decodes one length-prefixed request off the front of a byte
    /// stream, returning the request and the unconsumed rest.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] from either the prefix ([`deframe`]) or
    /// the strict body decode.
    pub fn decode_framed(buf: &[u8]) -> Result<(Self, &[u8]), FrameError> {
        let (body, rest) = deframe(buf)?;
        Ok((ClientRequest::decode(body)?, rest))
    }
}

impl EdgeResponse {
    /// Encodes the response into its wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(17);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the wire frame to `buf` without allocating a fresh buffer —
    /// the batched serving loop encodes a whole wakeup's responses into one
    /// block and hands each client a [`Bytes::slice`] of it.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        // Each frame is assembled in a stack array and appended with one
        // `put_slice`: a single length check and copy per response, which
        // matters at batched-serving rates.
        match *self {
            EdgeResponse::ReportedLocation { location } => {
                let mut frame = [0u8; 17];
                frame[0] = TAG_REPORTED;
                frame[1..9].copy_from_slice(&location.x.to_bits().to_be_bytes());
                frame[9..17].copy_from_slice(&location.y.to_bits().to_be_bytes());
                buf.put_slice(&frame);
            }
            EdgeResponse::WindowClosed { fresh_obfuscations } => {
                let mut frame = [0u8; 5];
                frame[0] = TAG_WINDOW_CLOSED;
                frame[1..5].copy_from_slice(&fresh_obfuscations.to_be_bytes());
                buf.put_slice(&frame);
            }
            EdgeResponse::Ack => buf.put_u8(TAG_ACK),
            EdgeResponse::Error { code, detail } => {
                let mut frame = [0u8; 6];
                frame[0] = TAG_ERROR;
                frame[1] = code.to_wire();
                frame[2..6].copy_from_slice(&detail.to_be_bytes());
                buf.put_slice(&frame);
            }
        }
    }

    /// Decodes a response frame. Strict: the frame must be exactly its
    /// tag's fixed layout — truncated or trailing bytes are rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for empty, truncated, oversized, or
    /// unknown frames.
    pub fn decode(mut buf: &[u8]) -> Result<Self, FrameError> {
        if buf.is_empty() {
            return Err(FrameError::Empty);
        }
        let tag = buf.get_u8();
        let decoded = match tag {
            TAG_REPORTED => {
                need(buf, 16)?;
                EdgeResponse::ReportedLocation {
                    location: Point::new(buf.get_f64(), buf.get_f64()),
                }
            }
            TAG_WINDOW_CLOSED => {
                need(buf, 4)?;
                EdgeResponse::WindowClosed { fresh_obfuscations: buf.get_u32() }
            }
            TAG_ACK => EdgeResponse::Ack,
            TAG_ERROR => {
                need(buf, 5)?;
                EdgeResponse::Error {
                    code: ErrorCode::from_wire(buf.get_u8())?,
                    detail: buf.get_u32(),
                }
            }
            other => return Err(FrameError::UnknownTag(other)),
        };
        finish(tag, buf)?;
        Ok(decoded)
    }

    /// Decodes one length-prefixed response off the front of a byte
    /// stream, returning the response and the unconsumed rest.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] from either the prefix ([`deframe`]) or
    /// the strict body decode.
    pub fn decode_framed(buf: &[u8]) -> Result<(Self, &[u8]), FrameError> {
        let (body, rest) = deframe(buf)?;
        Ok((EdgeResponse::decode(body)?, rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<ClientRequest> {
        vec![
            ClientRequest::CheckIn {
                user: UserId::new(9),
                location: Point::new(-12.5, 98_000.25),
                timestamp: 86_400 * 500 + 3,
            },
            ClientRequest::RequestLocation {
                user: UserId::new(u32::MAX),
                location: Point::new(0.0, -0.0),
            },
            ClientRequest::FinalizeWindow { user: UserId::new(0) },
            ClientRequest::Shutdown,
        ]
    }

    fn responses() -> Vec<EdgeResponse> {
        vec![
            EdgeResponse::ReportedLocation { location: Point::new(1.25, -7.5) },
            EdgeResponse::WindowClosed { fresh_obfuscations: 3 },
            EdgeResponse::Ack,
            EdgeResponse::Error { code: ErrorCode::Malformed, detail: 2 },
            EdgeResponse::Error { code: ErrorCode::WorkerFailed, detail: 9 },
            EdgeResponse::Error { code: ErrorCode::StaleSequence, detail: 41 },
        ]
    }

    #[test]
    fn request_round_trips() {
        for r in requests() {
            assert_eq!(ClientRequest::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        for r in responses() {
            assert_eq!(EdgeResponse::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn truncation_detected() {
        for r in requests() {
            let bytes = r.encode();
            if bytes.len() > 1 {
                let err = ClientRequest::decode(&bytes[..bytes.len() - 1]).unwrap_err();
                assert!(matches!(err, FrameError::Truncated { .. }), "{r:?}: {err}");
            }
        }
        for r in responses() {
            let bytes = r.encode();
            if bytes.len() > 1 {
                let err = EdgeResponse::decode(&bytes[..bytes.len() - 1]).unwrap_err();
                assert!(matches!(err, FrameError::Truncated { .. }));
            }
        }
    }

    #[test]
    fn empty_and_unknown_frames() {
        assert_eq!(ClientRequest::decode(&[]), Err(FrameError::Empty));
        assert_eq!(EdgeResponse::decode(&[]), Err(FrameError::Empty));
        assert_eq!(ClientRequest::decode(&[0xFF]), Err(FrameError::UnknownTag(0xFF)));
        assert_eq!(EdgeResponse::decode(&[0x00]), Err(FrameError::UnknownTag(0x00)));
    }

    #[test]
    fn request_and_response_tags_do_not_overlap() {
        // Client tags < 0x80, edge tags ≥ 0x80: decoding a frame with the
        // wrong decoder fails rather than aliasing.
        for r in requests() {
            assert!(EdgeResponse::decode(&r.encode()).is_err());
        }
        for r in responses() {
            assert!(ClientRequest::decode(&r.encode()).is_err());
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(FrameError::Empty.to_string(), "empty frame");
        assert!(FrameError::UnknownTag(0xAB).to_string().contains("0xab"));
        assert!(FrameError::Truncated { needed: 20, got: 3 }
            .to_string()
            .contains("need 20"));
        assert!(FrameError::TrailingBytes { tag: 0x01, extra: 4 }
            .to_string()
            .contains("4 trailing"));
        assert!(FrameError::Oversized { declared: 900, max: MAX_FRAME_LEN }
            .to_string()
            .contains("900"));
        assert!(FrameError::UnknownErrorCode(0x7F).to_string().contains("0x7f"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        for r in requests() {
            let mut bytes = r.encode().to_vec();
            bytes.push(0x00);
            let err = ClientRequest::decode(&bytes).unwrap_err();
            assert!(matches!(err, FrameError::TrailingBytes { .. }), "{r:?}: {err}");
        }
        for r in responses() {
            let mut bytes = r.encode().to_vec();
            bytes.push(0xFF);
            let err = EdgeResponse::decode(&bytes).unwrap_err();
            assert!(matches!(err, FrameError::TrailingBytes { .. }), "{r:?}: {err}");
        }
    }

    #[test]
    fn unknown_error_code_rejected() {
        let mut bytes =
            EdgeResponse::Error { code: ErrorCode::Malformed, detail: 0 }.encode().to_vec();
        bytes[1] = 0x7F;
        assert_eq!(EdgeResponse::decode(&bytes), Err(FrameError::UnknownErrorCode(0x7F)));
    }

    #[test]
    fn framed_round_trips_and_splits_streams() {
        // Several frames back to back in one byte stream.
        let reqs = requests();
        let mut stream = Vec::new();
        for r in &reqs {
            stream.extend_from_slice(&frame(&r.encode()));
        }
        let mut rest: &[u8] = &stream;
        let mut decoded = Vec::new();
        while !rest.is_empty() {
            let (req, r) = ClientRequest::decode_framed(rest).unwrap();
            decoded.push(req);
            rest = r;
        }
        assert_eq!(decoded, reqs);

        let resp = EdgeResponse::WindowClosed { fresh_obfuscations: 7 };
        let framed = frame(&resp.encode());
        let (back, rest) = EdgeResponse::decode_framed(&framed).unwrap();
        assert_eq!(back, resp);
        assert!(rest.is_empty());
    }

    #[test]
    fn deframe_rejects_lying_length_prefixes() {
        assert_eq!(deframe(&[]), Err(FrameError::Empty));
        assert!(matches!(deframe(&[0x00]), Err(FrameError::Truncated { .. })));
        // Declared body longer than the bytes present.
        assert!(matches!(deframe(&[0x00, 0x10, 0x04]), Err(FrameError::Truncated { .. })));
        // Declared body longer than any legal frame.
        let huge = [0xFF, 0xFF, 0x00, 0x00];
        assert_eq!(
            deframe(&huge),
            Err(FrameError::Oversized { declared: 0xFFFF, max: MAX_FRAME_LEN })
        );
        // A prefix that lies *short* leaves trailing garbage in the body.
        let body = ClientRequest::Shutdown.encode();
        let mut framed = frame(&body).to_vec();
        framed.extend_from_slice(&ClientRequest::Shutdown.encode());
        let (req, rest) = ClientRequest::decode_framed(&framed).unwrap();
        assert_eq!(req, ClientRequest::Shutdown);
        assert_eq!(rest.len(), 1); // the second, unframed frame is left over
    }

    #[test]
    #[should_panic(expected = "frame body exceeds MAX_FRAME_LEN")]
    fn frame_rejects_oversized_bodies() {
        let _ = frame(&[0u8; MAX_FRAME_LEN + 1]);
    }

    #[test]
    fn sequenced_frames_round_trip() {
        for (seq, request) in requests().into_iter().enumerate() {
            let wire = encode_sequenced(7, seq as u32, &request);
            assert!(wire.len() <= MAX_FRAME_LEN);
            let (header, inner) = split_sequenced(&wire).unwrap().unwrap();
            assert_eq!(header, SequenceHeader { lane: 7, seq: seq as u32 });
            assert_eq!(ClientRequest::decode(inner).unwrap(), request);
        }
    }

    #[test]
    fn plain_frames_are_not_sequenced() {
        for request in requests() {
            assert_eq!(split_sequenced(&request.encode()), Ok(None));
        }
        assert_eq!(split_sequenced(&[]), Ok(None));
        // A sequenced frame is not decodable as a plain request: the
        // envelope tag is rejected, never aliased.
        let wire = encode_sequenced(1, 0, &ClientRequest::Shutdown);
        assert_eq!(ClientRequest::decode(&wire), Err(FrameError::UnknownTag(TAG_SEQUENCED)));
    }

    #[test]
    fn sequenced_corruption_is_detected_everywhere() {
        let wire = encode_sequenced(
            3,
            12,
            &ClientRequest::CheckIn {
                user: UserId::new(3),
                location: Point::new(5.0, -5.0),
                timestamp: 17,
            },
        );
        // Truncated header.
        assert!(matches!(
            split_sequenced(&wire[..SEQUENCED_HEADER_LEN - 1]),
            Err(FrameError::Truncated { .. })
        ));
        // A single flipped bit anywhere past the tag — lane, seq,
        // checksum, or body — fails the checksum: corruption can never
        // alias another lane's cached response.
        for byte in 1..wire.len() {
            let mut bad = wire.clone();
            bad[byte] ^= 0x40;
            assert!(
                matches!(split_sequenced(&bad), Err(FrameError::ChecksumMismatch { .. })),
                "flip at byte {byte} went undetected"
            );
        }
        // Truncated body fails the checksum too (it covers the length).
        assert!(matches!(
            split_sequenced(&wire[..wire.len() - 3]),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn checksum_mismatch_display() {
        let e = FrameError::ChecksumMismatch { declared: 1, computed: 2 };
        assert!(e.to_string().contains("checksum mismatch"));
    }
}
