//! The client ↔ edge wire protocol.
//!
//! Edge-PrivLocAd's deployment separates the mobile client from the edge
//! device; this module defines the message set exchanged between them and
//! a compact binary framing so the pair can run over any byte transport.
//! [`EdgeHandle`](crate::EdgeHandle) (the client side) and
//! [`EdgeServer`](crate::EdgeServer) implement the two endpoints over an
//! in-process channel; a production deployment would move the same frames
//! over the radio link.
//!
//! Frames are length-free (fixed layout per message type) with a one-byte
//! tag, all integers big-endian.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use serde::{Deserialize, Serialize};

/// A client → edge request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClientRequest {
    /// Passively report a true-location check-in (no response expected).
    CheckIn {
        /// The reporting user.
        user: UserId,
        /// True location in study-plane meters.
        location: Point,
        /// Seconds since the study epoch.
        timestamp: i64,
    },
    /// Ask the edge which location to report for an LBA request.
    RequestLocation {
        /// The requesting user.
        user: UserId,
        /// Current true location.
        location: Point,
    },
    /// Ask the edge to close the user's profile window now.
    FinalizeWindow {
        /// The user whose window closes.
        user: UserId,
    },
    /// Orderly shutdown of the serving loop.
    Shutdown,
}

/// An edge → client response.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EdgeResponse {
    /// The obfuscated location to use for the LBA request.
    ReportedLocation {
        /// The location to send to the ad network.
        location: Point,
    },
    /// Window closed; how many top locations were freshly obfuscated.
    WindowClosed {
        /// Newly protected top locations.
        fresh_obfuscations: u32,
    },
    /// Acknowledgement without payload (check-ins, shutdown).
    Ack,
}

/// Error decoding a protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer is shorter than the frame layout requires.
    Truncated {
        /// Bytes required by the tag's layout.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The leading tag byte is not a known message type.
    UnknownTag(u8),
    /// The buffer is empty.
    Empty,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            FrameError::UnknownTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::Empty => write!(f, "empty frame"),
        }
    }
}

impl std::error::Error for FrameError {}

const TAG_CHECK_IN: u8 = 0x01;
const TAG_REQUEST_LOCATION: u8 = 0x02;
const TAG_FINALIZE: u8 = 0x03;
const TAG_SHUTDOWN: u8 = 0x04;
const TAG_REPORTED: u8 = 0x81;
const TAG_WINDOW_CLOSED: u8 = 0x82;
const TAG_ACK: u8 = 0x83;

fn need(buf: &[u8], needed: usize) -> Result<(), FrameError> {
    if buf.len() < needed {
        Err(FrameError::Truncated { needed, got: buf.len() })
    } else {
        Ok(())
    }
}

impl ClientRequest {
    /// Encodes the request into its wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(29);
        match *self {
            ClientRequest::CheckIn { user, location, timestamp } => {
                buf.put_u8(TAG_CHECK_IN);
                buf.put_u32(user.raw());
                buf.put_f64(location.x);
                buf.put_f64(location.y);
                buf.put_i64(timestamp);
            }
            ClientRequest::RequestLocation { user, location } => {
                buf.put_u8(TAG_REQUEST_LOCATION);
                buf.put_u32(user.raw());
                buf.put_f64(location.x);
                buf.put_f64(location.y);
            }
            ClientRequest::FinalizeWindow { user } => {
                buf.put_u8(TAG_FINALIZE);
                buf.put_u32(user.raw());
            }
            ClientRequest::Shutdown => buf.put_u8(TAG_SHUTDOWN),
        }
        buf.freeze()
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for empty, truncated, or unknown frames.
    pub fn decode(mut buf: &[u8]) -> Result<Self, FrameError> {
        if buf.is_empty() {
            return Err(FrameError::Empty);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_CHECK_IN => {
                need(buf, 28)?;
                Ok(ClientRequest::CheckIn {
                    user: UserId::new(buf.get_u32()),
                    location: Point::new(buf.get_f64(), buf.get_f64()),
                    timestamp: buf.get_i64(),
                })
            }
            TAG_REQUEST_LOCATION => {
                need(buf, 20)?;
                Ok(ClientRequest::RequestLocation {
                    user: UserId::new(buf.get_u32()),
                    location: Point::new(buf.get_f64(), buf.get_f64()),
                })
            }
            TAG_FINALIZE => {
                need(buf, 4)?;
                Ok(ClientRequest::FinalizeWindow { user: UserId::new(buf.get_u32()) })
            }
            TAG_SHUTDOWN => Ok(ClientRequest::Shutdown),
            other => Err(FrameError::UnknownTag(other)),
        }
    }
}

impl EdgeResponse {
    /// Encodes the response into its wire frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(17);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the wire frame to `buf` without allocating a fresh buffer —
    /// the batched serving loop encodes a whole wakeup's responses into one
    /// block and hands each client a [`Bytes::slice`] of it.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        // Each frame is assembled in a stack array and appended with one
        // `put_slice`: a single length check and copy per response, which
        // matters at batched-serving rates.
        match *self {
            EdgeResponse::ReportedLocation { location } => {
                let mut frame = [0u8; 17];
                frame[0] = TAG_REPORTED;
                frame[1..9].copy_from_slice(&location.x.to_bits().to_be_bytes());
                frame[9..17].copy_from_slice(&location.y.to_bits().to_be_bytes());
                buf.put_slice(&frame);
            }
            EdgeResponse::WindowClosed { fresh_obfuscations } => {
                let mut frame = [0u8; 5];
                frame[0] = TAG_WINDOW_CLOSED;
                frame[1..5].copy_from_slice(&fresh_obfuscations.to_be_bytes());
                buf.put_slice(&frame);
            }
            EdgeResponse::Ack => buf.put_u8(TAG_ACK),
        }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] for empty, truncated, or unknown frames.
    pub fn decode(mut buf: &[u8]) -> Result<Self, FrameError> {
        if buf.is_empty() {
            return Err(FrameError::Empty);
        }
        let tag = buf.get_u8();
        match tag {
            TAG_REPORTED => {
                need(buf, 16)?;
                Ok(EdgeResponse::ReportedLocation {
                    location: Point::new(buf.get_f64(), buf.get_f64()),
                })
            }
            TAG_WINDOW_CLOSED => {
                need(buf, 4)?;
                Ok(EdgeResponse::WindowClosed { fresh_obfuscations: buf.get_u32() })
            }
            TAG_ACK => Ok(EdgeResponse::Ack),
            other => Err(FrameError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<ClientRequest> {
        vec![
            ClientRequest::CheckIn {
                user: UserId::new(9),
                location: Point::new(-12.5, 98_000.25),
                timestamp: 86_400 * 500 + 3,
            },
            ClientRequest::RequestLocation {
                user: UserId::new(u32::MAX),
                location: Point::new(0.0, -0.0),
            },
            ClientRequest::FinalizeWindow { user: UserId::new(0) },
            ClientRequest::Shutdown,
        ]
    }

    fn responses() -> Vec<EdgeResponse> {
        vec![
            EdgeResponse::ReportedLocation { location: Point::new(1.25, -7.5) },
            EdgeResponse::WindowClosed { fresh_obfuscations: 3 },
            EdgeResponse::Ack,
        ]
    }

    #[test]
    fn request_round_trips() {
        for r in requests() {
            assert_eq!(ClientRequest::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        for r in responses() {
            assert_eq!(EdgeResponse::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn truncation_detected() {
        for r in requests() {
            let bytes = r.encode();
            if bytes.len() > 1 {
                let err = ClientRequest::decode(&bytes[..bytes.len() - 1]).unwrap_err();
                assert!(matches!(err, FrameError::Truncated { .. }), "{r:?}: {err}");
            }
        }
        for r in responses() {
            let bytes = r.encode();
            if bytes.len() > 1 {
                let err = EdgeResponse::decode(&bytes[..bytes.len() - 1]).unwrap_err();
                assert!(matches!(err, FrameError::Truncated { .. }));
            }
        }
    }

    #[test]
    fn empty_and_unknown_frames() {
        assert_eq!(ClientRequest::decode(&[]), Err(FrameError::Empty));
        assert_eq!(EdgeResponse::decode(&[]), Err(FrameError::Empty));
        assert_eq!(ClientRequest::decode(&[0xFF]), Err(FrameError::UnknownTag(0xFF)));
        assert_eq!(EdgeResponse::decode(&[0x00]), Err(FrameError::UnknownTag(0x00)));
    }

    #[test]
    fn request_and_response_tags_do_not_overlap() {
        // Client tags < 0x80, edge tags ≥ 0x80: decoding a frame with the
        // wrong decoder fails rather than aliasing.
        for r in requests() {
            assert!(EdgeResponse::decode(&r.encode()).is_err());
        }
        for r in responses() {
            assert!(ClientRequest::decode(&r.encode()).is_err());
        }
    }

    #[test]
    fn error_display() {
        assert_eq!(FrameError::Empty.to_string(), "empty frame");
        assert!(FrameError::UnknownTag(0xAB).to_string().contains("0xab"));
        assert!(FrameError::Truncated { needed: 20, got: 3 }
            .to_string()
            .contains("need 20"));
    }
}
