use std::collections::BTreeMap;

use privlocad_attack::LocationProfile;
use privlocad_geo::rng::derive_seed;
use privlocad_geo::Point;
use privlocad_mobility::UserId;

use crate::{frequent_location_set, CandidateArena, EdgeDevice, ObfuscationModule, SystemConfig};

/// A fleet of edge devices covering different parts of the city
/// (Section V-B's multi-edge scenario).
///
/// A commuter's check-ins land on whichever edge is nearest, so "the edge
/// devices can only record a local part of the whole location profile".
/// At window end the fleet merges the partial profiles, computes the
/// η-frequent location set over the *merged* profile, generates each new
/// top location's permanent candidates exactly once, and installs the
/// result on every edge serving the user — so any edge answers ad requests
/// consistently and no location's budget is ever spent twice.
///
/// (The paper notes the merge could run under MPC for confidentiality
/// between edges; that protocol is explicitly out of its scope and ours —
/// we merge in the clear.)
///
/// # Examples
///
/// ```
/// use privlocad::{EdgeFleet, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let sites = vec![Point::ORIGIN, Point::new(12_000.0, 0.0)];
/// let mut fleet = EdgeFleet::new(SystemConfig::builder().build()?, sites, 5);
/// let user = UserId::new(1);
/// // Home near site 0, office near site 1 — each edge sees half the story.
/// for _ in 0..40 {
///     fleet.report_checkin(user, Point::new(100.0, 0.0));
///     fleet.report_checkin(user, Point::new(11_900.0, 0.0));
/// }
/// let fresh = fleet.finalize_user_window(user);
/// assert_eq!(fresh, 2); // both tops protected from the merged profile
/// # Ok::<(), privlocad::SystemError>(())
/// ```
#[derive(Debug)]
pub struct EdgeFleet {
    config: SystemConfig,
    sites: Vec<Point>,
    edges: Vec<EdgeDevice>,
    authorities: BTreeMap<UserId, ObfuscationModule>,
    /// Batched-generation buffers plus the staged shared sets of the
    /// current install, reused across every window close.
    arena: CandidateArena,
    /// Master seed of the fleet's derived candidate streams.
    master: u64,
    /// Monotone `(window, top)` pair counter: each fresh candidate set
    /// draws from stream `derive_seed(master, counter++)`, so streams
    /// never overlap regardless of batch boundaries.
    pair_counter: u64,
}

impl EdgeFleet {
    /// Creates a fleet with one edge device per coverage site.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty or contains a non-finite point.
    pub fn new(config: SystemConfig, sites: Vec<Point>, seed: u64) -> Self {
        assert!(!sites.is_empty(), "a fleet needs at least one edge site");
        assert!(sites.iter().all(|s| s.is_finite()), "sites must be finite");
        let edges = (0..sites.len())
            .map(|i| EdgeDevice::new(config, derive_seed(seed, i as u64)))
            .collect();
        EdgeFleet {
            config,
            sites,
            edges,
            authorities: BTreeMap::new(),
            arena: CandidateArena::new(),
            master: seed,
            pair_counter: 0,
        }
    }

    /// Number of edge devices.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` for a fleet without edges (never constructible).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The index of the edge covering `location` (nearest site).
    pub fn route(&self, location: Point) -> usize {
        self.sites
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.distance(location).total_cmp(&b.1.distance(location)))
            .map(|(i, _)| i)
            // lint:allow(panic-hygiene): provably infallible — the constructor asserts sites is non-empty
            .expect("fleet has at least one site")
    }

    /// Immutable access to one edge (e.g. for assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn edge(&self, index: usize) -> &EdgeDevice {
        &self.edges[index]
    }

    /// Records a check-in on the nearest edge.
    pub fn report_checkin(&mut self, user: UserId, true_location: Point) {
        let idx = self.route(true_location);
        self.edges[idx].report_checkin(user, true_location);
    }

    /// Closes the user's window fleet-wide: merges the partial profiles,
    /// recomputes the η-frequent set, generates candidates for *new* top
    /// locations once, and installs the merged protection on every edge.
    /// Returns the number of freshly obfuscated top locations.
    pub fn finalize_user_window(&mut self, user: UserId) -> usize {
        // 1. Collect and merge partial profiles.
        let mut merged: Option<LocationProfile> = None;
        for edge in &mut self.edges {
            if let Some(profile) = edge.close_window_profile(user) {
                merged = Some(match merged {
                    Some(m) => m.merge(&profile, self.config.profile_theta_m()),
                    None => profile,
                });
            }
        }
        let Some(merged) = merged else { return 0 };

        // 2. The merged η-frequent set.
        let tops = frequent_location_set(&merged, self.config.eta());

        // 3. One fleet-level obfuscation authority per user: candidates
        //    are drawn once, permanently, regardless of which edge asked.
        //    The arena batch-generates every fresh set through the lane
        //    kernel and stages shared `(candidates, posterior table)`
        //    handles for all queried tops.
        let authority = self.authorities.entry(user).or_insert_with(|| {
            ObfuscationModule::new(self.config.geo_ind(), self.config.top_match_radius_m())
        });
        let top_points: Vec<Point> = tops.iter().map(|e| e.location).collect();
        let fresh =
            self.arena.prepare(authority, &top_points, self.master, &mut self.pair_counter);

        // 4. Install the merged protection on every edge: per edge this is
        //    an `Arc` bump per set, not a candidate-vector clone plus a
        //    posterior-table rebuild.
        for edge in &mut self.edges {
            edge.install_protection(user, tops.clone(), self.arena.sets());
        }
        fresh
    }

    /// Produces the reported location for an ad request at `current_true`,
    /// answered by the nearest edge.
    pub fn reported_location(&mut self, user: UserId, current_true: Point) -> Point {
        let idx = self.route(current_true);
        self.edges[idx].reported_location(user, current_true)
    }

    /// Measures the fleet's resident state ([`crate::StateFootprint`]).
    ///
    /// Shared pools dedup *across* edges: a candidate set or posterior
    /// table installed on every edge by [`EdgeFleet::finalize_user_window`]
    /// is one `Arc` fleet-wide and is counted once, while `users` and
    /// `candidate_set_refs` count per-edge residency (a commuter served by
    /// two edges contributes two resident user states). The staging
    /// arena's live handles are included under the same dedup.
    pub fn footprint(&self) -> crate::StateFootprint {
        let mut fp = crate::StateFootprint::default();
        let mut seen_sets = std::collections::BTreeSet::new();
        let mut seen_tables = std::collections::BTreeSet::new();
        for edge in &self.edges {
            edge.accumulate_footprint(&mut fp, &mut seen_sets, &mut seen_tables);
        }
        self.arena.accumulate_footprint(&mut fp, &mut seen_sets, &mut seen_tables);
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> EdgeFleet {
        EdgeFleet::new(
            SystemConfig::builder().build().unwrap(),
            vec![Point::ORIGIN, Point::new(12_000.0, 0.0)],
            9,
        )
    }

    #[test]
    fn routing_picks_the_nearest_site() {
        let f = fleet();
        assert_eq!(f.route(Point::new(100.0, 0.0)), 0);
        assert_eq!(f.route(Point::new(11_000.0, 0.0)), 1);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn partial_profiles_merge_into_full_top_set() {
        let mut f = fleet();
        let user = UserId::new(1);
        let home = Point::new(50.0, 0.0);
        let office = Point::new(11_950.0, 0.0);
        for _ in 0..60 {
            f.report_checkin(user, home);
        }
        for _ in 0..40 {
            f.report_checkin(user, office);
        }
        // Each edge alone saw a single location…
        assert_eq!(f.finalize_user_window(user), 2);
        // …but after the merge both edges protect both places.
        for idx in 0..2 {
            assert!(f.edge(idx).candidates(user, home).is_some(), "edge {idx} home");
            assert!(f.edge(idx).candidates(user, office).is_some(), "edge {idx} office");
        }
    }

    #[test]
    fn all_edges_answer_with_the_same_candidates() {
        let mut f = fleet();
        let user = UserId::new(2);
        let home = Point::new(10.0, 10.0);
        for _ in 0..50 {
            f.report_checkin(user, home);
        }
        f.finalize_user_window(user);
        let from_a = f.edge(0).candidates(user, home).unwrap().to_vec();
        let from_b = f.edge(1).candidates(user, home).unwrap();
        assert_eq!(from_a, from_b, "fleet-wide consistency");
        // Requests through the fleet use exactly those candidates.
        for _ in 0..20 {
            let reported = f.reported_location(user, home);
            assert!(from_a.contains(&reported));
        }
    }

    #[test]
    fn candidates_are_permanent_across_windows_and_edges() {
        let mut f = fleet();
        let user = UserId::new(3);
        let home = Point::new(0.0, 40.0);
        for _ in 0..30 {
            f.report_checkin(user, home);
        }
        f.finalize_user_window(user);
        let before = f.edge(0).candidates(user, home).unwrap().to_vec();
        // A later window with the same home (centroid drifts slightly).
        for _ in 0..30 {
            f.report_checkin(user, home + Point::new(5.0, -3.0));
        }
        let fresh = f.finalize_user_window(user);
        assert_eq!(fresh, 0, "no re-release for a known top location");
        assert_eq!(f.edge(1).candidates(user, home).unwrap(), before);
    }

    #[test]
    fn batched_install_keeps_edge_telemetry_and_ledger_unchanged() {
        use privlocad_telemetry::{top_key, Telemetry};

        let mut f = fleet();
        let user = UserId::new(4);
        let home = Point::new(80.0, 0.0);
        let office = Point::new(11_920.0, 0.0);
        for _ in 0..60 {
            f.report_checkin(user, home);
        }
        for _ in 0..40 {
            f.report_checkin(user, office);
        }
        assert_eq!(f.finalize_user_window(user), 2);

        // Each edge ledgers the install of both merged sets exactly once —
        // the Arc-shared install path must be indistinguishable from the
        // old per-edge clone in every counter and spend event. (One hub
        // per edge: both edges legitimately hold the same released sets,
        // which a shared ledger would misread as a double spend.)
        for edge in &mut f.edges {
            let telemetry = Telemetry::new();
            edge.drain_telemetry(&telemetry);
            let metrics = telemetry.registry().snapshot();
            assert_eq!(metrics.counter("edge.fresh_candidate_sets"), Some(2));
            assert_eq!(metrics.counter("edge.windows_closed"), Some(1));
            let live: Vec<(u64, _)> = edge
                .snapshot()
                .released_sets()
                .unwrap()
                .into_iter()
                .map(|(u, p)| (u64::from(u.raw()), top_key(p.x, p.y)))
                .collect();
            assert_eq!(live.len(), 2);
            telemetry.ledger().assert_no_double_spend(live).unwrap();
            assert_eq!(telemetry.ledger().totals().candidate_sets, 2);
        }

        // A later window over known tops re-installs the same shared sets:
        // nothing fresh, and not a single new candidate-set spend.
        for _ in 0..30 {
            f.report_checkin(user, home);
        }
        assert_eq!(f.finalize_user_window(user), 0);
        for edge in &mut f.edges {
            let telemetry = Telemetry::new();
            edge.drain_telemetry(&telemetry);
            let metrics = telemetry.registry().snapshot();
            assert_eq!(metrics.counter("edge.fresh_candidate_sets"), Some(0));
            assert_eq!(telemetry.ledger().totals().candidate_sets, 0);
        }
    }

    #[test]
    fn footprint_counts_cross_edge_shared_sets_once() {
        let mut f = fleet();
        let user = UserId::new(5);
        let home = Point::new(60.0, 0.0);
        let office = Point::new(11_940.0, 0.0);
        for _ in 0..60 {
            f.report_checkin(user, home);
        }
        for _ in 0..40 {
            f.report_checkin(user, office);
        }
        assert_eq!(f.finalize_user_window(user), 2);

        let fp = f.footprint();
        // One user resident on both edges, each edge citing both sets…
        assert_eq!(fp.users, 2);
        assert_eq!(fp.candidate_set_refs, 4);
        // …but the Arc-shared install stores each set (and its warmed
        // posterior table) exactly once fleet-wide.
        assert_eq!(fp.distinct_candidate_sets, 2);
        assert_eq!(fp.distinct_posterior_tables, 2);
        assert!(fp.shared_bytes > 0);
        assert_eq!(fp.total_bytes(), fp.user_bytes + fp.shared_bytes);
        // Sanity: summing per-edge footprints double counts the pools.
        let naive: u64 = (0..f.len()).map(|i| f.edge(i).footprint().shared_bytes).sum();
        assert_eq!(naive, 2 * fp.shared_bytes);
    }

    #[test]
    fn unknown_user_finalize_is_a_no_op() {
        let mut f = fleet();
        assert_eq!(f.finalize_user_window(UserId::new(99)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one edge site")]
    fn rejects_empty_fleet() {
        let _ = EdgeFleet::new(SystemConfig::builder().build().unwrap(), vec![], 0);
    }
}
