use privlocad_adnet::{AdNetwork, BidLog, Campaign, DeviceId};
use privlocad_mobility::{UserTrace, SECONDS_PER_DAY};
use serde::{Deserialize, Serialize};

use crate::{EdgeDevice, SystemConfig};

/// Per-user outcome of an end-to-end simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Raw user id.
    pub user: u32,
    /// Ad requests served (one per check-in).
    pub requests: usize,
    /// Requests whose auction produced a winner.
    pub auctions_won: usize,
    /// Total ads delivered after AOI filtering.
    pub ads_delivered: usize,
    /// Number of distinct locations this user exposed to the ad network —
    /// under Edge-PrivLocAd this stays near `n × |top set|` plus nomadic
    /// one-offs, instead of growing with every request.
    pub distinct_reported: usize,
}

/// An end-to-end LBA deployment: synthetic users drive an [`EdgeDevice`]
/// which fronts an [`AdNetwork`]; the network's bid log is what a
/// longitudinal attacker observes.
///
/// Replays each user's 2-year trace in time order. Every check-in both
/// feeds the location-management module and triggers an ad request; the
/// profile window closes every [`SystemConfig::window_days`] days, after
/// which top-location requests switch from the one-time nomadic fallback
/// to permanent candidates.
///
/// # Examples
///
/// ```
/// use privlocad::{LbaSimulation, SystemConfig};
/// use privlocad_mobility::PopulationConfig;
///
/// let population = PopulationConfig::builder().num_users(2).seed(3).build();
/// let mut sim = LbaSimulation::new(SystemConfig::builder().build()?, Vec::new(), 9);
/// let report = sim.run_user(&population.generate_user(0));
/// assert!(report.requests >= 20);
/// assert!(!sim.bid_log().is_empty());
/// # Ok::<(), privlocad::SystemError>(())
/// ```
#[derive(Debug)]
pub struct LbaSimulation {
    edge: EdgeDevice,
    network: AdNetwork,
    window_days: u32,
}

impl LbaSimulation {
    /// Creates a simulation over a campaign inventory.
    pub fn new(config: SystemConfig, campaigns: Vec<Campaign>, seed: u64) -> Self {
        LbaSimulation {
            window_days: config.window_days(),
            edge: EdgeDevice::new(config, seed),
            network: AdNetwork::new(campaigns),
        }
    }

    /// The edge device under simulation.
    pub fn edge(&self) -> &EdgeDevice {
        &self.edge
    }

    /// Mutable access to the edge device (e.g. to pre-train profiles).
    pub fn edge_mut(&mut self) -> &mut EdgeDevice {
        &mut self.edge
    }

    /// The ad network's accumulated bid log — the longitudinal attacker's
    /// observation.
    pub fn bid_log(&self) -> &BidLog {
        self.network.log()
    }

    /// Replays one user's trace end-to-end and reports the outcome.
    pub fn run_user(&mut self, trace: &UserTrace) -> SimulationReport {
        let mut window_end = self.window_days as i64 * SECONDS_PER_DAY;
        let mut report = SimulationReport {
            user: trace.user.raw(),
            requests: 0,
            auctions_won: 0,
            ads_delivered: 0,
            distinct_reported: 0,
        };
        for checkin in &trace.checkins {
            while checkin.time.seconds() >= window_end {
                self.edge.finalize_window(trace.user);
                window_end += self.window_days as i64 * SECONDS_PER_DAY;
            }
            self.edge.report_checkin(trace.user, checkin.location);
            let delivery = self.edge.request_ads(
                trace.user,
                checkin.location,
                checkin.time.seconds(),
                &mut self.network,
            );
            report.requests += 1;
            report.auctions_won += usize::from(delivery.auction.is_some());
            report.ads_delivered += delivery.delivered.len();
        }
        // Count the distinct locations the network saw for this user.
        let mut reported = self
            .network
            .log()
            .locations_of(DeviceId::new(trace.user.raw() as u64));
        reported.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        reported.dedup();
        report.distinct_reported = reported.len();
        report
    }

    /// The reported-location sequence of one user — exactly what
    /// Algorithm 1 consumes.
    pub fn observed_locations(&self, user: u32) -> Vec<privlocad_geo::Point> {
        self.network.log().locations_of(DeviceId::new(user as u64))
    }

    /// Replays every user of a materialized population and returns the
    /// per-user reports.
    pub fn run_population<'a, I>(&mut self, users: I) -> Vec<SimulationReport>
    where
        I: IntoIterator<Item = &'a UserTrace>,
    {
        users.into_iter().map(|u| self.run_user(u)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_attack::DeobfuscationAttack;
    use privlocad_mechanisms::NFoldGaussian;
    use privlocad_mobility::PopulationConfig;

    fn population(n: usize) -> PopulationConfig {
        PopulationConfig::builder()
            .num_users(n)
            .seed(5)
            .checkin_log_normal(5.5, 0.4)
            .build()
    }

    #[test]
    fn every_checkin_becomes_a_logged_request() {
        let mut sim =
            LbaSimulation::new(SystemConfig::builder().build().unwrap(), Vec::new(), 1);
        let user = population(1).generate_user(0);
        let report = sim.run_user(&user);
        assert_eq!(report.requests, user.checkins.len());
        assert_eq!(sim.bid_log().len(), user.checkins.len());
        assert_eq!(sim.observed_locations(0).len(), user.checkins.len());
    }

    #[test]
    fn distinct_reports_collapse_after_first_window() {
        let mut sim =
            LbaSimulation::new(SystemConfig::builder().build().unwrap(), Vec::new(), 2);
        // User 10 is a *routine* user (~89 % of check-ins at 2 top
        // locations) — the population the collapse property speaks about.
        // Diverse users (couriers etc., ~12 % of the population) spend a
        // third of their requests at nomadic one-offs, each of which is
        // legitimately a unique report.
        let user = population(11).generate_user(10);
        let report = sim.run_user(&user);
        // Nomadic requests and the cold-start first window produce unique
        // points, but the bulk of requests reuse ≤ n×|tops| candidates:
        // far fewer distinct points than requests.
        assert!(
            report.distinct_reported < report.requests / 2,
            "distinct {} of {} requests",
            report.distinct_reported,
            report.requests
        );
    }

    #[test]
    fn true_locations_never_reach_the_network() {
        let mut sim =
            LbaSimulation::new(SystemConfig::builder().build().unwrap(), Vec::new(), 3);
        let user = population(1).generate_user(0);
        sim.run_user(&user);
        let observed = sim.observed_locations(0);
        for checkin in &user.checkins {
            assert!(
                !observed.contains(&checkin.location),
                "a raw check-in leaked to the bid log"
            );
        }
    }

    #[test]
    fn longitudinal_attack_fails_against_the_system() {
        let config = SystemConfig::builder().build().unwrap();
        let mut sim = LbaSimulation::new(config, Vec::new(), 4);
        let user = population(1).generate_user(0);
        sim.run_user(&user);
        let observed = sim.observed_locations(0);
        let mech = NFoldGaussian::new(config.geo_ind());
        let attack = DeobfuscationAttack::for_gaussian(&mech, 0.05).unwrap();
        let inferred = attack.infer_top_locations(&observed, 1);
        let err = inferred[0].location.distance(user.truth.top_locations[0]);
        assert!(err > 200.0, "attack recovered the top location to {err} m");
    }



    #[test]
    fn simulation_is_deterministic() {
        let user = population(1).generate_user(0);
        let run = || {
            let mut sim =
                LbaSimulation::new(SystemConfig::builder().build().unwrap(), Vec::new(), 7);
            let r = sim.run_user(&user);
            (r, sim.observed_locations(0))
        };
        assert_eq!(run(), run());
    }
}
