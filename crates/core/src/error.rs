use std::error::Error;
use std::fmt;

use privlocad_mechanisms::MechanismError;

use crate::recovery::RecoveryError;

/// Error type for Edge-PrivLocAd configuration and operation.
#[derive(Debug, Clone, PartialEq)]
pub enum SystemError {
    /// Invalid privacy-mechanism parameters.
    Mechanism(MechanismError),
    /// An η threshold outside its valid range.
    InvalidEta(f64),
    /// A length parameter (radius, threshold) that must be positive.
    InvalidLength(f64),
    /// A time window of zero days.
    InvalidWindow,
    /// An operation referenced a user unknown to the edge device.
    UnknownUser(u32),
    /// A supervised serving worker failed permanently after `restarts`
    /// restarts; its pending requests were failed explicitly.
    WorkerFailed {
        /// How many times the supervisor restarted the worker before
        /// giving up.
        restarts: u32,
    },
    /// Crash recovery failed (corrupt snapshot log, budget violation, …).
    Recovery(RecoveryError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Mechanism(e) => write!(f, "mechanism parameter error: {e}"),
            SystemError::InvalidEta(v) => {
                write!(f, "eta fraction {v} must be in (0, 1]")
            }
            SystemError::InvalidLength(v) => {
                write!(f, "length {v} must be positive and finite")
            }
            SystemError::InvalidWindow => write!(f, "time window must be at least one day"),
            SystemError::UnknownUser(u) => write!(f, "user {u} has no state on this edge device"),
            SystemError::WorkerFailed { restarts } => {
                write!(f, "edge serving worker failed permanently after {restarts} restarts")
            }
            SystemError::Recovery(e) => write!(f, "crash recovery failed: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Mechanism(e) => Some(e),
            SystemError::Recovery(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MechanismError> for SystemError {
    fn from(e: MechanismError) -> Self {
        SystemError::Mechanism(e)
    }
}

impl From<RecoveryError> for SystemError {
    fn from(e: RecoveryError) -> Self {
        SystemError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SystemError::from(MechanismError::InvalidEpsilon(-1.0));
        assert!(e.to_string().contains("mechanism parameter error"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SystemError::InvalidWindow).is_none());
        let e = SystemError::from(RecoveryError::Truncated);
        assert!(e.to_string().contains("crash recovery failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SystemError::WorkerFailed { restarts: 2 }).is_none());
    }

    #[test]
    fn all_variants_display() {
        for e in [
            SystemError::InvalidEta(0.0),
            SystemError::InvalidLength(-2.0),
            SystemError::InvalidWindow,
            SystemError::UnknownUser(3),
            SystemError::WorkerFailed { restarts: 4 },
            SystemError::Recovery(RecoveryError::BudgetViolation { user: 5 }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
