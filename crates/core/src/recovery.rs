//! Privacy-preserving crash recovery for edge devices.
//!
//! The paper's privacy argument rests on the n-fold candidate set being
//! **permanent** (Theorem 2 / Algorithm 3): a device that crashes, loses
//! its obfuscation table, and re-draws fresh candidates for the same top
//! locations silently spends a second `(r, ε, δ, n)` budget — exactly the
//! longitudinal leak the mechanism exists to prevent. Snapshot-restore,
//! by contrast, is privacy-free: replaying already-released bytes reveals
//! nothing new, and restoring the RNG state words means any draw that was
//! rolled back mid-crash is re-executed bit-for-bit identically.
//!
//! [`DeviceSnapshot`] captures everything a device needs to resume
//! exactly where it stood: per-user candidate sets (the obfuscation
//! table), posterior-weight tables, the open window's check-in buffer,
//! the profile, the window epoch, and the generator state. The byte log
//! ([`DeviceSnapshot::encode`]) is versioned and FNV-1a checksummed, so
//! bit rot in persisted state surfaces as a structured
//! [`RecoveryError`] instead of a corrupted privacy ledger.
//!
//! The budget guard lives in [`crate::EdgeDevice::adopt_snapshot`]: a
//! live device refuses to adopt a snapshot that has *forgotten* any of
//! its released candidates ([`RecoveryError::BudgetViolation`]), because
//! the forgotten top location would be silently re-obfuscated at the
//! next window close.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use privlocad_attack::{LocationProfile, ProfileEntry};
use privlocad_geo::Point;
use privlocad_mechanisms::{PosteriorTable, SelectionCache};
use privlocad_mobility::UserId;

use crate::user::UserState;
use crate::{LocationManager, ObfuscationModule, ObfuscationTable, SystemConfig, TableDecodeError};

/// Log magic: `"PLAD"` big-endian.
const MAGIC: u32 = 0x504C_4144;
/// Current log format version.
const VERSION: u16 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the log body — cheap, dependency-free, and plenty to catch
/// truncation and bit rot in persisted snapshots.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One user's checkpointed serving state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UserRecord {
    pub(crate) user: UserId,
    /// Window epoch: how many profile windows this user has closed.
    pub(crate) windows_closed: u64,
    /// The open window's buffered check-ins, oldest first.
    pub(crate) buffer: Vec<Point>,
    /// The last computed profile, in its recorded entry order.
    pub(crate) profile: Vec<ProfileEntry>,
    /// The η-frequent location set.
    pub(crate) top_set: Vec<ProfileEntry>,
    /// The obfuscation table image ([`ObfuscationTable::encode`]) — the
    /// permanent candidate sets whose loss would be a budget violation.
    pub(crate) table_image: Vec<u8>,
    /// Cached posterior tables as `(top, cumulative weights)` pairs.
    pub(crate) tables: Vec<(Point, Vec<f64>)>,
}

impl UserRecord {
    /// The record's obfuscation table, decoded from its image.
    pub(crate) fn table(&self) -> Result<ObfuscationTable, RecoveryError> {
        ObfuscationTable::decode(&self.table_image).map_err(RecoveryError::Table)
    }

    /// Captures one user's live serving state.
    pub(crate) fn capture(user: UserId, state: &UserState) -> UserRecord {
        UserRecord {
            user,
            windows_closed: state.manager.windows_closed() as u64,
            buffer: state.manager.buffered().to_vec(),
            profile: state.manager.profile().entries().to_vec(),
            top_set: state.manager.top_set().to_vec(),
            // lint:allow(location-leak): the snapshot must carry the true window state to restore bit-identically; checkpoints never leave the trusted edge store and `restore_from` is the only consumer (DESIGN.md §12)
            table_image: state.obfuscation.table().encode().to_vec(),
            tables: state
                .selection
                .entries()
                .map(|(top, table)| (top, table.cdf().to_vec()))
                .collect(),
        }
    }
}

/// Rebuilds one user's serving state from its checkpoint record: window
/// state verbatim (profile entries in their recorded order — the order is
/// load-bearing, `from_checkins` does not sort), the obfuscation table
/// from its image, and the posterior cache re-validated entry by entry.
pub(crate) fn restore_user(
    config: &SystemConfig,
    record: &UserRecord,
) -> Result<UserState, RecoveryError> {
    restore_user_owned(config, record.clone())
}

/// [`restore_user`], consuming the record: the check-in buffer, profile,
/// top set, and posterior CDFs move straight into the rebuilt state with
/// no intermediate clones. Restore paths that own the decoded snapshot
/// (see [`crate::EdgeDevice::restore_from`]) should prefer this.
pub(crate) fn restore_user_owned(
    config: &SystemConfig,
    record: UserRecord,
) -> Result<UserState, RecoveryError> {
    let user = record.user.raw();
    let mut manager = LocationManager::new(config.profile_theta_m(), config.eta());
    manager.restore_window_state(
        record.buffer,
        LocationProfile::from_ordered_entries(record.profile),
        record.top_set,
        record.windows_closed as usize,
    );
    let obfuscation = ObfuscationModule::with_restored_table(config.geo_ind(), &record.table_image)
        .map_err(RecoveryError::Table)?;
    let mut selection = SelectionCache::new();
    for (top, cdf) in record.tables {
        let table =
            PosteriorTable::from_cdf(cdf).ok_or(RecoveryError::InvalidPosterior { user })?;
        selection.install(top, table);
    }
    Ok(UserState { manager, obfuscation, selection })
}

/// A full checkpoint of one edge device: every user's state plus the
/// generator position, captured by [`crate::EdgeDevice::snapshot`] and
/// restored by [`crate::EdgeDevice::restore`].
///
/// For [`crate::SharedEdgeDevice`] the generator position is the
/// operation counter (`op_counter`) instead of raw state words — both are
/// carried so one log format serves both devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    pub(crate) rng_state: [u64; 4],
    pub(crate) op_counter: u64,
    pub(crate) users: Vec<UserRecord>,
}

impl DeviceSnapshot {
    /// Number of users captured in the snapshot.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The users captured in the snapshot, with their window epochs.
    pub fn users(&self) -> impl Iterator<Item = (UserId, u64)> + '_ {
        self.users.iter().map(|r| (r.user, r.windows_closed))
    }

    pub(crate) fn record(&self, user: UserId) -> Option<&UserRecord> {
        self.users.iter().find(|r| r.user == user)
    }

    /// Every `(user, top location)` pair holding a released permanent
    /// candidate set in this snapshot — the live-set input to the privacy
    /// ledger's double-spend audit
    /// ([`privlocad_telemetry::Ledger::assert_no_double_spend`]).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if a user's table image fails to decode.
    pub fn released_sets(&self) -> Result<Vec<(UserId, Point)>, RecoveryError> {
        let mut sets = Vec::new();
        for record in &self.users {
            let table = record.table()?;
            for (top, _) in table.entries() {
                sets.push((record.user, top));
            }
        }
        Ok(sets)
    }

    /// Serializes the snapshot into the versioned, FNV-1a-checksummed
    /// byte log. An edge deployment persists this image durably and
    /// restores it with [`DeviceSnapshot::decode`] on startup.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.users.len() * 256);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        for word in self.rng_state {
            buf.put_u64(word);
        }
        buf.put_u64(self.op_counter);
        buf.put_u32(self.users.len() as u32);
        for record in &self.users {
            buf.put_u32(record.user.raw());
            buf.put_u64(record.windows_closed);
            put_points(&mut buf, &record.buffer);
            put_entries(&mut buf, &record.profile);
            put_entries(&mut buf, &record.top_set);
            buf.put_u32(record.table_image.len() as u32);
            buf.put_slice(&record.table_image);
            buf.put_u32(record.tables.len() as u32);
            for (top, cdf) in &record.tables {
                buf.put_f64(top.x);
                buf.put_f64(top.y);
                buf.put_u32(cdf.len() as u32);
                for &w in cdf {
                    buf.put_f64(w);
                }
            }
        }
        let checksum = fnv1a(&buf);
        buf.put_u64(checksum);
        buf.freeze()
    }

    /// Restores a snapshot from its byte log.
    ///
    /// Total: truncated, oversized, bit-flipped, or wrong-format input
    /// yields a structured [`RecoveryError`], never a panic or an
    /// unbounded allocation. The checksum is verified before any field is
    /// trusted.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] describing the first defect found.
    pub fn decode(buf: &[u8]) -> Result<Self, RecoveryError> {
        if buf.len() < 8 {
            return Err(RecoveryError::Truncated);
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_be_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        let computed = fnv1a(body);
        if stored != computed {
            return Err(RecoveryError::ChecksumMismatch { stored, computed });
        }
        let mut buf = body;
        need(buf, 6)?;
        let magic = buf.get_u32();
        if magic != MAGIC {
            return Err(RecoveryError::BadMagic(magic));
        }
        let version = buf.get_u16();
        if version != VERSION {
            return Err(RecoveryError::UnsupportedVersion(version));
        }
        need(buf, 4 * 8 + 8 + 4)?;
        let mut rng_state = [0u64; 4];
        for word in rng_state.iter_mut() {
            *word = buf.get_u64();
        }
        let op_counter = buf.get_u64();
        let user_count = buf.get_u32() as usize;
        let mut users = Vec::with_capacity(user_count.min(1_024));
        for _ in 0..user_count {
            need(buf, 12)?;
            let user = UserId::new(buf.get_u32());
            let windows_closed = buf.get_u64();
            let buffer = get_points(&mut buf)?;
            let profile = get_entries(&mut buf)?;
            let top_set = get_entries(&mut buf)?;
            need(buf, 4)?;
            let image_len = buf.get_u32() as usize;
            need(buf, image_len)?;
            let table_image = buf[..image_len].to_vec();
            buf.advance(image_len);
            need(buf, 4)?;
            let table_count = buf.get_u32() as usize;
            let mut tables = Vec::with_capacity(table_count.min(1_024));
            for _ in 0..table_count {
                need(buf, 20)?;
                let top = Point::new(buf.get_f64(), buf.get_f64());
                let cdf_len = buf.get_u32() as usize;
                need(buf, cdf_len.saturating_mul(8))?;
                let cdf = (0..cdf_len).map(|_| buf.get_f64()).collect();
                tables.push((top, cdf));
            }
            users.push(UserRecord {
                user,
                windows_closed,
                buffer,
                profile,
                top_set,
                table_image,
                tables,
            });
        }
        if !buf.is_empty() {
            return Err(RecoveryError::TrailingBytes(buf.len()));
        }
        Ok(DeviceSnapshot { rng_state, op_counter, users })
    }
}

fn need(buf: &[u8], needed: usize) -> Result<(), RecoveryError> {
    if buf.len() < needed {
        Err(RecoveryError::Truncated)
    } else {
        Ok(())
    }
}

fn put_points(buf: &mut BytesMut, points: &[Point]) {
    buf.put_u32(points.len() as u32);
    for p in points {
        buf.put_f64(p.x);
        buf.put_f64(p.y);
    }
}

fn get_points(buf: &mut &[u8]) -> Result<Vec<Point>, RecoveryError> {
    need(buf, 4)?;
    let count = buf.get_u32() as usize;
    need(buf, count.saturating_mul(16))?;
    Ok((0..count).map(|_| Point::new(buf.get_f64(), buf.get_f64())).collect())
}

fn put_entries(buf: &mut BytesMut, entries: &[ProfileEntry]) {
    buf.put_u32(entries.len() as u32);
    for e in entries {
        buf.put_f64(e.location.x);
        buf.put_f64(e.location.y);
        buf.put_u64(e.frequency as u64);
    }
}

fn get_entries(buf: &mut &[u8]) -> Result<Vec<ProfileEntry>, RecoveryError> {
    need(buf, 4)?;
    let count = buf.get_u32() as usize;
    need(buf, count.saturating_mul(24))?;
    Ok((0..count)
        .map(|_| ProfileEntry {
            location: Point::new(buf.get_f64(), buf.get_f64()),
            frequency: buf.get_u64() as usize,
        })
        .collect())
}

/// Counts candidate re-draws between two snapshots of the same device: a
/// top location present in both whose candidate set changed. The chaos
/// harness asserts this is **zero** across every crash-restore cycle —
/// any non-zero count is a silent privacy-budget double-spend.
///
/// Top locations appearing only in `after` are fresh first releases (a
/// normal window close), not re-draws.
///
/// # Errors
///
/// Propagates [`RecoveryError::Table`] if either snapshot carries a
/// corrupt obfuscation-table image.
pub fn candidate_redraws(
    before: &DeviceSnapshot,
    after: &DeviceSnapshot,
) -> Result<usize, RecoveryError> {
    let mut redraws = 0;
    for record in &before.users {
        let Some(newer) = after.record(record.user) else {
            continue;
        };
        let old_table = record.table()?;
        let new_table = newer.table()?;
        for (top, old_candidates) in old_table.entries() {
            if let Some((_, new_candidates)) =
                new_table.entries().find(|(t, _)| *t == top)
            {
                if new_candidates != old_candidates {
                    redraws += 1;
                }
            }
        }
    }
    Ok(redraws)
}

/// Error restoring or validating a [`DeviceSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The log ends before its declared content.
    Truncated,
    /// The log does not start with the snapshot magic.
    BadMagic(u32),
    /// The log was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The FNV-1a checksum does not match the body — bit rot or
    /// truncation in persisted state.
    ChecksumMismatch {
        /// Checksum stored in the log.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The log continues past its declared content.
    TrailingBytes(usize),
    /// An embedded obfuscation-table image failed to decode.
    Table(TableDecodeError),
    /// A checkpointed posterior table violates the cumulative-weight
    /// invariants.
    InvalidPosterior {
        /// The raw id of the affected user.
        user: u32,
    },
    /// Adopting the snapshot would forget candidates the live device has
    /// already released: the affected user's next window close would
    /// silently re-draw them, double-spending the privacy budget.
    BudgetViolation {
        /// The raw id of the affected user.
        user: u32,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Truncated => write!(f, "truncated snapshot log"),
            RecoveryError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            RecoveryError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            RecoveryError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            RecoveryError::TrailingBytes(n) => {
                write!(f, "snapshot log has {n} trailing bytes")
            }
            RecoveryError::Table(e) => write!(f, "snapshot obfuscation table: {e}"),
            RecoveryError::InvalidPosterior { user } => {
                write!(f, "invalid checkpointed posterior table for user {user}")
            }
            RecoveryError::BudgetViolation { user } => write!(
                f,
                "restoring would forget released candidates of user {user}; \
                 the next window close would re-draw them (privacy budget double-spend)"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Table(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> DeviceSnapshot {
        let mut table = ObfuscationTable::new(200.0);
        table.insert(Point::new(10.0, 20.0), vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
        DeviceSnapshot {
            rng_state: [1, 2, 3, 4],
            op_counter: 99,
            users: vec![UserRecord {
                user: UserId::new(7),
                windows_closed: 2,
                buffer: vec![Point::new(5.0, 6.0)],
                profile: vec![ProfileEntry { location: Point::new(10.0, 20.0), frequency: 30 }],
                top_set: vec![ProfileEntry { location: Point::new(10.0, 20.0), frequency: 30 }],
                table_image: table.encode().to_vec(),
                tables: vec![(Point::new(10.0, 20.0), vec![0.5, 1.0])],
            }],
        }
    }

    #[test]
    fn log_round_trips() {
        let snap = snapshot();
        let log = snap.encode();
        let back = DeviceSnapshot::decode(&log).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.user_count(), 1);
        assert_eq!(back.users().collect::<Vec<_>>(), vec![(UserId::new(7), 2)]);
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        let log = snapshot().encode();
        for byte in 0..log.len() {
            for bit in 0..8 {
                let mut bad = log.to_vec();
                bad[byte] ^= 1 << bit;
                let err = DeviceSnapshot::decode(&bad)
                    .expect_err("a flipped bit must not decode cleanly");
                // Flips in the trailing checksum itself also surface as a
                // mismatch — the body hash no longer agrees.
                assert!(
                    matches!(err, RecoveryError::ChecksumMismatch { .. }),
                    "byte {byte} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_caught() {
        let log = snapshot().encode();
        for len in 0..log.len() {
            assert!(
                DeviceSnapshot::decode(&log[..len]).is_err(),
                "prefix of {len} bytes decoded cleanly"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_caught() {
        // Corrupt the field, then re-stamp a valid checksum so the defect
        // reaches the structural check.
        let restamp = |mut body: Vec<u8>| {
            let split = body.len() - 8;
            let sum = fnv1a(&body[..split]);
            body[split..].copy_from_slice(&sum.to_be_bytes());
            body
        };
        let log = snapshot().encode().to_vec();
        let mut bad = log.clone();
        bad[0] = 0x00;
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::BadMagic(_))
        ));
        let mut bad = log.clone();
        bad[5] = 0xEE;
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::UnsupportedVersion(_))
        ));
        let mut bad = log;
        bad.splice(bad.len() - 8..bad.len() - 8, [0u8]);
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::TrailingBytes(_) | RecoveryError::Truncated)
        ));
    }

    #[test]
    fn redraw_counting_flags_changed_candidates() {
        let before = snapshot();
        // Identical snapshots: no re-draws.
        assert_eq!(candidate_redraws(&before, &before).unwrap(), 0);

        // Same top, different candidates: one re-draw.
        let mut redrawn = before.clone();
        let mut table = ObfuscationTable::new(200.0);
        table.insert(Point::new(10.0, 20.0), vec![Point::new(9.0, 9.0), Point::new(8.0, 8.0)]);
        redrawn.users[0].table_image = table.encode().to_vec();
        assert_eq!(candidate_redraws(&before, &redrawn).unwrap(), 1);

        // A fresh top released after the first snapshot is not a re-draw.
        let mut grown = before.clone();
        let mut table = ObfuscationTable::decode(&grown.users[0].table_image).unwrap();
        table.insert(Point::new(9_000.0, 0.0), vec![Point::new(9_001.0, 1.0)]);
        grown.users[0].table_image = table.encode().to_vec();
        assert_eq!(candidate_redraws(&before, &grown).unwrap(), 0);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let table_err = RecoveryError::Table(TableDecodeError::Truncated);
        assert!(table_err.source().is_some());
        for e in [
            RecoveryError::Truncated,
            RecoveryError::BadMagic(0xDEAD_BEEF),
            RecoveryError::UnsupportedVersion(9),
            RecoveryError::ChecksumMismatch { stored: 1, computed: 2 },
            RecoveryError::TrailingBytes(3),
            table_err.clone(),
            RecoveryError::InvalidPosterior { user: 4 },
            RecoveryError::BudgetViolation { user: 5 },
        ] {
            assert!(!e.to_string().is_empty());
            if !matches!(e, RecoveryError::Table(_)) {
                assert!(e.source().is_none());
            }
        }
    }
}
