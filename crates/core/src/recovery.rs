//! Privacy-preserving crash recovery for edge devices.
//!
//! The paper's privacy argument rests on the n-fold candidate set being
//! **permanent** (Theorem 2 / Algorithm 3): a device that crashes, loses
//! its obfuscation table, and re-draws fresh candidates for the same top
//! locations silently spends a second `(r, ε, δ, n)` budget — exactly the
//! longitudinal leak the mechanism exists to prevent. Snapshot-restore,
//! by contrast, is privacy-free: replaying already-released bytes reveals
//! nothing new, and restoring the RNG state words means any draw that was
//! rolled back mid-crash is re-executed bit-for-bit identically.
//!
//! [`DeviceSnapshot`] captures everything a device needs to resume
//! exactly where it stood: per-user candidate sets (the obfuscation
//! table), posterior-weight tables, the open window's check-in buffer,
//! the profile, the window epoch, and the generator state. Candidate
//! sets and posterior tables are **pooled**: the snapshot stores each
//! distinct set once (deduplicated by `Arc` identity at capture time)
//! and user records hold `u32` references into the pools, so a
//! fleet-distributed set shared by a thousand users costs one pool entry
//! plus a thousand 20-byte references — this is what keeps the per-shard
//! bytes/user budget flat as the fleet grows (DESIGN.md §16).
//!
//! The byte log ([`DeviceSnapshot::encode`]) is versioned,
//! length-prefix-framed, and FNV-1a checksummed. Version 2 is the
//! current format: one contiguous buffer per device, every pool entry
//! and user record carried as a length-prefixed frame, decoded by an
//! in-place slice reader — the only allocations on the decode path are
//! the final owned state (one `Arc` per **distinct** candidate set, not
//! one per user record). Version 1 logs (one embedded table image and
//! private CDF vector per user) remain decodable behind the version
//! field. Bit rot in persisted state surfaces as a structured
//! [`RecoveryError`] instead of a corrupted privacy ledger.
//!
//! The budget guard lives in [`crate::EdgeDevice::adopt_snapshot`]: a
//! live device refuses to adopt a snapshot that has *forgotten* any of
//! its released candidates ([`RecoveryError::BudgetViolation`]), because
//! the forgotten top location would be silently re-obfuscated at the
//! next window close.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use privlocad_attack::{LocationProfile, ProfileEntry};
use privlocad_geo::Point;
use privlocad_mechanisms::{PosteriorTable, SelectionCache};
use privlocad_mobility::UserId;

use crate::user::UserState;
use crate::{LocationManager, ObfuscationModule, ObfuscationTable, SystemConfig, TableDecodeError};

/// Log magic: `"PLAD"` big-endian.
const MAGIC: u32 = 0x504C_4144;
/// Current log format version: pooled, length-prefix-framed.
const VERSION: u16 = 2;
/// The original one-table-image-per-user format, still decodable.
const VERSION_V1: u16 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the log body — cheap, dependency-free, and plenty to catch
/// truncation and bit rot in persisted snapshots.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// How the captured device assigns RNG streams to serving operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// One device-wide generator advanced in operation order (the
    /// classic single-device mode).
    Device,
    /// An independent generator per user, derived from the fleet master
    /// seed — serving outputs become invariant to how the population is
    /// partitioned across shards, because no user's draws depend on any
    /// other user's operation interleaving.
    PerUser {
        /// The fleet master seed the per-user streams derive from.
        master: u64,
    },
}

/// One user's checkpointed serving state. Bulky payloads (candidate
/// sets, posterior CDFs) live in the snapshot-level pools; the record
/// holds `u32` references into them.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct UserRecord {
    pub(crate) user: UserId,
    /// Window epoch: how many profile windows this user has closed.
    pub(crate) windows_closed: u64,
    /// The user's private RNG stream position ([`StreamMode::PerUser`]
    /// devices only; all zeros otherwise).
    pub(crate) rng_words: [u64; 4],
    /// The open window's buffered check-ins, oldest first.
    pub(crate) buffer: Vec<Point>,
    /// The last computed profile, in its recorded entry order.
    pub(crate) profile: Vec<ProfileEntry>,
    /// The η-frequent location set.
    pub(crate) top_set: Vec<ProfileEntry>,
    /// The obfuscation table's proximity match radius, meters.
    pub(crate) table_radius: f64,
    /// The permanent obfuscation table: `(top, candidate-pool index)` —
    /// the released candidate sets whose loss would be a budget
    /// violation.
    pub(crate) table: Vec<(Point, u32)>,
    /// The posterior cache: `(top, CDF-pool index)`.
    pub(crate) cache: Vec<(Point, u32)>,
}

/// Accumulates user captures into a pooled [`DeviceSnapshot`]:
/// candidate sets and posterior tables are deduplicated by `Arc`
/// identity, so state installed fleet-wide through
/// [`crate::CandidateArena`] sharing is stored once per **distinct**
/// set, not once per user. Pool indices are assigned in first-seen
/// order over the (ascending) capture sequence, which keeps the
/// resulting snapshot — and its encoded bytes — deterministic.
pub(crate) struct SnapshotBuilder {
    sets: Vec<Arc<[Point]>>,
    /// `Arc` data-pointer → pool index; lookup only, never iterated.
    set_index: BTreeMap<usize, u32>,
    cdfs: Vec<Vec<f64>>,
    cdf_index: BTreeMap<usize, u32>,
    users: Vec<UserRecord>,
}

impl SnapshotBuilder {
    pub(crate) fn new() -> Self {
        SnapshotBuilder {
            sets: Vec::new(),
            set_index: BTreeMap::new(),
            cdfs: Vec::new(),
            cdf_index: BTreeMap::new(),
            users: Vec::new(),
        }
    }

    /// Captures one user's live serving state into the pools.
    pub(crate) fn capture(&mut self, user: UserId, state: &UserState) {
        let table = state.obfuscation.table();
        let mut table_refs = Vec::with_capacity(table.len());
        for (top, shared) in table.shared_entries() {
            let key = shared.as_ptr() as usize;
            let idx = match self.set_index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = self.sets.len() as u32;
                    self.sets.push(Arc::clone(shared));
                    self.set_index.insert(key, i);
                    i
                }
            };
            table_refs.push((top, idx));
        }
        let mut cache_refs = Vec::new();
        for (top, shared) in state.selection.shared_entries() {
            let key = Arc::as_ptr(shared) as usize;
            let idx = match self.cdf_index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = self.cdfs.len() as u32;
                    self.cdfs.push(shared.cdf().to_vec());
                    self.cdf_index.insert(key, i);
                    i
                }
            };
            cache_refs.push((top, idx));
        }
        self.users.push(UserRecord {
            user,
            windows_closed: state.manager.windows_closed() as u64,
            rng_words: state.stream.as_ref().map_or([0; 4], |r| r.state()),
            buffer: state.manager.buffered().to_vec(),
            profile: state.manager.profile().entries().to_vec(),
            top_set: state.manager.top_set().to_vec(),
            table_radius: table.match_radius_m(),
            table: table_refs,
            cache: cache_refs,
        });
    }

    /// Seals the builder into a snapshot.
    pub(crate) fn finish(
        self,
        rng_state: [u64; 4],
        op_counter: u64,
        streams: StreamMode,
    ) -> DeviceSnapshot {
        DeviceSnapshot {
            rng_state,
            op_counter,
            streams,
            sets: self.sets,
            cdfs: self.cdfs,
            users: self.users,
        }
    }
}

/// The serving loop's committed checkpoint, maintained **incrementally**:
/// instead of re-encoding the whole device after every delivered batch —
/// O(fleet) work per commit, which is what caps a shard's sustainable
/// request rate once the fleet is large — the loop re-captures only the
/// users the batch touched, and the full byte image is materialized
/// lazily on the rare paths that actually read it (rollback after a
/// caught panic, respawn of a dead shard,
/// [`crate::EdgeServer::last_checkpoint`]).
///
/// Pool entries are append-only and **pinned**: the pool holds its own
/// `Arc` clone of every indexed candidate set and posterior table, so an
/// indexed allocation can never be freed and its address reused while
/// the index is live — the pointer-identity dedup stays sound for the
/// log's whole lifetime. Restore paths rebuild the log wholesale (the
/// restored device is a fresh allocation graph), which also sheds any
/// pool growth accumulated from re-captures.
#[derive(Debug)]
pub(crate) struct CommittedLog {
    streams: StreamMode,
    rng_state: [u64; 4],
    sets: Vec<Arc<[Point]>>,
    set_index: BTreeMap<usize, u32>,
    /// Encoded bytes of the set pool section (length prefixes included).
    set_bytes: usize,
    cdfs: Vec<Arc<PosteriorTable>>,
    cdf_index: BTreeMap<usize, u32>,
    cdf_bytes: usize,
    /// Per-user encoded frame bodies, ascending by raw id — the same
    /// order [`crate::EdgeDevice::snapshot`] captures in.
    frames: BTreeMap<u32, Vec<u8>>,
    frame_bytes: usize,
}

/// Fixed header bytes of a v2 image: magic, version, stream byte +
/// master, four RNG words, and the op counter.
const V2_HEADER_LEN: usize = 4 + 2 + 1 + 8 + 32 + 8;

impl CommittedLog {
    pub(crate) fn new(streams: StreamMode) -> Self {
        CommittedLog {
            streams,
            rng_state: [0; 4],
            sets: Vec::new(),
            set_index: BTreeMap::new(),
            set_bytes: 0,
            cdfs: Vec::new(),
            cdf_index: BTreeMap::new(),
            cdf_bytes: 0,
            frames: BTreeMap::new(),
            frame_bytes: 0,
        }
    }

    /// Captures the device wholesale — spawn, restore, and test entry
    /// point. Per-batch maintenance goes through
    /// [`CommittedLog::capture_user`] instead.
    pub(crate) fn rebuild(edge: &crate::EdgeDevice) -> Self {
        let (rng_state, streams) = edge.checkpoint_header();
        let mut log = CommittedLog::new(streams);
        log.rng_state = rng_state;
        for (user, state) in edge.user_states() {
            log.capture_user(user, state);
        }
        log
    }

    /// Refreshes the device-wide generator words (the only non-per-user
    /// state a v2 image carries; in [`StreamMode::Device`] every serving
    /// op advances them).
    pub(crate) fn set_rng(&mut self, rng_state: [u64; 4]) {
        self.rng_state = rng_state;
    }

    fn intern_set(&mut self, shared: &Arc<[Point]>) -> u32 {
        let key = shared.as_ptr() as usize;
        match self.set_index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.sets.len() as u32;
                self.set_bytes += 4 + 4 + shared.len() * 16;
                self.sets.push(Arc::clone(shared));
                self.set_index.insert(key, i);
                i
            }
        }
    }

    fn intern_cdf(&mut self, shared: &Arc<PosteriorTable>) -> u32 {
        let key = Arc::as_ptr(shared) as usize;
        match self.cdf_index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.cdfs.len() as u32;
                self.cdf_bytes += 4 + 4 + shared.cdf().len() * 8;
                self.cdfs.push(Arc::clone(shared));
                self.cdf_index.insert(key, i);
                i
            }
        }
    }

    /// Re-encodes one user's frame into the log, interning any candidate
    /// set or posterior table it references that the pools have not seen
    /// yet. O(user state), independent of the fleet size.
    pub(crate) fn capture_user(&mut self, user: UserId, state: &UserState) {
        let per_user = matches!(self.streams, StreamMode::PerUser { .. });
        let table = state.obfuscation.table();
        let mut frame: Vec<u8> = Vec::new();
        frame.put_u32(user.raw());
        frame.put_u64(state.manager.windows_closed() as u64);
        if per_user {
            for word in state.stream.as_ref().map_or([0; 4], |r| r.state()) {
                frame.put_u64(word);
            }
        }
        put_points(&mut frame, state.manager.buffered());
        put_entries(&mut frame, state.manager.profile().entries());
        put_entries(&mut frame, state.manager.top_set());
        frame.put_f64(table.match_radius_m());
        frame.put_u32(table.len() as u32);
        for (top, shared) in table.shared_entries() {
            let idx = self.intern_set(shared);
            frame.put_f64(top.x);
            frame.put_f64(top.y);
            frame.put_u32(idx);
        }
        let cache_count_at = frame.len();
        frame.put_u32(0);
        let mut cache_count: u32 = 0;
        for (top, shared) in state.selection.shared_entries() {
            let idx = self.intern_cdf(shared);
            frame.put_f64(top.x);
            frame.put_f64(top.y);
            frame.put_u32(idx);
            cache_count += 1;
        }
        frame[cache_count_at..cache_count_at + 4].copy_from_slice(&cache_count.to_be_bytes());
        self.frame_bytes += 4 + frame.len();
        if let Some(old) = self.frames.insert(user.raw(), frame) {
            self.frame_bytes -= 4 + old.len();
        }
    }

    /// The byte length [`CommittedLog::materialize`] would produce —
    /// tracked incrementally so the commit path can export it without
    /// encoding anything.
    pub(crate) fn encoded_len(&self) -> usize {
        V2_HEADER_LEN + 4 + self.set_bytes + 4 + self.cdf_bytes + 4 + self.frame_bytes + 8
    }

    /// Encodes the committed image as a [`DeviceSnapshot::decode`]-able
    /// v2 byte log. O(total state) — called only on the read paths, never
    /// per commit.
    pub(crate) fn materialize(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        match self.streams {
            StreamMode::Device => {
                buf.put_u8(0);
                buf.put_u64(0);
            }
            StreamMode::PerUser { master } => {
                buf.put_u8(1);
                buf.put_u64(master);
            }
        }
        for word in self.rng_state {
            buf.put_u64(word);
        }
        // The device op counter: always zero for `EdgeDevice` images,
        // exactly as `DeviceSnapshot` records it.
        buf.put_u64(0);
        buf.put_u32(self.sets.len() as u32);
        for set in &self.sets {
            buf.put_u32((4 + set.len() * 16) as u32);
            put_points(&mut buf, set);
        }
        buf.put_u32(self.cdfs.len() as u32);
        for table in &self.cdfs {
            let cdf = table.cdf();
            buf.put_u32((4 + cdf.len() * 8) as u32);
            buf.put_u32(cdf.len() as u32);
            for &w in cdf {
                buf.put_f64(w);
            }
        }
        buf.put_u32(self.frames.len() as u32);
        for frame in self.frames.values() {
            buf.put_u32(frame.len() as u32);
            buf.put_slice(frame);
        }
        let checksum = fnv1a(&buf);
        buf.put_u64(checksum);
        buf.freeze()
    }
}

/// The shared-state side of a restore: every pooled candidate set and
/// posterior table materialized **once**, then handed to each user
/// record as two `Arc` bumps. Validation (CDF invariants) also happens
/// once per distinct table instead of once per user.
#[derive(Debug)]
pub(crate) struct RestorePools {
    pub(crate) sets: Vec<Arc<[Point]>>,
    pub(crate) tables: Vec<Arc<PosteriorTable>>,
}

/// Rebuilds one user's serving state from its checkpoint record: window
/// state verbatim (profile entries in their recorded order — the order is
/// load-bearing, `from_checkins` does not sort), the obfuscation table
/// and posterior cache as shared handles into the restore pools.
pub(crate) fn restore_user(
    config: &SystemConfig,
    record: &UserRecord,
    pools: &RestorePools,
) -> Result<UserState, RecoveryError> {
    restore_user_owned(config, record.clone(), pools)
}

/// [`restore_user`], consuming the record: the check-in buffer, profile,
/// and top set move straight into the rebuilt state with no intermediate
/// clones. Restore paths that own the decoded snapshot (see
/// [`crate::EdgeDevice::restore_from`]) should prefer this.
pub(crate) fn restore_user_owned(
    config: &SystemConfig,
    record: UserRecord,
    pools: &RestorePools,
) -> Result<UserState, RecoveryError> {
    let user = record.user.raw();
    let mut manager = LocationManager::new(config.profile_theta_m(), config.eta());
    manager.restore_window_state(
        record.buffer,
        LocationProfile::from_ordered_entries(record.profile),
        record.top_set,
        record.windows_closed as usize,
    );
    if !(record.table_radius.is_finite() && record.table_radius > 0.0) {
        return Err(RecoveryError::Table(TableDecodeError::InvalidRadius(record.table_radius)));
    }
    let mut table = ObfuscationTable::new(record.table_radius);
    for (top, idx) in record.table {
        let set =
            pools.sets.get(idx as usize).ok_or(RecoveryError::BadPoolRef { user })?;
        table.insert_shared(top, Arc::clone(set));
    }
    let obfuscation = ObfuscationModule::from_table(config.geo_ind(), table);
    let mut selection = SelectionCache::new();
    for (top, idx) in record.cache {
        let shared =
            pools.tables.get(idx as usize).ok_or(RecoveryError::BadPoolRef { user })?;
        selection.install_shared(top, Arc::clone(shared));
    }
    Ok(UserState { manager, obfuscation, selection, stream: None })
}

/// A full checkpoint of one edge device: every user's state plus the
/// generator position, captured by [`crate::EdgeDevice::snapshot`] and
/// restored by [`crate::EdgeDevice::restore`].
///
/// For [`crate::SharedEdgeDevice`] the generator position is the
/// operation counter (`op_counter`) instead of raw state words — both are
/// carried so one log format serves both devices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    pub(crate) rng_state: [u64; 4],
    pub(crate) op_counter: u64,
    pub(crate) streams: StreamMode,
    /// Distinct permanent candidate sets, in first-seen capture order.
    pub(crate) sets: Vec<Arc<[Point]>>,
    /// Distinct posterior cumulative-weight tables, first-seen order.
    pub(crate) cdfs: Vec<Vec<f64>>,
    pub(crate) users: Vec<UserRecord>,
}

impl DeviceSnapshot {
    /// Number of users captured in the snapshot.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// The users captured in the snapshot, with their window epochs.
    pub fn users(&self) -> impl Iterator<Item = (UserId, u64)> + '_ {
        self.users.iter().map(|r| (r.user, r.windows_closed))
    }

    /// Number of distinct pooled candidate sets.
    pub fn distinct_candidate_sets(&self) -> usize {
        self.sets.len()
    }

    pub(crate) fn record(&self, user: UserId) -> Option<&UserRecord> {
        self.users.iter().find(|r| r.user == user)
    }

    /// The pooled candidate set behind reference `idx` of `user`.
    pub(crate) fn set(&self, idx: u32, user: u32) -> Result<&[Point], RecoveryError> {
        self.sets
            .get(idx as usize)
            .map(|s| &**s)
            .ok_or(RecoveryError::BadPoolRef { user })
    }

    /// Builds the restore pools: every pooled CDF validated and
    /// materialized as a shared [`PosteriorTable`] exactly once.
    pub(crate) fn pools(&self) -> Result<RestorePools, RecoveryError> {
        let mut tables = Vec::with_capacity(self.cdfs.len());
        for (idx, cdf) in self.cdfs.iter().enumerate() {
            let table = PosteriorTable::from_cdf(cdf.clone()).ok_or_else(|| {
                // Error context: the first user whose cache cites the
                // defective pool entry (error path only — never hot).
                let user = self
                    .users
                    .iter()
                    .find(|r| r.cache.iter().any(|&(_, i)| i as usize == idx))
                    .map_or(u32::MAX, |r| r.user.raw());
                RecoveryError::InvalidPosterior { user }
            })?;
            tables.push(Arc::new(table));
        }
        Ok(RestorePools { sets: self.sets.clone(), tables })
    }

    /// Every `(user, top location)` pair holding a released permanent
    /// candidate set in this snapshot — the live-set input to the privacy
    /// ledger's double-spend audit
    /// ([`privlocad_telemetry::Ledger::assert_no_double_spend`]).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if a record cites a missing pool entry.
    pub fn released_sets(&self) -> Result<Vec<(UserId, Point)>, RecoveryError> {
        let mut sets = Vec::new();
        for record in &self.users {
            for &(top, idx) in &record.table {
                self.set(idx, record.user.raw())?;
                sets.push((record.user, top));
            }
        }
        Ok(sets)
    }

    /// Serializes the snapshot into the versioned, length-prefix-framed,
    /// FNV-1a-checksummed byte log (format version 2): one contiguous
    /// buffer, pools first, then one frame per user holding `u32`
    /// references into them. An edge deployment persists this image
    /// durably and restores it with [`DeviceSnapshot::decode`] on
    /// startup.
    pub fn encode(&self) -> Bytes {
        let per_user = matches!(self.streams, StreamMode::PerUser { .. });
        let mut capacity = 64 + 8;
        for set in &self.sets {
            capacity += 8 + set.len() * 16;
        }
        for cdf in &self.cdfs {
            capacity += 8 + cdf.len() * 8;
        }
        for record in &self.users {
            capacity += 4 + user_frame_len(record, per_user);
        }
        let mut buf = BytesMut::with_capacity(capacity);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        match self.streams {
            StreamMode::Device => {
                buf.put_u8(0);
                buf.put_u64(0);
            }
            StreamMode::PerUser { master } => {
                buf.put_u8(1);
                buf.put_u64(master);
            }
        }
        for word in self.rng_state {
            buf.put_u64(word);
        }
        buf.put_u64(self.op_counter);
        buf.put_u32(self.sets.len() as u32);
        for set in &self.sets {
            buf.put_u32((4 + set.len() * 16) as u32);
            put_points(&mut buf, set);
        }
        buf.put_u32(self.cdfs.len() as u32);
        for cdf in &self.cdfs {
            buf.put_u32((4 + cdf.len() * 8) as u32);
            buf.put_u32(cdf.len() as u32);
            for &w in cdf {
                buf.put_f64(w);
            }
        }
        buf.put_u32(self.users.len() as u32);
        for record in &self.users {
            buf.put_u32(user_frame_len(record, per_user) as u32);
            buf.put_u32(record.user.raw());
            buf.put_u64(record.windows_closed);
            if per_user {
                for word in record.rng_words {
                    buf.put_u64(word);
                }
            }
            put_points(&mut buf, &record.buffer);
            put_entries(&mut buf, &record.profile);
            put_entries(&mut buf, &record.top_set);
            buf.put_f64(record.table_radius);
            buf.put_u32(record.table.len() as u32);
            for &(top, idx) in &record.table {
                buf.put_f64(top.x);
                buf.put_f64(top.y);
                buf.put_u32(idx);
            }
            buf.put_u32(record.cache.len() as u32);
            for &(top, idx) in &record.cache {
                buf.put_f64(top.x);
                buf.put_f64(top.y);
                buf.put_u32(idx);
            }
        }
        let checksum = fnv1a(&buf);
        buf.put_u64(checksum);
        buf.freeze()
    }

    /// Restores a snapshot from its byte log (either format version).
    ///
    /// Total: truncated, oversized, bit-flipped, or wrong-format input
    /// yields a structured [`RecoveryError`], never a panic or an
    /// unbounded allocation. The checksum is verified before any field is
    /// trusted, and every pool reference is bounds-checked during decode.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] describing the first defect found.
    pub fn decode(buf: &[u8]) -> Result<Self, RecoveryError> {
        if buf.len() < 8 {
            return Err(RecoveryError::Truncated);
        }
        let (body, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_be_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        let computed = fnv1a(body);
        if stored != computed {
            return Err(RecoveryError::ChecksumMismatch { stored, computed });
        }
        let mut reader = Reader { buf: body };
        reader.need(6)?;
        let magic = reader.get_u32()?;
        if magic != MAGIC {
            return Err(RecoveryError::BadMagic(magic));
        }
        let version = reader.get_u16()?;
        match version {
            VERSION_V1 => decode_v1(reader),
            VERSION => decode_v2(reader),
            v => Err(RecoveryError::UnsupportedVersion(v)),
        }
    }
}

/// The byte length of one user record's v2 frame body.
fn user_frame_len(record: &UserRecord, per_user: bool) -> usize {
    4 + 8
        + if per_user { 32 } else { 0 }
        + 4
        + record.buffer.len() * 16
        + 4
        + record.profile.len() * 24
        + 4
        + record.top_set.len() * 24
        + 8
        + 4
        + record.table.len() * 20
        + 4
        + record.cache.len() * 20
}

/// Bounds-checked big-endian reader over a borrowed log body. Frames
/// ([`Reader::frame`]) are sub-slices of the same buffer — the reader
/// never copies bytes; only the final owned state allocates.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, needed: usize) -> Result<(), RecoveryError> {
        if self.buf.len() < needed {
            Err(RecoveryError::Truncated)
        } else {
            Ok(())
        }
    }

    fn get_u8(&mut self) -> Result<u8, RecoveryError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn get_u16(&mut self) -> Result<u16, RecoveryError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    fn get_u32(&mut self) -> Result<u32, RecoveryError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    fn get_u64(&mut self) -> Result<u64, RecoveryError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    fn get_f64(&mut self) -> Result<f64, RecoveryError> {
        self.need(8)?;
        Ok(self.buf.get_f64())
    }

    /// Reads a length prefix and splits off that many bytes as a
    /// sub-reader — the length-prefixed frame primitive. The parent
    /// advances past the frame whether or not the caller consumes it.
    fn frame(&mut self) -> Result<Reader<'a>, RecoveryError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(Reader { buf: head })
    }

    /// Asserts the reader was fully consumed.
    fn finish(self) -> Result<(), RecoveryError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(RecoveryError::TrailingBytes(self.buf.len()))
        }
    }
}

/// Decodes the original v1 body (one embedded table image and private
/// CDF vector per user) into the pooled representation: each user's
/// payloads are appended to the pools without deduplication — v1 logs
/// predate cross-user sharing, so there is nothing to share.
fn decode_v1(mut r: Reader<'_>) -> Result<DeviceSnapshot, RecoveryError> {
    r.need(4 * 8 + 8 + 4)?;
    let mut rng_state = [0u64; 4];
    for word in rng_state.iter_mut() {
        *word = r.get_u64()?;
    }
    let op_counter = r.get_u64()?;
    let user_count = r.get_u32()? as usize;
    let mut sets: Vec<Arc<[Point]>> = Vec::new();
    let mut cdfs: Vec<Vec<f64>> = Vec::new();
    let mut users = Vec::with_capacity(user_count.min(1_024));
    for _ in 0..user_count {
        r.need(12)?;
        let user = UserId::new(r.get_u32()?);
        let windows_closed = r.get_u64()?;
        let buffer = get_points(&mut r)?;
        let profile = get_entries(&mut r)?;
        let top_set = get_entries(&mut r)?;
        let image_len = r.get_u32()? as usize;
        r.need(image_len)?;
        let (image, rest) = r.buf.split_at(image_len);
        r.buf = rest;
        let decoded = ObfuscationTable::decode(image).map_err(RecoveryError::Table)?;
        let table_radius = decoded.match_radius_m();
        let mut table = Vec::with_capacity(decoded.len());
        for (top, shared) in decoded.shared_entries() {
            table.push((top, sets.len() as u32));
            sets.push(Arc::clone(shared));
        }
        let table_count = r.get_u32()? as usize;
        let mut cache = Vec::with_capacity(table_count.min(1_024));
        for _ in 0..table_count {
            r.need(20)?;
            let top = Point::new(r.get_f64()?, r.get_f64()?);
            let cdf_len = r.get_u32()? as usize;
            r.need(cdf_len.saturating_mul(8))?;
            let mut cdf = Vec::with_capacity(cdf_len);
            for _ in 0..cdf_len {
                cdf.push(r.get_f64()?);
            }
            cache.push((top, cdfs.len() as u32));
            cdfs.push(cdf);
        }
        users.push(UserRecord {
            user,
            windows_closed,
            rng_words: [0; 4],
            buffer,
            profile,
            top_set,
            table_radius,
            table,
            cache,
        });
    }
    r.finish()?;
    Ok(DeviceSnapshot { rng_state, op_counter, streams: StreamMode::Device, sets, cdfs, users })
}

/// Decodes the pooled, framed v2 body.
fn decode_v2(mut r: Reader<'_>) -> Result<DeviceSnapshot, RecoveryError> {
    r.need(1 + 8 + 4 * 8 + 8 + 4)?;
    let mode = r.get_u8()?;
    let master = r.get_u64()?;
    let streams = match mode {
        0 => StreamMode::Device,
        1 => StreamMode::PerUser { master },
        m => return Err(RecoveryError::BadStreamMode(m)),
    };
    let per_user = matches!(streams, StreamMode::PerUser { .. });
    let mut rng_state = [0u64; 4];
    for word in rng_state.iter_mut() {
        *word = r.get_u64()?;
    }
    let op_counter = r.get_u64()?;

    let set_count = r.get_u32()? as usize;
    let mut sets: Vec<Arc<[Point]>> = Vec::with_capacity(set_count.min(1_024));
    for _ in 0..set_count {
        let mut f = r.frame()?;
        let points = get_points(&mut f)?;
        f.finish()?;
        sets.push(Arc::from(points));
    }

    let cdf_count = r.get_u32()? as usize;
    let mut cdfs: Vec<Vec<f64>> = Vec::with_capacity(cdf_count.min(1_024));
    for _ in 0..cdf_count {
        let mut f = r.frame()?;
        let len = f.get_u32()? as usize;
        f.need(len.saturating_mul(8))?;
        let mut cdf = Vec::with_capacity(len);
        for _ in 0..len {
            cdf.push(f.get_f64()?);
        }
        f.finish()?;
        cdfs.push(cdf);
    }

    let user_count = r.get_u32()? as usize;
    let mut users = Vec::with_capacity(user_count.min(1_024));
    for _ in 0..user_count {
        let mut f = r.frame()?;
        f.need(12)?;
        let user = UserId::new(f.get_u32()?);
        let raw = user.raw();
        let windows_closed = f.get_u64()?;
        let mut rng_words = [0u64; 4];
        if per_user {
            for word in rng_words.iter_mut() {
                *word = f.get_u64()?;
            }
        }
        let buffer = get_points(&mut f)?;
        let profile = get_entries(&mut f)?;
        let top_set = get_entries(&mut f)?;
        let table_radius = f.get_f64()?;
        if !(table_radius.is_finite() && table_radius > 0.0) {
            return Err(RecoveryError::Table(TableDecodeError::InvalidRadius(table_radius)));
        }
        let table_count = f.get_u32()? as usize;
        let mut table = Vec::with_capacity(table_count.min(1_024));
        for _ in 0..table_count {
            f.need(20)?;
            let top = Point::new(f.get_f64()?, f.get_f64()?);
            let idx = f.get_u32()?;
            if idx as usize >= sets.len() {
                return Err(RecoveryError::BadPoolRef { user: raw });
            }
            table.push((top, idx));
        }
        let cache_count = f.get_u32()? as usize;
        let mut cache = Vec::with_capacity(cache_count.min(1_024));
        for _ in 0..cache_count {
            f.need(20)?;
            let top = Point::new(f.get_f64()?, f.get_f64()?);
            let idx = f.get_u32()?;
            if idx as usize >= cdfs.len() {
                return Err(RecoveryError::BadPoolRef { user: raw });
            }
            cache.push((top, idx));
        }
        f.finish()?;
        users.push(UserRecord {
            user,
            windows_closed,
            rng_words,
            buffer,
            profile,
            top_set,
            table_radius,
            table,
            cache,
        });
    }
    r.finish()?;
    Ok(DeviceSnapshot { rng_state, op_counter, streams, sets, cdfs, users })
}

fn put_points<B: BufMut>(buf: &mut B, points: &[Point]) {
    buf.put_u32(points.len() as u32);
    for p in points {
        buf.put_f64(p.x);
        buf.put_f64(p.y);
    }
}

fn get_points(r: &mut Reader<'_>) -> Result<Vec<Point>, RecoveryError> {
    let count = r.get_u32()? as usize;
    r.need(count.saturating_mul(16))?;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        points.push(Point::new(r.get_f64()?, r.get_f64()?));
    }
    Ok(points)
}

fn put_entries<B: BufMut>(buf: &mut B, entries: &[ProfileEntry]) {
    buf.put_u32(entries.len() as u32);
    for e in entries {
        buf.put_f64(e.location.x);
        buf.put_f64(e.location.y);
        buf.put_u64(e.frequency as u64);
    }
}

fn get_entries(r: &mut Reader<'_>) -> Result<Vec<ProfileEntry>, RecoveryError> {
    let count = r.get_u32()? as usize;
    r.need(count.saturating_mul(24))?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(ProfileEntry {
            location: Point::new(r.get_f64()?, r.get_f64()?),
            frequency: r.get_u64()? as usize,
        });
    }
    Ok(entries)
}

/// Counts candidate re-draws between two snapshots of the same device: a
/// top location present in both whose candidate set changed. The chaos
/// harness asserts this is **zero** across every crash-restore cycle —
/// any non-zero count is a silent privacy-budget double-spend.
///
/// Top locations appearing only in `after` are fresh first releases (a
/// normal window close), not re-draws.
///
/// # Errors
///
/// Propagates [`RecoveryError::BadPoolRef`] if either snapshot cites a
/// missing pool entry.
pub fn candidate_redraws(
    before: &DeviceSnapshot,
    after: &DeviceSnapshot,
) -> Result<usize, RecoveryError> {
    let mut redraws = 0;
    for record in &before.users {
        let Some(newer) = after.record(record.user) else {
            continue;
        };
        for &(top, old_idx) in &record.table {
            let old_candidates = before.set(old_idx, record.user.raw())?;
            if let Some(&(_, new_idx)) = newer.table.iter().find(|(t, _)| *t == top) {
                let new_candidates = after.set(new_idx, newer.user.raw())?;
                if new_candidates != old_candidates {
                    redraws += 1;
                }
            }
        }
    }
    Ok(redraws)
}

/// Error restoring or validating a [`DeviceSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// The log ends before its declared content.
    Truncated,
    /// The log does not start with the snapshot magic.
    BadMagic(u32),
    /// The log was written by an unknown format version.
    UnsupportedVersion(u16),
    /// The log carries an unknown stream-mode discriminant.
    BadStreamMode(u8),
    /// The FNV-1a checksum does not match the body — bit rot or
    /// truncation in persisted state.
    ChecksumMismatch {
        /// Checksum stored in the log.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The log continues past its declared content.
    TrailingBytes(usize),
    /// An embedded obfuscation-table image failed to decode.
    Table(TableDecodeError),
    /// A user record references a pooled candidate set or posterior
    /// table that is not present in the snapshot.
    BadPoolRef {
        /// The raw id of the affected user.
        user: u32,
    },
    /// A checkpointed posterior table violates the cumulative-weight
    /// invariants.
    InvalidPosterior {
        /// The raw id of the affected user.
        user: u32,
    },
    /// Adopting the snapshot would forget candidates the live device has
    /// already released: the affected user's next window close would
    /// silently re-draw them, double-spending the privacy budget.
    BudgetViolation {
        /// The raw id of the affected user.
        user: u32,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Truncated => write!(f, "truncated snapshot log"),
            RecoveryError::BadMagic(m) => write!(f, "bad snapshot magic {m:#010x}"),
            RecoveryError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            RecoveryError::BadStreamMode(m) => {
                write!(f, "unknown snapshot stream mode {m}")
            }
            RecoveryError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            RecoveryError::TrailingBytes(n) => {
                write!(f, "snapshot log has {n} trailing bytes")
            }
            RecoveryError::Table(e) => write!(f, "snapshot obfuscation table: {e}"),
            RecoveryError::BadPoolRef { user } => {
                write!(f, "user {user} references a missing snapshot pool entry")
            }
            RecoveryError::InvalidPosterior { user } => {
                write!(f, "invalid checkpointed posterior table for user {user}")
            }
            RecoveryError::BudgetViolation { user } => write!(
                f,
                "restoring would forget released candidates of user {user}; \
                 the next window close would re-draw them (privacy budget double-spend)"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Table(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> DeviceSnapshot {
        let set: Arc<[Point]> = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)].into();
        DeviceSnapshot {
            rng_state: [1, 2, 3, 4],
            op_counter: 99,
            streams: StreamMode::Device,
            sets: vec![set],
            cdfs: vec![vec![0.5, 1.0]],
            users: vec![UserRecord {
                user: UserId::new(7),
                windows_closed: 2,
                rng_words: [0; 4],
                buffer: vec![Point::new(5.0, 6.0)],
                profile: vec![ProfileEntry { location: Point::new(10.0, 20.0), frequency: 30 }],
                top_set: vec![ProfileEntry { location: Point::new(10.0, 20.0), frequency: 30 }],
                table_radius: 200.0,
                table: vec![(Point::new(10.0, 20.0), 0)],
                cache: vec![(Point::new(10.0, 20.0), 0)],
            }],
        }
    }

    /// The committed log maintained per-batch must materialize an image
    /// that restores to exactly the state a full `checkpoint()` encode
    /// restores to — at every commit point, with users touched in an
    /// order different from id order, with re-captures, and across a
    /// simulated rollback-rebuild.
    #[test]
    fn incremental_committed_log_matches_the_full_encoder() {
        let config = SystemConfig::builder().build().unwrap();
        let mut edge = crate::EdgeDevice::with_per_user_streams(config, 9);
        let mut log = CommittedLog::rebuild(&edge);
        let users: Vec<UserId> = [3u32, 0, 5, 1, 4, 2].iter().map(|&u| UserId::new(u)).collect();
        for round in 0..3 {
            for &user in &users {
                let home = Point::new(f64::from(user.raw()) * 3_000.0, 500.0);
                // One "batch" per user: check-ins, a window close, and —
                // from the second round — a served request, so the
                // posterior cache and per-user stream positions move too.
                for _ in 0..20 {
                    edge.report_checkin(user, home);
                }
                if round > 0 {
                    let _ = edge.reported_location(user, home);
                }
                edge.finalize_window(user);
                log.set_rng(edge.checkpoint_header().0);
                log.capture_user(user, edge.user_state(user).unwrap());
            }
            let image = log.materialize();
            assert_eq!(image.len(), log.encoded_len(), "tracked length must be exact");
            let via_log = crate::EdgeDevice::restore_from_checkpoint(config, &image).unwrap();
            let via_full =
                crate::EdgeDevice::restore_from_checkpoint(config, &edge.checkpoint()).unwrap();
            assert_eq!(via_log.state_digest(), via_full.state_digest(), "round {round}");
            if round == 1 {
                // A supervisor rollback replaces the device wholesale and
                // rebuilds the log against the fresh allocation graph.
                edge = via_log;
                log = CommittedLog::rebuild(&edge);
            }
        }
        assert_eq!(
            DeviceSnapshot::decode(&log.materialize()).unwrap().user_count(),
            users.len()
        );
    }

    /// Hand-writes the snapshot in the original v1 layout (embedded
    /// table image + private CDFs per user) — the compatibility fixture.
    fn encode_v1(snap: &DeviceSnapshot) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION_V1);
        for word in snap.rng_state {
            buf.put_u64(word);
        }
        buf.put_u64(snap.op_counter);
        buf.put_u32(snap.users.len() as u32);
        for record in &snap.users {
            buf.put_u32(record.user.raw());
            buf.put_u64(record.windows_closed);
            put_points(&mut buf, &record.buffer);
            put_entries(&mut buf, &record.profile);
            put_entries(&mut buf, &record.top_set);
            let mut table = ObfuscationTable::new(record.table_radius);
            for &(top, idx) in &record.table {
                table.insert_shared(top, Arc::clone(&snap.sets[idx as usize]));
            }
            let image = table.encode();
            buf.put_u32(image.len() as u32);
            buf.put_slice(&image);
            buf.put_u32(record.cache.len() as u32);
            for &(top, idx) in &record.cache {
                buf.put_f64(top.x);
                buf.put_f64(top.y);
                let cdf = &snap.cdfs[idx as usize];
                buf.put_u32(cdf.len() as u32);
                for &w in cdf {
                    buf.put_f64(w);
                }
            }
        }
        let checksum = fnv1a(&buf);
        buf.put_u64(checksum);
        buf.to_vec()
    }

    /// Corrupt a field, then re-stamp a valid checksum so the defect
    /// reaches the structural check.
    fn restamp(mut body: Vec<u8>) -> Vec<u8> {
        let split = body.len() - 8;
        let sum = fnv1a(&body[..split]);
        body[split..].copy_from_slice(&sum.to_be_bytes());
        body
    }

    #[test]
    fn log_round_trips() {
        let snap = snapshot();
        let log = snap.encode();
        let back = DeviceSnapshot::decode(&log).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.user_count(), 1);
        assert_eq!(back.users().collect::<Vec<_>>(), vec![(UserId::new(7), 2)]);
        assert_eq!(back.distinct_candidate_sets(), 1);
    }

    #[test]
    fn per_user_stream_log_round_trips() {
        let mut snap = snapshot();
        snap.streams = StreamMode::PerUser { master: 0xfeed };
        snap.users[0].rng_words = [9, 8, 7, 6];
        let back = DeviceSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.streams, StreamMode::PerUser { master: 0xfeed });
        assert_eq!(back.users[0].rng_words, [9, 8, 7, 6]);
    }

    #[test]
    fn v1_log_round_trips_through_the_version_dispatch() {
        // A snapshot whose pools carry no cross-user sharing and whose
        // stream mode is the classic device-wide generator decodes from
        // its v1 image to the *identical* pooled representation.
        let snap = snapshot();
        let log = encode_v1(&snap);
        let back = DeviceSnapshot::decode(&log).unwrap();
        assert_eq!(back, snap);
        // And the re-encoded v2 image round-trips again.
        assert_eq!(DeviceSnapshot::decode(&back.encode()).unwrap(), snap);
    }

    #[test]
    fn shared_sets_are_pooled_once() {
        // Two users sharing one candidate set and one posterior table:
        // the pools stay at length 1 and the encoded log carries the
        // payload once.
        let top = Point::new(10.0, 20.0);
        let base = snapshot();
        let mut two = base.clone();
        let mut second = two.users[0].clone();
        second.user = UserId::new(8);
        two.users.push(second);
        assert_eq!(two.distinct_candidate_sets(), 1);
        let solo_extra = {
            let mut solo = base.clone();
            solo.sets.push(vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)].into());
            solo.cdfs.push(vec![0.5, 1.0]);
            let mut second = solo.users[0].clone();
            second.user = UserId::new(8);
            second.table = vec![(top, 1)];
            second.cache = vec![(top, 1)];
            solo.users.push(second);
            solo.encode().len()
        };
        // The shared encoding saves exactly the duplicated payload.
        assert!(two.encode().len() < solo_extra, "pooling must shrink the log");
        let back = DeviceSnapshot::decode(&two.encode()).unwrap();
        assert_eq!(back, two);
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        let log = snapshot().encode();
        for byte in 0..log.len() {
            for bit in 0..8 {
                let mut bad = log.to_vec();
                bad[byte] ^= 1 << bit;
                let err = DeviceSnapshot::decode(&bad)
                    .expect_err("a flipped bit must not decode cleanly");
                // Flips in the trailing checksum itself also surface as a
                // mismatch — the body hash no longer agrees.
                assert!(
                    matches!(err, RecoveryError::ChecksumMismatch { .. }),
                    "byte {byte} bit {bit}: {err}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_caught() {
        let log = snapshot().encode();
        for len in 0..log.len() {
            assert!(
                DeviceSnapshot::decode(&log[..len]).is_err(),
                "prefix of {len} bytes decoded cleanly"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_caught() {
        let log = snapshot().encode().to_vec();
        let mut bad = log.clone();
        bad[0] = 0x00;
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::BadMagic(_))
        ));
        let mut bad = log.clone();
        bad[5] = 0xEE;
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::UnsupportedVersion(_))
        ));
        let mut bad = log;
        bad.splice(bad.len() - 8..bad.len() - 8, [0u8]);
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::TrailingBytes(_) | RecoveryError::Truncated)
        ));
    }

    #[test]
    fn corrupt_frames_are_structural_errors() {
        // Byte offset of the first set frame's length prefix: header is
        // magic(4) + version(2) + mode(1) + master(8) + rng(32) + op(8)
        // + set_count(4).
        let frame_len_at = 4 + 2 + 1 + 8 + 32 + 8 + 4;
        let log = snapshot().encode().to_vec();

        // Frame length pointing past the end of the buffer.
        let mut bad = log.clone();
        bad[frame_len_at..frame_len_at + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::Truncated)
        ));

        // Frame declared longer than its own content: the sub-reader
        // keeps trailing bytes.
        let mut bad = log.clone();
        let declared = u32::from_be_bytes(bad[frame_len_at..frame_len_at + 4].try_into().unwrap());
        bad[frame_len_at..frame_len_at + 4].copy_from_slice(&(declared + 1).to_be_bytes());
        assert!(DeviceSnapshot::decode(&restamp(bad)).is_err());

        // Unknown stream-mode discriminant.
        let mut bad = log.clone();
        bad[6] = 9;
        assert!(matches!(
            DeviceSnapshot::decode(&restamp(bad)),
            Err(RecoveryError::BadStreamMode(9))
        ));

        // A pool reference past the pool bounds.
        let mut snap = snapshot();
        snap.users[0].table[0].1 = 5;
        let bad = snap.encode().to_vec();
        assert!(matches!(
            DeviceSnapshot::decode(&bad),
            Err(RecoveryError::BadPoolRef { user: 7 })
        ));
    }

    #[test]
    fn invalid_pooled_posterior_is_caught_at_pool_build() {
        let mut snap = snapshot();
        snap.cdfs[0] = vec![1.0, 0.5]; // decreasing — not a CDF
        let err = snap.pools().expect_err("invalid CDF must not build a table");
        assert_eq!(err, RecoveryError::InvalidPosterior { user: 7 });
    }

    #[test]
    fn redraw_counting_flags_changed_candidates() {
        let before = snapshot();
        // Identical snapshots: no re-draws.
        assert_eq!(candidate_redraws(&before, &before).unwrap(), 0);

        // Same top, different candidates: one re-draw.
        let mut redrawn = before.clone();
        redrawn.sets[0] = vec![Point::new(9.0, 9.0), Point::new(8.0, 8.0)].into();
        assert_eq!(candidate_redraws(&before, &redrawn).unwrap(), 1);

        // A fresh top released after the first snapshot is not a re-draw.
        let mut grown = before.clone();
        grown.sets.push(vec![Point::new(9_001.0, 1.0)].into());
        grown.users[0].table.push((Point::new(9_000.0, 0.0), 1));
        assert_eq!(candidate_redraws(&before, &grown).unwrap(), 0);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let table_err = RecoveryError::Table(TableDecodeError::Truncated);
        assert!(table_err.source().is_some());
        for e in [
            RecoveryError::Truncated,
            RecoveryError::BadMagic(0xDEAD_BEEF),
            RecoveryError::UnsupportedVersion(9),
            RecoveryError::BadStreamMode(3),
            RecoveryError::ChecksumMismatch { stored: 1, computed: 2 },
            RecoveryError::TrailingBytes(3),
            table_err.clone(),
            RecoveryError::BadPoolRef { user: 6 },
            RecoveryError::InvalidPosterior { user: 4 },
            RecoveryError::BudgetViolation { user: 5 },
        ] {
            assert!(!e.to_string().is_empty());
            if !matches!(e, RecoveryError::Table(_)) {
                assert!(e.source().is_none());
            }
        }
    }
}
