use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::Bytes;
use privlocad_adnet::{AdNetwork, AuctionOutcome, BidRequest, Campaign, DeviceId};
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mechanisms::{PlanarLaplace, PosteriorTable};
use privlocad_mobility::UserId;
use rand::rngs::StdRng;

use privlocad_telemetry::{top_key, Determinism, SpendEvent, SpendKind, Telemetry};

use crate::protocol::{ClientRequest, EdgeResponse};
use crate::recovery::{restore_user_owned, DeviceSnapshot, RecoveryError, SnapshotBuilder};
use crate::shard::StateFootprint;
use crate::user::{RequestStats, UserMap, UserState};
use crate::{filter_ads_by, CandidateArena, PreparedSet, StreamMode, SystemConfig};

/// Domain separator for per-user stream derivation: streams are drawn
/// from `derive_seed(derive_seed(master, DOMAIN), user)`, so they can
/// never collide with shard seeds or workload streams derived from the
/// same master.
const USER_STREAM_DOMAIN: u64 = 0x7573_6572_5f73_7472; // "user_str"

/// The private generator for `user` under `streams`, if the mode
/// assigns one.
fn user_stream(streams: StreamMode, user: UserId) -> Option<StdRng> {
    match streams {
        StreamMode::Device => None,
        StreamMode::PerUser { master } => Some(seeded(derive_seed(
            derive_seed(master, USER_STREAM_DOMAIN),
            u64::from(user.raw()),
        ))),
    }
}

/// What the edge hands back to the mobile device for one ad request.
#[derive(Debug, Clone, PartialEq)]
pub struct AdDelivery {
    /// The obfuscated location that was reported to the ad network.
    pub reported: Point,
    /// The auction outcome at the ad network, if any campaign matched the
    /// reported location.
    pub auction: Option<AuctionOutcome>,
    /// Ads that survived the edge's AOI filter — what the user actually
    /// sees.
    pub delivered: Vec<Campaign>,
}

/// Serving observations accumulated by an [`EdgeDevice`] since its last
/// [`EdgeDevice::drain_telemetry`] call.
///
/// Every field is a pure function of the construction seed and the served
/// workload, so after a full drain the exported counters are bit-for-bit
/// reproducible across runs and shard layouts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// True-location check-ins recorded into profile windows.
    pub checkins: u64,
    /// Ad-request location reports produced.
    pub location_requests: u64,
    /// Profile windows closed (full finalizations and profile-only closes).
    pub windows_closed: u64,
    /// Permanent candidate sets generated — each one a `(r, ε, δ, n)`
    /// budget spend mirrored as a [`SpendKind::CandidateSet`] ledger event.
    pub fresh_candidate_sets: u64,
    /// Posterior-table lookups answered from the selection cache.
    pub posterior_cache_hits: u64,
    /// Posterior-table lookups that rebuilt the table.
    pub posterior_cache_misses: u64,
    /// Reports drawn by posterior selection over permanent candidates.
    pub posterior_draws: u64,
    /// Reports drawn by the uniform ablation selector.
    pub uniform_draws: u64,
    /// Reports drawn by the one-time planar-Laplace nomadic fallback.
    pub nomadic_draws: u64,
    /// User states rebuilt from a checkpoint.
    pub restores: u64,
}

impl DeviceStats {
    fn absorb(&mut self, request: RequestStats) {
        self.posterior_cache_hits += request.cache_hits;
        self.posterior_cache_misses += request.cache_misses;
        self.posterior_draws += request.posterior_draws;
        self.uniform_draws += request.uniform_draws;
        self.nomadic_draws += request.nomadic_draws;
    }
}

/// Records the budget spend of every candidate set the user's table gained
/// since it held `sets_before` entries. The table is append-only, so the
/// fresh sets are exactly the tail past that index.
fn record_fresh_sets(
    config: &SystemConfig,
    user: UserId,
    state: &UserState,
    sets_before: usize,
    stats: &mut DeviceStats,
    pending: &mut Vec<SpendEvent>,
) {
    let params = config.geo_ind();
    for (top, _) in state.obfuscation.table().entries().skip(sets_before) {
        stats.fresh_candidate_sets += 1;
        pending.push(SpendEvent {
            user: u64::from(user.raw()),
            kind: SpendKind::CandidateSet {
                top: top_key(top.x, top.y),
                epsilon: params.epsilon(),
                delta: params.delta(),
                n: params.n() as u32,
            },
        });
    }
}

/// A trusted edge device serving many users (Fig. 5).
///
/// Owns every user's location-management state, obfuscation table, and
/// posterior-selection cache, and performs output selection per ad
/// request. All operations are deterministic given the construction seed.
///
/// For a thread-shared variant used by the scalability evaluation see
/// [`crate::system::LbaSimulation`] and the `concurrent` integration
/// tests.
#[derive(Debug)]
pub struct EdgeDevice {
    config: SystemConfig,
    nomadic: PlanarLaplace,
    users: UserMap<UserState>,
    rng: StdRng,
    /// Serving observations since the last [`EdgeDevice::drain_telemetry`].
    /// Deliberately *not* part of [`DeviceSnapshot`]: telemetry describes a
    /// run, not the recoverable device state.
    stats: DeviceStats,
    /// Privacy-budget events not yet delivered to a ledger. The serving
    /// loop drains this only *after* a checkpoint commit, which makes
    /// delivery exactly-once under crash recovery: a crash wipes the
    /// undelivered buffer together with the device state it described, and
    /// the post-restore retry regenerates both identically.
    pending_spends: Vec<SpendEvent>,
    /// Reusable batched candidate-generation buffers, shared by every
    /// window close on this device. Pure scratch: never part of a
    /// snapshot, never observable in outputs.
    arena: CandidateArena,
    /// How serving operations draw randomness — one shared generator
    /// ([`StreamMode::Device`], the classic mode) or a private stream
    /// per user ([`StreamMode::PerUser`], the sharded-fleet mode whose
    /// outputs are invariant to the user→shard partition).
    streams: StreamMode,
}

impl EdgeDevice {
    /// Creates an edge device.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        EdgeDevice {
            nomadic: PlanarLaplace::new(config.nomadic()),
            config,
            users: UserMap::new(),
            rng: seeded(seed),
            stats: DeviceStats::default(),
            pending_spends: Vec::new(),
            arena: CandidateArena::new(),
            streams: StreamMode::Device,
        }
    }

    /// Creates an edge device whose users draw from private RNG streams
    /// derived from `master` — every user's outputs depend only on
    /// `(master, user id, that user's own operation sequence)`, so a
    /// fleet partitioned over any number of such shards produces
    /// bit-for-bit the same responses per user ([`crate::ShardRouter`]).
    pub fn with_per_user_streams(config: SystemConfig, master: u64) -> Self {
        let mut device = EdgeDevice::new(config, master);
        device.streams = StreamMode::PerUser { master };
        device
    }

    /// The device configuration.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Number of users with state on this device.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    fn state_mut(&mut self, user: UserId) -> &mut UserState {
        let config = &self.config;
        let streams = self.streams;
        self.users
            .entry_or_insert_with(user, || UserState::with_stream(config, user_stream(streams, user)))
    }

    /// Records a true-location check-in into the user's current profile
    /// window (the passive collection of Section V-B).
    pub fn report_checkin(&mut self, user: UserId, true_location: Point) {
        self.stats.checkins += 1;
        self.state_mut(user).manager.record(true_location);
    }

    /// Closes the user's profile window: recomputes the η-frequent
    /// location set, generates permanent candidates for any new top
    /// location, and rebuilds the posterior-selection cache for the new
    /// top set. Returns the number of freshly obfuscated top locations.
    pub fn finalize_window(&mut self, user: UserId) -> usize {
        let config = self.config;
        let streams = self.streams;
        let state = self
            .users
            .entry_or_insert_with(user, || UserState::with_stream(&config, user_stream(streams, user)));
        let sets_before = state.obfuscation.table().len();
        let (scratch, lanes) = self.arena.buffers();
        // Candidate generation draws from the user's private stream in
        // per-user mode, so the sets a user receives never depend on how
        // other users' operations interleave on this shard.
        let mut taken = state.stream.take();
        let fresh = match taken.as_mut() {
            Some(private) => state.finalize_window_with(&config, private, scratch, lanes),
            None => state.finalize_window_with(&config, &mut self.rng, scratch, lanes),
        };
        if taken.is_some() {
            state.stream = taken;
        }
        self.stats.windows_closed += 1;
        self.pending_spends
            .push(SpendEvent { user: u64::from(user.raw()), kind: SpendKind::WindowClose });
        record_fresh_sets(
            &config,
            user,
            state,
            sets_before,
            &mut self.stats,
            &mut self.pending_spends,
        );
        fresh
    }

    /// Closes the user's window and returns the *local* profile without
    /// obfuscating anything — the first half of the multi-edge flow, where
    /// a fleet authority merges partial profiles before a single
    /// obfuscation pass. Returns `None` for unknown users.
    ///
    /// Invalidates the user's posterior-selection cache: the merged top
    /// set installed afterwards may differ from the local one.
    pub fn close_window_profile(
        &mut self,
        user: UserId,
    ) -> Option<privlocad_attack::LocationProfile> {
        let state = self.users.get_mut(user)?;
        state.manager.finalize_window();
        state.selection.invalidate();
        self.stats.windows_closed += 1;
        self.pending_spends
            .push(SpendEvent { user: u64::from(user.raw()), kind: SpendKind::WindowClose });
        Some(state.manager.profile().clone())
    }

    /// Installs a merged top set plus its (fleet-generated) permanent
    /// candidate sets — the second half of the multi-edge flow. Candidate
    /// sets for already-covered locations are ignored (permanence).
    ///
    /// The staged sets arrive as shared [`PreparedSet`] handles (see
    /// [`CandidateArena::prepare`]): installing is an `Arc` bump, not a
    /// `Vec` clone, and the pre-warmed posterior tables are shared too —
    /// the first ad request after installation serves from cache without
    /// this device ever rebuilding a table the authority already built.
    pub fn install_protection(
        &mut self,
        user: UserId,
        tops: Vec<privlocad_attack::ProfileEntry>,
        sets: &[PreparedSet],
    ) {
        let config = self.config;
        let streams = self.streams;
        let state = self
            .users
            .entry_or_insert_with(user, || UserState::with_stream(&config, user_stream(streams, user)));
        state.manager.set_top_set(tops);
        state.selection.invalidate();
        let sets_before = state.obfuscation.table().len();
        for set in sets {
            state.obfuscation.install_shared(set.top(), Arc::clone(set.candidates()));
        }
        state.warm_selection_prepared(&config, sets);
        // The fleet spent the budget when it generated these sets; the
        // install point is where this device's ledger learns about it.
        record_fresh_sets(
            &config,
            user,
            state,
            sets_before,
            &mut self.stats,
            &mut self.pending_spends,
        );
    }

    /// Closes the window of every known user; returns the total number of
    /// freshly obfuscated top locations (the Table II workload).
    pub fn finalize_all(&mut self) -> usize {
        let users: Vec<UserId> = self.users.keys().collect();
        users.into_iter().map(|u| self.finalize_window(u)).sum()
    }

    /// Drops every user's cached posterior-weight table.
    ///
    /// The cache is pure post-processing acceleration, so flushing never
    /// changes outputs — the tables are rebuilt from the permanent
    /// candidates on the next request. Exists so tests (and paranoid
    /// operators) can force the from-scratch path.
    pub fn flush_selection_cache(&mut self) {
        for state in self.users.values_mut() {
            state.selection.invalidate();
        }
    }

    /// Assesses the longitudinal exposure of a user's last profiled window
    /// (the "assess the risk of location privacy breaches" role of the
    /// edge). Returns `None` for unknown users.
    pub fn risk_report(&self, user: UserId) -> Option<crate::RiskReport> {
        let state = self.users.get(user)?;
        Some(crate::RiskAssessor::default().assess(state.manager.profile()))
    }

    /// The permanent candidates covering `location`, if the user is at a
    /// protected top location. Borrows straight from the obfuscation
    /// table — clone with `.to_vec()` if you need to hold the set across
    /// later `&mut self` calls.
    pub fn candidates(&self, user: UserId, location: Point) -> Option<&[Point]> {
        let state = self.users.get(user)?;
        let top = state.manager.matching_top(location, self.config.top_match_radius_m())?;
        state.obfuscation.table().get(top)
    }

    /// Produces the location to report for an ad request at
    /// `current_true`: a posterior-selected permanent candidate when the
    /// user is at a top location (Algorithm 4), or a fresh one-time
    /// planar-Laplace obfuscation for nomadic positions.
    pub fn reported_location(&mut self, user: UserId, current_true: Point) -> Point {
        // Split borrows: no per-request copy of the config.
        let Self { users, config, nomadic, rng, stats, pending_spends, streams, .. } = self;
        let streams = *streams;
        let state =
            users.entry_or_insert_with(user, || UserState::with_stream(config, user_stream(streams, user)));
        let sets_before = state.obfuscation.table().len();
        let mut request = RequestStats::default();
        let mut taken = state.stream.take();
        let point = match taken.as_mut() {
            Some(private) => {
                state.reported_location(config, nomadic, current_true, private, &mut request)
            }
            None => state.reported_location(config, nomadic, current_true, rng, &mut request),
        };
        if taken.is_some() {
            state.stream = taken;
        }
        stats.location_requests += 1;
        stats.absorb(request);
        // A first request at a freshly merged top can draw its permanent
        // candidate set lazily — ledger that spend too.
        record_fresh_sets(config, user, state, sets_before, stats, pending_spends);
        point
    }

    /// Serves a batch of protocol requests in order, pushing exactly one
    /// response per request onto `responses` (appended; the caller owns
    /// clearing). One `serve_batch` call is one serving-loop wakeup — see
    /// [`crate::EdgeServer`], which drains its queue into this.
    ///
    /// `Shutdown` is a transport-level concern; at the device level it is
    /// a no-op acknowledged with [`EdgeResponse::Ack`].
    pub fn serve_batch(
        &mut self,
        requests: &[ClientRequest],
        responses: &mut Vec<EdgeResponse>,
    ) {
        responses.reserve(requests.len());
        for request in requests {
            let response = match *request {
                ClientRequest::CheckIn { user, location, .. } => {
                    self.report_checkin(user, location);
                    EdgeResponse::Ack
                }
                ClientRequest::RequestLocation { user, location } => {
                    EdgeResponse::ReportedLocation {
                        location: self.reported_location(user, location),
                    }
                }
                ClientRequest::FinalizeWindow { user } => EdgeResponse::WindowClosed {
                    fresh_obfuscations: self.finalize_window(user) as u32,
                },
                ClientRequest::Shutdown => EdgeResponse::Ack,
            };
            responses.push(response);
        }
    }

    /// Captures a full recovery checkpoint: every user's window state,
    /// permanent candidate sets, and posterior tables, plus the raw RNG
    /// state words — enough to resume serving bit-for-bit where the device
    /// stood, without re-drawing a single released candidate (see
    /// [`crate::recovery`] for why re-drawing is a privacy violation).
    pub fn snapshot(&self) -> DeviceSnapshot {
        let mut builder = SnapshotBuilder::new();
        for (user, state) in self.user_states() {
            builder.capture(user, state);
        }
        builder.finish(self.rng.state(), 0, self.streams)
    }

    /// One user's live serving state, for the incremental committed log
    /// (see [`crate::recovery::CommittedLog`]).
    pub(crate) fn user_state(&self, user: UserId) -> Option<&UserState> {
        self.users.get(user)
    }

    /// Every user's live serving state, ascending by id — the capture
    /// order of [`EdgeDevice::snapshot`].
    pub(crate) fn user_states(&self) -> impl Iterator<Item = (UserId, &UserState)> {
        self.users.keys().zip(self.users.values())
    }

    /// The device-wide generator words and stream mode — the snapshot
    /// header fields that are not per-user state.
    pub(crate) fn checkpoint_header(&self) -> ([u64; 4], StreamMode) {
        (self.rng.state(), self.streams)
    }

    /// Encodes the current [`EdgeDevice::snapshot`] into one contiguous
    /// checkpoint buffer (the length-prefixed frame format of
    /// [`crate::recovery`]) — the unit the serving loop commits to its
    /// write-ahead log and [`EdgeDevice::restore_from_checkpoint`] decodes
    /// without per-record allocation.
    pub fn checkpoint(&self) -> Bytes {
        // lint:allow(location-leak): the checkpoint must carry the true window state to restore bit-identically; it goes only into the trusted edge store and the restore paths are the only consumers (DESIGN.md §12)
        self.snapshot().encode()
    }

    /// A 64-bit FNV-1a digest of the committed checkpoint bytes — a
    /// compact equality witness over the device's complete state (window
    /// buffers, candidate sets, posterior tables, RNG positions). Two
    /// devices with equal digests would resume identically; the chaos
    /// harness compares faulty against fault-free runs with it.
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in self.checkpoint().iter() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    /// Rebuilds a device from a checkpoint. The restored device continues
    /// the exact RNG stream of the captured one, so any draw that was in
    /// flight when the original crashed is re-executed identically — a
    /// mid-window restart never re-draws candidates.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if the snapshot carries a corrupt table
    /// image or an invalid posterior table.
    pub fn restore(
        config: SystemConfig,
        snapshot: &DeviceSnapshot,
    ) -> Result<EdgeDevice, RecoveryError> {
        Self::restore_from(config, snapshot.clone())
    }

    /// [`EdgeDevice::restore`], consuming the snapshot: every user record's
    /// buffers, profile, top set, and posterior CDFs are moved into the
    /// rebuilt device instead of cloned. Prefer this on paths that own the
    /// decoded snapshot (checkpoint restores decode a fresh one anyway).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if the snapshot carries a corrupt table
    /// image or an invalid posterior table.
    pub fn restore_from(
        config: SystemConfig,
        snapshot: DeviceSnapshot,
    ) -> Result<EdgeDevice, RecoveryError> {
        let pools = snapshot.pools()?;
        // lint:allow(seed-flow): placeholder seed — the stream is replaced by the snapshot's saved RNG state on the next line, so no draw ever comes from it
        let mut device = EdgeDevice::new(config, 0);
        device.rng = StdRng::from_state(snapshot.rng_state);
        device.streams = snapshot.streams;
        let per_user = matches!(snapshot.streams, StreamMode::PerUser { .. });
        for record in snapshot.users {
            let user = record.user;
            let words = record.rng_words;
            let mut state = restore_user_owned(&config, record, &pools)?;
            if per_user {
                // Resume the user's private stream at its exact saved
                // position — a restored shard never re-draws anything a
                // user already received.
                state.stream = Some(StdRng::from_state(words));
            }
            *device.users.entry_or_insert_with(user, || UserState::new(&config)) = state;
            device.stats.restores += 1;
            device
                .pending_spends
                .push(SpendEvent { user: u64::from(user.raw()), kind: SpendKind::Restore });
        }
        Ok(device)
    }

    /// Decodes an encoded checkpoint and rebuilds the device from it —
    /// the zero-copy recovery path: pooled candidate sets and posterior
    /// tables are materialized once each and shared by every user record
    /// that cites them.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] on a corrupt or truncated checkpoint, or
    /// any restore error from the decoded snapshot.
    pub fn restore_from_checkpoint(
        config: SystemConfig,
        log: &[u8],
    ) -> Result<EdgeDevice, RecoveryError> {
        Self::restore_from(config, DeviceSnapshot::decode(log)?)
    }

    /// Serving observations accumulated since the last
    /// [`EdgeDevice::drain_telemetry`] call (or construction).
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Privacy-budget events awaiting delivery to a ledger.
    pub fn pending_spends(&self) -> usize {
        self.pending_spends.len()
    }

    /// Flushes the accumulated [`DeviceStats`] into `telemetry`'s metrics
    /// registry and the pending budget events into its ledger, resetting
    /// both device-local buffers.
    ///
    /// The supervised serving loop ([`crate::EdgeServer`]) calls this right
    /// *after* each checkpoint commit — see the `pending_spends` field for
    /// why that ordering gives ledger events exactly-once semantics across
    /// crashes. Every metric is registered on every drain, so the exported
    /// schema is stable even when a counter never fires.
    pub fn drain_telemetry(&mut self, telemetry: &Telemetry) {
        let stats = std::mem::take(&mut self.stats);
        let registry = telemetry.registry();
        let class = Determinism::Deterministic;
        registry.counter("edge.checkins", class).add(stats.checkins);
        registry.counter("edge.location_requests", class).add(stats.location_requests);
        registry.counter("edge.windows_closed", class).add(stats.windows_closed);
        registry.counter("edge.fresh_candidate_sets", class).add(stats.fresh_candidate_sets);
        registry.counter("edge.posterior_cache_hits", class).add(stats.posterior_cache_hits);
        registry.counter("edge.posterior_cache_misses", class).add(stats.posterior_cache_misses);
        registry.counter("edge.posterior_draws", class).add(stats.posterior_draws);
        registry.counter("edge.uniform_draws", class).add(stats.uniform_draws);
        registry.counter("edge.nomadic_draws", class).add(stats.nomadic_draws);
        // Restore counts depend on where kills land relative to wakeup
        // boundaries (how many users existed at each restore), so they are
        // scheduling-dependent, not workload-deterministic.
        registry
            .counter("recovery.restores", Determinism::Scheduling)
            .add(stats.restores);
        let ledger = telemetry.ledger();
        for event in self.pending_spends.drain(..) {
            ledger.record(event);
        }
    }

    /// Replaces this device's state with a checkpoint, refusing any
    /// snapshot that would *forget* candidates this device has already
    /// released ([`RecoveryError::BudgetViolation`]): a forgotten top
    /// location would be silently re-obfuscated at its next window close,
    /// double-spending the one-and-only `(r, ε, δ, n)` budget.
    ///
    /// This is the conservative operator-facing path (e.g. rolling back to
    /// an older checkpoint by hand). The crash-recovery supervisor uses
    /// [`EdgeDevice::restore`] directly: it only ever restores the latest
    /// committed checkpoint, whose candidates are a superset of anything a
    /// client has observed.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::BudgetViolation`] naming the first user
    /// whose released candidates the snapshot lost, or any decode error
    /// from the snapshot itself. On error, `self` is unchanged.
    pub fn adopt_snapshot(&mut self, snapshot: &DeviceSnapshot) -> Result<(), RecoveryError> {
        for (user, state) in self.users.keys().zip(self.users.values()) {
            let live = state.obfuscation.table();
            if live.is_empty() {
                continue;
            }
            let Some(record) = snapshot.record(user) else {
                return Err(RecoveryError::BudgetViolation { user: user.raw() });
            };
            for (top, candidates) in live.entries() {
                let kept = record
                    .table
                    .iter()
                    .find(|(t, _)| *t == top)
                    .map(|&(_, idx)| snapshot.set(idx, user.raw()))
                    .transpose()?;
                if kept != Some(candidates) {
                    return Err(RecoveryError::BudgetViolation { user: user.raw() });
                }
            }
        }
        *self = EdgeDevice::restore(self.config, snapshot)?;
        Ok(())
    }

    /// Measures the resident state of this shard: bytes attributable to
    /// individual users versus bytes in shared pools (candidate sets and
    /// posterior tables stored once per *distinct* `Arc`, however many
    /// users cite them). The scale bench reports
    /// [`StateFootprint::bytes_per_user`] from this — see DESIGN.md §16
    /// for the budget it is held to.
    pub fn footprint(&self) -> StateFootprint {
        let mut fp = StateFootprint::default();
        self.accumulate_footprint(&mut fp, &mut BTreeSet::new(), &mut BTreeSet::new());
        fp
    }

    /// [`EdgeDevice::footprint`] with caller-owned dedup state, so a
    /// fleet can sum several devices while counting an `Arc` shared
    /// *across* devices once ([`crate::EdgeFleet::footprint`]).
    pub(crate) fn accumulate_footprint(
        &self,
        fp: &mut StateFootprint,
        seen_sets: &mut BTreeSet<usize>,
        seen_tables: &mut BTreeSet<usize>,
    ) {
        use std::mem::size_of;
        fp.users += self.users.len();
        for state in self.users.values() {
            let mut bytes = size_of::<UserId>() + size_of::<UserState>();
            bytes += std::mem::size_of_val(state.manager.buffered());
            bytes += (state.manager.profile().entries().len() + state.manager.top_set().len())
                * size_of::<privlocad_attack::ProfileEntry>();
            for (_, shared) in state.obfuscation.table().shared_entries() {
                fp.candidate_set_refs += 1;
                bytes += size_of::<(Point, Arc<[Point]>)>();
                if seen_sets.insert(shared.as_ptr() as usize) {
                    fp.distinct_candidate_sets += 1;
                    // Payload plus the strong/weak counts in the Arc header.
                    fp.shared_bytes +=
                        (shared.len() * size_of::<Point>() + 2 * size_of::<usize>()) as u64;
                }
            }
            for (_, shared) in state.selection.shared_entries() {
                bytes += size_of::<(Point, Arc<PosteriorTable>)>();
                if seen_tables.insert(Arc::as_ptr(shared) as usize) {
                    fp.distinct_posterior_tables += 1;
                    fp.shared_bytes += (std::mem::size_of_val(shared.cdf())
                        + size_of::<PosteriorTable>()
                        + 2 * size_of::<usize>()) as u64;
                }
            }
            fp.user_bytes += bytes as u64;
        }
    }

    /// Serves one end-to-end ad request: selects the reported location,
    /// forwards a bid request to the ad network (which logs it — the
    /// longitudinal attacker's feed), and filters the matching ads down to
    /// the user's true area of interest.
    pub fn request_ads(
        &mut self,
        user: UserId,
        current_true: Point,
        timestamp: i64,
        network: &mut AdNetwork,
    ) -> AdDelivery {
        let reported = self.reported_location(user, current_true);
        let request = BidRequest {
            device: DeviceId::new(user.raw() as u64),
            location: reported,
            timestamp,
        };
        let auction = network.serve(request);
        let delivered = filter_ads_by(
            network.matching(reported),
            current_true,
            self.config.targeting_radius_m(),
        )
        .into_iter()
        .cloned()
        .collect();
        AdDelivery { reported, auction, delivered }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_adnet::Targeting;
    use privlocad_mechanisms::{NFoldGaussian, PosteriorSelector};

    use crate::SelectionKind;

    fn edge() -> EdgeDevice {
        EdgeDevice::new(SystemConfig::builder().build().unwrap(), 99)
    }

    fn settle_home(edge: &mut EdgeDevice, user: UserId, home: Point) {
        for _ in 0..60 {
            edge.report_checkin(user, home);
        }
        edge.finalize_window(user);
    }

    #[test]
    fn top_location_requests_use_permanent_candidates() {
        let mut e = edge();
        let user = UserId::new(1);
        let home = Point::new(1_000.0, 1_000.0);
        settle_home(&mut e, user, home);
        let candidates = e.candidates(user, home).unwrap().to_vec();
        assert_eq!(candidates.len(), 10);
        for _ in 0..50 {
            let reported = e.reported_location(user, home);
            assert!(candidates.contains(&reported));
        }
    }

    #[test]
    fn nomadic_requests_use_fresh_laplace() {
        let mut e = edge();
        let user = UserId::new(2);
        settle_home(&mut e, user, Point::ORIGIN);
        let nowhere = Point::new(40_000.0, 40_000.0);
        let a = e.reported_location(user, nowhere);
        let b = e.reported_location(user, nowhere);
        assert_ne!(a, b, "nomadic reports must be independently obfuscated");
        // Laplace noise at l = ln4, r = 200 keeps reports within a few km.
        assert!(a.distance(nowhere) < 5_000.0);
    }

    #[test]
    fn unknown_user_is_nomadic_by_default() {
        let mut e = edge();
        let p = e.reported_location(UserId::new(77), Point::ORIGIN);
        assert!(p.is_finite());
        assert!(e.candidates(UserId::new(77), Point::ORIGIN).is_none());
    }

    #[test]
    fn finalize_all_covers_every_user() {
        let mut e = edge();
        for u in 0..5u32 {
            for _ in 0..30 {
                e.report_checkin(UserId::new(u), Point::new(u as f64 * 10_000.0, 0.0));
            }
        }
        let fresh = e.finalize_all();
        assert_eq!(fresh, 5);
        assert_eq!(e.user_count(), 5);
        // Re-finalizing with no new data generates nothing new.
        assert_eq!(e.finalize_all(), 0);
    }

    #[test]
    fn window_change_keeps_old_candidates_permanent() {
        let mut e = edge();
        let user = UserId::new(3);
        let home = Point::new(500.0, 500.0);
        settle_home(&mut e, user, home);
        let before = e.candidates(user, home).unwrap().to_vec();
        // Same home appears in the next window: candidates must not change.
        settle_home(&mut e, user, home);
        let after = e.candidates(user, home).unwrap().to_vec();
        assert_eq!(before, after);
    }

    #[test]
    fn reported_candidates_follow_posterior_distribution_bias() {
        // The candidate closest to the candidate-mean should be reported
        // most often under posterior selection.
        let mut e = edge();
        let user = UserId::new(4);
        let home = Point::new(0.0, 0.0);
        settle_home(&mut e, user, home);
        let candidates = e.candidates(user, home).unwrap().to_vec();
        let mech = NFoldGaussian::new(e.config().geo_ind());
        let probs = PosteriorSelector::new(mech.sigma()).probabilities(&candidates);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mut counts = vec![0usize; candidates.len()];
        for _ in 0..2_000 {
            let rep = e.reported_location(user, home);
            let idx = candidates.iter().position(|&c| c == rep).unwrap();
            counts[idx] += 1;
        }
        let observed_best = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        assert_eq!(observed_best, best, "counts {counts:?} probs {probs:?}");
    }

    #[test]
    fn end_to_end_request_filters_to_aoi() {
        let mut e = edge();
        let user = UserId::new(5);
        let home = Point::new(0.0, 0.0);
        settle_home(&mut e, user, home);
        // One campaign right at home, one far outside any plausible AOR.
        let mut network = AdNetwork::new(vec![
            Campaign::new(
                0u64,
                "local",
                Targeting::radius(home, 25_000.0).unwrap(),
                2.0,
            )
            .unwrap(),
            Campaign::new(
                1u64,
                "remote",
                Targeting::radius(Point::new(60_000.0, 60_000.0), 25_000.0).unwrap(),
                9.0,
            )
            .unwrap(),
        ]);
        let mut saw_local = false;
        for t in 0..20 {
            let delivery = e.request_ads(user, home, t, &mut network);
            // Everything delivered must be inside the true AOI.
            for ad in &delivery.delivered {
                let loc = ad.business_location().unwrap();
                assert!(loc.distance(home) <= e.config().targeting_radius_m());
                if ad.name() == "local" {
                    saw_local = true;
                }
            }
        }
        assert!(saw_local, "the relevant local ad should be delivered");
        // The bid log recorded only obfuscated candidates, never `home`.
        let device = DeviceId::new(5);
        let reports = network.log().locations_of(device);
        assert_eq!(reports.len(), 20);
        let candidates = e.candidates(user, home).unwrap();
        for r in &reports {
            assert!(candidates.contains(r), "leaked non-candidate location");
            assert!(r.distance(home) > 0.0);
        }
    }

    #[test]
    fn uniform_selection_ablation_reports_all_candidates() {
        let config = SystemConfig::builder()
            .selection(SelectionKind::Uniform)
            .build()
            .unwrap();
        let mut e = EdgeDevice::new(config, 1);
        let user = UserId::new(6);
        let home = Point::ORIGIN;
        settle_home(&mut e, user, home);
        let candidates = e.candidates(user, home).unwrap().to_vec();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let rep = e.reported_location(user, home);
            seen.insert(candidates.iter().position(|&c| c == rep).unwrap());
        }
        assert_eq!(seen.len(), candidates.len(), "uniform selection should hit all candidates");
    }

    #[test]
    fn risk_report_flags_the_routine_home() {
        let mut e = edge();
        let user = UserId::new(9);
        settle_home(&mut e, user, Point::new(100.0, 100.0));
        let report = e.risk_report(user).unwrap();
        assert!(report.needs_permanent_protection());
        assert_eq!(report.flagged().len(), 1);
        assert!(report.entropy < 0.1, "single-location window");
        assert!(e.risk_report(UserId::new(12345)).is_none());
    }

    #[test]
    fn determinism_given_seed() {
        let run = || {
            let mut e = EdgeDevice::new(SystemConfig::builder().build().unwrap(), 12);
            let user = UserId::new(0);
            settle_home(&mut e, user, Point::new(3.0, 4.0));
            (0..10).map(|_| e.reported_location(user, Point::new(3.0, 4.0))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn serve_batch_matches_singular_calls() {
        let user = UserId::new(8);
        let home = Point::new(250.0, -250.0);
        let requests: Vec<ClientRequest> = (0..40)
            .map(|t| ClientRequest::CheckIn { user, location: home, timestamp: t })
            .chain([ClientRequest::FinalizeWindow { user }])
            .chain((0..20).map(|_| ClientRequest::RequestLocation { user, location: home }))
            .chain([ClientRequest::Shutdown])
            .collect();

        // Batched device.
        let mut batched = edge();
        let mut responses = Vec::new();
        batched.serve_batch(&requests, &mut responses);
        assert_eq!(responses.len(), requests.len());

        // Same requests served one call at a time.
        let mut singular = edge();
        let mut expected = Vec::new();
        for r in &requests {
            singular.serve_batch(std::slice::from_ref(r), &mut expected);
        }
        assert_eq!(responses, expected);

        // Spot-check the shape: one window close, reports from candidates.
        assert_eq!(
            responses[40],
            EdgeResponse::WindowClosed { fresh_obfuscations: 1 }
        );
        let candidates = batched.candidates(user, home).unwrap();
        for r in &responses[41..61] {
            match r {
                EdgeResponse::ReportedLocation { location } => {
                    assert!(candidates.contains(location));
                }
                other => panic!("expected a reported location, got {other:?}"),
            }
        }
        assert_eq!(responses[61], EdgeResponse::Ack); // device-level Shutdown is a no-op
    }

    #[test]
    fn snapshot_restore_continues_the_run_bit_for_bit() {
        let mut original = edge();
        let user = UserId::new(1);
        let home = Point::new(1_000.0, 1_000.0);
        settle_home(&mut original, user, home);
        original.reported_location(user, home);
        original.reported_location(user, Point::new(40_000.0, 0.0)); // nomadic draw

        let snap = original.snapshot();
        let mut restored = EdgeDevice::restore(original.config(), &snap).unwrap();
        assert_eq!(restored.user_count(), 1);
        // Candidates restored bit-for-bit: no re-draw happened.
        assert_eq!(
            restored.candidates(user, home).unwrap(),
            original.candidates(user, home).unwrap()
        );
        assert_eq!(
            crate::recovery::candidate_redraws(&snap, &restored.snapshot()).unwrap(),
            0
        );
        // And the RNG resumes the exact stream: future outputs agree.
        for _ in 0..20 {
            assert_eq!(
                restored.reported_location(user, home),
                original.reported_location(user, home)
            );
            assert_eq!(
                restored.reported_location(user, Point::new(40_000.0, 0.0)),
                original.reported_location(user, Point::new(40_000.0, 0.0))
            );
        }
    }

    #[test]
    fn mid_window_restore_resumes_the_open_window() {
        let mut original = edge();
        let user = UserId::new(2);
        let home = Point::new(-500.0, 250.0);
        // Open window with buffered check-ins, not yet finalized.
        for _ in 0..45 {
            original.report_checkin(user, home);
        }
        let snap = original.snapshot();
        let mut restored = EdgeDevice::restore(original.config(), &snap).unwrap();
        // Both close the window now: identical top set and candidates.
        assert_eq!(restored.finalize_window(user), original.finalize_window(user));
        assert_eq!(
            restored.candidates(user, home).unwrap(),
            original.candidates(user, home).unwrap()
        );
    }

    #[test]
    fn adopt_snapshot_refuses_to_forget_released_candidates() {
        let mut e = edge();
        let user = UserId::new(3);
        let home = Point::new(2_000.0, 0.0);
        // Checkpoint taken before any candidates were released.
        e.report_checkin(user, home);
        let early = e.snapshot();
        // Candidates released after the checkpoint.
        settle_home(&mut e, user, home);
        let released = e.candidates(user, home).unwrap().to_vec();
        // Rolling back would forget them: refused, state untouched.
        assert_eq!(
            e.adopt_snapshot(&early),
            Err(crate::recovery::RecoveryError::BudgetViolation { user: 3 })
        );
        assert_eq!(e.candidates(user, home).unwrap(), released.as_slice());
        // Adopting a checkpoint that kept every released set is fine.
        let current = e.snapshot();
        e.adopt_snapshot(&current).unwrap();
        assert_eq!(e.candidates(user, home).unwrap(), released.as_slice());
    }

    #[test]
    fn telemetry_drain_matches_workload_and_ledger_audits_clean() {
        let mut e = edge();
        let user = UserId::new(1);
        let home = Point::new(1_000.0, 1_000.0);
        settle_home(&mut e, user, home); // 60 check-ins, 1 close, 1 fresh set
        for _ in 0..5 {
            e.reported_location(user, home);
        }
        e.reported_location(user, Point::new(40_000.0, 0.0)); // nomadic

        let telemetry = Telemetry::new();
        e.drain_telemetry(&telemetry);
        assert_eq!(e.stats(), DeviceStats::default());
        assert_eq!(e.pending_spends(), 0);

        let metrics = telemetry.registry().snapshot();
        assert_eq!(metrics.counter("edge.checkins"), Some(60));
        assert_eq!(metrics.counter("edge.location_requests"), Some(6));
        assert_eq!(metrics.counter("edge.windows_closed"), Some(1));
        assert_eq!(metrics.counter("edge.fresh_candidate_sets"), Some(1));
        assert_eq!(metrics.counter("edge.posterior_draws"), Some(5));
        assert_eq!(metrics.counter("edge.nomadic_draws"), Some(1));
        // finalize_window pre-warms the cache, so every draw hits.
        assert_eq!(metrics.counter("edge.posterior_cache_hits"), Some(5));
        assert_eq!(metrics.counter("edge.posterior_cache_misses"), Some(0));

        // The ledger holds exactly one spend per released set; auditing it
        // against the live snapshot finds no double spend and no gap.
        let live: Vec<(u64, _)> = e
            .snapshot()
            .released_sets()
            .unwrap()
            .into_iter()
            .map(|(u, p)| (u64::from(u.raw()), top_key(p.x, p.y)))
            .collect();
        assert_eq!(live.len(), 1);
        telemetry.ledger().assert_no_double_spend(live).unwrap();
        let totals = telemetry.ledger().totals();
        assert_eq!(totals.candidate_sets, 1);
        assert_eq!(totals.window_closes, 1);
        assert_eq!(totals.restores, 0);

        // A restore drains per-user restore events.
        let snap = e.snapshot();
        let mut restored = EdgeDevice::restore(e.config(), &snap).unwrap();
        assert_eq!(restored.stats().restores, 1);
        assert_eq!(restored.pending_spends(), 1);
        restored.drain_telemetry(&telemetry);
        assert_eq!(telemetry.ledger().totals().restores, 1);
        assert_eq!(telemetry.registry().snapshot().counter("recovery.restores"), Some(1));
    }

    #[test]
    fn per_user_streams_are_shard_partition_invariant() {
        let config = SystemConfig::builder().build().unwrap();
        let master = 42;
        let users: Vec<UserId> = (0..3).map(UserId::new).collect();
        let home_of = |u: UserId| Point::new(f64::from(u.raw()) * 12_000.0, 500.0);

        // One shard serving all three users, operations interleaved.
        let mut combined = EdgeDevice::with_per_user_streams(config, master);
        for _ in 0..60 {
            for &u in &users {
                combined.report_checkin(u, home_of(u));
            }
        }
        for &u in &users {
            combined.finalize_window(u);
        }
        let reports = |e: &mut EdgeDevice, u: UserId| {
            (0..15).map(|_| e.reported_location(u, home_of(u))).collect::<Vec<_>>()
        };
        let mut combined_reports = Vec::new();
        for &u in &users {
            combined_reports.push(reports(&mut combined, u));
        }

        // Three single-user shards from the same master: bit-identical
        // per-user outputs regardless of the partition.
        for (i, &u) in users.iter().enumerate() {
            let mut solo = EdgeDevice::with_per_user_streams(config, master);
            for _ in 0..60 {
                solo.report_checkin(u, home_of(u));
            }
            solo.finalize_window(u);
            assert_eq!(reports(&mut solo, u), combined_reports[i], "user {}", u.raw());
        }
    }

    #[test]
    fn per_user_snapshot_restore_resumes_private_streams() {
        let config = SystemConfig::builder().build().unwrap();
        let mut original = EdgeDevice::with_per_user_streams(config, 7);
        let users = [UserId::new(4), UserId::new(9)];
        for &u in &users {
            settle_home(&mut original, u, Point::new(f64::from(u.raw()) * 1_000.0, 0.0));
            original.reported_location(u, Point::new(f64::from(u.raw()) * 1_000.0, 0.0));
        }

        let log = original.checkpoint();
        let mut restored = EdgeDevice::restore_from_checkpoint(config, &log).unwrap();
        // Future draws resume each private stream exactly where it stood.
        for _ in 0..20 {
            for &u in &users {
                let home = Point::new(f64::from(u.raw()) * 1_000.0, 0.0);
                assert_eq!(
                    restored.reported_location(u, home),
                    original.reported_location(u, home)
                );
                let nomadic = Point::new(40_000.0, 40_000.0);
                assert_eq!(
                    restored.reported_location(u, nomadic),
                    original.reported_location(u, nomadic)
                );
            }
        }
        assert_eq!(restored.checkpoint(), original.checkpoint());
    }

    #[test]
    fn restore_shares_pooled_state_and_footprint_counts_it_once() {
        let config = SystemConfig::builder().build().unwrap();
        let top = Point::new(800.0, -300.0);
        let tops = vec![privlocad_attack::ProfileEntry { location: top, frequency: 60 }];

        // A fleet-style install: one prepared set shared by two users.
        let mut authority =
            crate::ObfuscationModule::new(config.geo_ind(), config.top_match_radius_m());
        let mut arena = CandidateArena::new();
        let mut pair_counter = 0;
        arena.prepare(&mut authority, &[top], 11, &mut pair_counter);
        let mut e = edge();
        e.install_protection(UserId::new(1), tops.clone(), arena.sets());
        e.install_protection(UserId::new(2), tops, arena.sets());

        let fp = e.footprint();
        assert_eq!(fp.users, 2);
        assert_eq!(fp.candidate_set_refs, 2);
        assert_eq!(fp.distinct_candidate_sets, 1, "shared set stored once");
        assert_eq!(fp.distinct_posterior_tables, 1, "shared table stored once");
        assert!(fp.user_bytes > 0 && fp.shared_bytes > 0);
        assert!(fp.bytes_per_user() > 0.0);

        // The snapshot pools it once too, and the pooled restore rebuilds
        // the sharing: same footprint, identical re-encoded checkpoint.
        let snap = e.snapshot();
        assert_eq!(snap.distinct_candidate_sets(), 1);
        let restored = EdgeDevice::restore_from_checkpoint(config, &e.checkpoint()).unwrap();
        let rfp = restored.footprint();
        assert_eq!(rfp.users, 2);
        assert_eq!(rfp.candidate_set_refs, 2);
        assert_eq!(rfp.distinct_candidate_sets, 1);
        assert_eq!(rfp.distinct_posterior_tables, 1);
        assert_eq!(restored.checkpoint(), e.checkpoint());
    }

    #[test]
    fn flush_selection_cache_does_not_change_outputs() {
        let run = |flush: bool| {
            let mut e = EdgeDevice::new(SystemConfig::builder().build().unwrap(), 31);
            let user = UserId::new(0);
            settle_home(&mut e, user, Point::new(3.0, 4.0));
            (0..25)
                .map(|_| {
                    if flush {
                        e.flush_selection_cache();
                    }
                    e.reported_location(user, Point::new(3.0, 4.0))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }
}
