//! Per-user serving state shared by [`crate::EdgeDevice`] (single-threaded)
//! and [`crate::SharedEdgeDevice`] (slot-locked concurrent): the location
//! manager, the permanent obfuscation table, and the posterior-weight
//! selection cache.
//!
//! Keeping one implementation of the request hot path here guarantees the
//! two devices stay behaviorally identical: given the same RNG stream they
//! produce the same reported locations bit-for-bit.

use std::sync::Arc;

use privlocad_geo::Point;
use privlocad_mechanisms::{
    BatchScratch, CandidateLanes, PlanarLaplace, PosteriorSelector, PosteriorTable,
    SelectionCache, SelectionStrategy, UniformSelector,
};
use privlocad_mobility::UserId;
use rand::rngs::StdRng;
use rand::RngCore;

use crate::{LocationManager, ObfuscationModule, PreparedSet, SelectionKind, SystemConfig};

/// A user-keyed directory backed by parallel sorted vectors: binary search
/// over a dense `UserId` array beats a `BTreeMap` walk on the per-request
/// serving path, and iteration stays in ascending user order (the same
/// deterministic order the old tree map gave).
///
/// Keys live apart from the (large) slots so every probe of the search
/// touches the same few cache lines instead of striding across full user
/// states.
#[derive(Debug, Clone, Default)]
pub(crate) struct UserMap<S> {
    keys: Vec<UserId>,
    slots: Vec<S>,
    /// Dense raw-id → slot + 1 fast path (0 = absent). Edge deployments
    /// hand out small sequential user ids, so the common lookup is one
    /// bounds-checked load; sparse ids past [`DENSE_INDEX_CAP`] simply
    /// fall back to the binary search.
    index: Vec<u32>,
}

/// Largest raw user id kept in the dense lookup index (4 MiB worst case).
const DENSE_INDEX_CAP: usize = 1 << 20;

impl<S> UserMap<S> {
    pub(crate) fn new() -> Self {
        UserMap { keys: Vec::new(), slots: Vec::new(), index: Vec::new() }
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    fn position(&self, user: UserId) -> Result<usize, usize> {
        let raw = user.raw() as usize;
        if raw < self.index.len() {
            let slot = self.index[raw];
            if slot != 0 {
                return Ok((slot - 1) as usize);
            }
        }
        self.keys.binary_search(&user)
    }

    pub(crate) fn get(&self, user: UserId) -> Option<&S> {
        self.position(user).ok().map(|i| &self.slots[i])
    }

    pub(crate) fn get_mut(&mut self, user: UserId) -> Option<&mut S> {
        self.position(user).ok().map(|i| &mut self.slots[i])
    }

    /// The user's slot, created with `init` on first sight.
    pub(crate) fn entry_or_insert_with(
        &mut self,
        user: UserId,
        init: impl FnOnce() -> S,
    ) -> &mut S {
        let idx = match self.position(user) {
            Ok(i) => i,
            Err(i) => {
                self.keys.insert(i, user);
                self.slots.insert(i, init());
                let raw = user.raw() as usize;
                if raw < DENSE_INDEX_CAP && self.index.len() <= raw {
                    self.index.resize(raw + 1, 0);
                }
                // The insert shifted every later slot by one; re-point the
                // dense index for the tail (inserts happen once per user).
                for (pos, key) in self.keys.iter().enumerate().skip(i) {
                    let r = key.raw() as usize;
                    if r < self.index.len() {
                        self.index[r] = (pos + 1) as u32;
                    }
                }
                i
            }
        };
        &mut self.slots[idx]
    }

    /// All known users, ascending.
    pub(crate) fn keys(&self) -> impl Iterator<Item = UserId> + '_ {
        self.keys.iter().copied()
    }

    /// All slots, in ascending user order.
    pub(crate) fn values(&self) -> impl Iterator<Item = &S> {
        self.slots.iter()
    }

    /// All slots mutably, in ascending user order.
    pub(crate) fn values_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.slots.iter_mut()
    }
}

#[cfg(test)]
mod usermap_tests {
    use super::*;

    #[test]
    fn dense_and_sparse_ids_stay_consistent_across_inserts() {
        let mut map: UserMap<u64> = UserMap::new();
        // Out-of-order inserts, including an id past the dense-index cap.
        for raw in [7u32, 3, u32::MAX, 5, 0, 1 << 21] {
            let slot = map.entry_or_insert_with(UserId::new(raw), || u64::from(raw));
            assert_eq!(*slot, u64::from(raw));
        }
        assert_eq!(map.len(), 6);
        for raw in [0u32, 3, 5, 7, 1 << 21, u32::MAX] {
            assert_eq!(map.get(UserId::new(raw)), Some(&u64::from(raw)), "raw {raw}");
            *map.get_mut(UserId::new(raw)).unwrap() += 1;
        }
        assert_eq!(map.get(UserId::new(2)), None);
        assert_eq!(map.get(UserId::new(8)), None);
        // Iteration is ascending by user id regardless of insert order.
        let keys: Vec<u32> = map.keys().map(|u| u.raw()).collect();
        assert_eq!(keys, vec![0, 3, 5, 7, 1 << 21, u32::MAX]);
        let values: Vec<u64> = map.values().copied().collect();
        assert_eq!(values, vec![1, 4, 6, 8, (1 << 21) + 1, u64::from(u32::MAX) + 1]);
        for v in map.values_mut() {
            *v = 0;
        }
        assert!(map.values().all(|&v| v == 0));
    }
}

/// Per-request serving observations, accumulated into the caller's
/// scratch and folded into the device's telemetry stats. Plain counters —
/// the request path is single-threaded per user slot, so no atomics (and
/// the `telemetry-hygiene` lint rule bans them here anyway).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RequestStats {
    /// Posterior-table lookups served from the selection cache.
    pub(crate) cache_hits: u64,
    /// Posterior-table lookups that had to build the table.
    pub(crate) cache_misses: u64,
    /// Draws answered from a permanent candidate set via posterior
    /// selection.
    pub(crate) posterior_draws: u64,
    /// Draws answered from a permanent candidate set via the uniform
    /// ablation selector.
    pub(crate) uniform_draws: u64,
    /// Draws answered by the one-time planar-Laplace fallback.
    pub(crate) nomadic_draws: u64,
}

/// One user's state on an edge device.
#[derive(Debug, Clone)]
pub(crate) struct UserState {
    pub(crate) manager: LocationManager,
    pub(crate) obfuscation: ObfuscationModule,
    /// Posterior-weight cache keyed by top location. Pure post-processing
    /// acceleration: entries are derived from the permanent candidate
    /// sets, so the cache never changes outputs — only cost.
    pub(crate) selection: SelectionCache,
    /// The user's private RNG stream ([`crate::StreamMode::PerUser`]
    /// devices). `None` on classic devices, which advance one shared
    /// generator in operation order.
    pub(crate) stream: Option<StdRng>,
}

impl UserState {
    pub(crate) fn new(config: &SystemConfig) -> Self {
        UserState::with_stream(config, None)
    }

    /// [`UserState::new`] with an explicit private stream (per-user
    /// stream mode assigns one at first sight of the user).
    pub(crate) fn with_stream(config: &SystemConfig, stream: Option<StdRng>) -> Self {
        UserState {
            manager: LocationManager::new(config.profile_theta_m(), config.eta()),
            obfuscation: ObfuscationModule::new(config.geo_ind(), config.top_match_radius_m()),
            selection: SelectionCache::new(),
            stream,
        }
    }

    /// Split-borrow accessor for the posterior hot path: the permanent
    /// candidates covering `top` (generated on first use, spending the
    /// one-and-only budget) plus their cached cumulative weight table
    /// (built on first use, free post-processing).
    fn posterior_ctx(
        &mut self,
        top: Point,
        rng: &mut dyn RngCore,
        stats: &mut RequestStats,
    ) -> (&[Point], &PosteriorTable) {
        let selector = PosteriorSelector::new(self.obfuscation.mechanism().sigma());
        let candidates = self.obfuscation.candidates_for(top, rng);
        let (hit, table) = self.selection.lookup_or_build(top, &selector, candidates);
        if hit {
            stats.cache_hits += 1;
        } else {
            stats.cache_misses += 1;
        }
        (candidates, table)
    }

    /// The serving hot path: a posterior- (or uniform-) selected permanent
    /// candidate when `current_true` is at a protected top location, a
    /// fresh one-time planar-Laplace sample otherwise.
    ///
    /// Allocation-free after the first request per top location.
    ///
    /// Generic over the RNG so a concrete generator inlines into the
    /// cached draw; pass `&mut &mut dyn RngCore` from type-erased callers.
    pub(crate) fn reported_location<R: RngCore>(
        &mut self,
        config: &SystemConfig,
        nomadic: &PlanarLaplace,
        current_true: Point,
        rng: &mut R,
        stats: &mut RequestStats,
    ) -> Point {
        match self.manager.matching_top(current_true, config.top_match_radius_m()) {
            Some(top) => match config.selection() {
                SelectionKind::Posterior => {
                    stats.posterior_draws += 1;
                    let (candidates, table) = self.posterior_ctx(top, rng, stats);
                    candidates[table.draw(rng)]
                }
                SelectionKind::Uniform => {
                    stats.uniform_draws += 1;
                    let candidates = self.obfuscation.candidates_for(top, rng);
                    candidates[UniformSelector::new().select(candidates, rng)]
                }
            },
            None => {
                stats.nomadic_draws += 1;
                nomadic.sample(current_true, rng)
            }
        }
    }

    /// Closes the profile window, invalidates the selection cache (the
    /// top set — the cache keys — may drift), obfuscates any new top
    /// locations, and pre-warms the cache for the new top set. Returns
    /// the number of freshly obfuscated top locations.
    pub(crate) fn finalize_window(
        &mut self,
        config: &SystemConfig,
        rng: &mut dyn RngCore,
    ) -> usize {
        let mut scratch = BatchScratch::new();
        let mut lanes = CandidateLanes::new();
        self.finalize_window_with(config, rng, &mut scratch, &mut lanes)
    }

    /// [`UserState::finalize_window`] with caller-owned generation buffers
    /// (an edge device reuses one pair across every window close).
    pub(crate) fn finalize_window_with(
        &mut self,
        config: &SystemConfig,
        rng: &mut dyn RngCore,
        scratch: &mut BatchScratch,
        lanes: &mut CandidateLanes,
    ) -> usize {
        let tops: Vec<Point> =
            self.manager.finalize_window().iter().map(|e| e.location).collect();
        self.selection.invalidate();
        let fresh = self.obfuscation.obfuscate_top_set_with(&tops, rng, scratch, lanes);
        self.warm_selection(config);
        fresh
    }

    /// Precomputes the posterior table of every currently protected top
    /// location, so the first ad request after a window close already
    /// serves from cache. No RNG is consumed — the tables are pure
    /// functions of the permanent candidates.
    pub(crate) fn warm_selection(&mut self, config: &SystemConfig) {
        if config.selection() != SelectionKind::Posterior {
            return;
        }
        let selector = PosteriorSelector::new(self.obfuscation.mechanism().sigma());
        for entry in self.manager.top_set() {
            let top = entry.location;
            if let Some(candidates) = self.obfuscation.table().get(top) {
                self.selection.table_for(top, &selector, candidates);
            }
        }
    }

    /// [`UserState::warm_selection`] fed by a fleet install: when the
    /// covering candidates are the very allocation a [`PreparedSet`]
    /// staged, the prepared table is installed as a shared handle — no
    /// per-edge rebuild. A posterior table is a pure function of
    /// `(candidates, σ)`, so the shared handle draws bit-for-bit what the
    /// rebuild would; tops covered by an unrelated allocation (an older
    /// entry of this device's own table) fall back to the local build.
    pub(crate) fn warm_selection_prepared(&mut self, config: &SystemConfig, sets: &[PreparedSet]) {
        if config.selection() != SelectionKind::Posterior {
            return;
        }
        let selector = PosteriorSelector::new(self.obfuscation.mechanism().sigma());
        for entry in self.manager.top_set() {
            let top = entry.location;
            let Some(candidates) = self.obfuscation.table().get_shared(top) else {
                continue;
            };
            match sets.iter().find(|s| Arc::ptr_eq(s.candidates(), candidates)) {
                Some(prepared) => {
                    self.selection.install_shared(top, Arc::clone(prepared.table()));
                }
                None => {
                    self.selection.table_for(top, &selector, candidates);
                }
            }
        }
    }
}
