use privlocad_mechanisms::{GeoIndParams, PlanarLaplaceParams};
use serde::{Deserialize, Serialize};

use crate::SystemError;

/// The η threshold of the frequent-location set (Definition 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EtaThreshold {
    /// Absolute check-in count: the top set must cover at least this many
    /// check-ins.
    Count(usize),
    /// Fraction of the window's total check-ins, in `(0, 1]`.
    Fraction(f64),
}

impl EtaThreshold {
    /// Resolves the threshold to an absolute count for a window with
    /// `total` check-ins.
    pub fn resolve(&self, total: usize) -> usize {
        match *self {
            EtaThreshold::Count(c) => c,
            EtaThreshold::Fraction(f) => (f * total as f64).ceil() as usize,
        }
    }
}

/// Which output-selection strategy the edge applies (Algorithm 4 vs the
/// uniform ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectionKind {
    /// Posterior-proportional selection (Algorithm 4) — the paper's design.
    #[default]
    Posterior,
    /// Uniform selection over the candidates — ablation baseline.
    Uniform,
}

/// Full configuration of an Edge-PrivLocAd deployment.
///
/// Defaults follow Section VII-A: `(r = 500 m, ε = 1, δ = 0.01, n = 10)`
/// geo-IND for top locations, planar Laplace at `l = ln 4, r = 200 m` for
/// nomadic check-ins, η = 80 % of window check-ins, a 90-day profile
/// window, and a 5 km targeting radius.
///
/// # Examples
///
/// ```
/// use privlocad::SystemConfig;
///
/// let config = SystemConfig::builder().n_fold(5).epsilon(1.5).build()?;
/// assert_eq!(config.geo_ind().n(), 5);
/// assert_eq!(config.geo_ind().epsilon(), 1.5);
/// # Ok::<(), privlocad::SystemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    geo_ind: GeoIndParams,
    nomadic: PlanarLaplaceParams,
    eta: EtaThreshold,
    profile_theta_m: f64,
    top_match_radius_m: f64,
    window_days: u32,
    targeting_radius_m: f64,
    selection: SelectionKind,
}

impl SystemConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// The `(r, ε, δ, n)` parameters of the n-fold Gaussian mechanism.
    pub fn geo_ind(&self) -> GeoIndParams {
        self.geo_ind
    }

    /// The planar-Laplace parameters protecting nomadic check-ins.
    pub fn nomadic(&self) -> PlanarLaplaceParams {
        self.nomadic
    }

    /// The η threshold of the frequent-location set.
    pub fn eta(&self) -> EtaThreshold {
        self.eta
    }

    /// Connectivity threshold for profiling, meters (paper: 50 m).
    pub fn profile_theta_m(&self) -> f64 {
        self.profile_theta_m
    }

    /// How close a current location must be to a known top location to use
    /// its permanent candidates instead of the nomadic fallback.
    pub fn top_match_radius_m(&self) -> f64 {
        self.top_match_radius_m
    }

    /// Profile re-computation window in days (paper: "every three months").
    pub fn window_days(&self) -> u32 {
        self.window_days
    }

    /// The campaign targeting radius `R` used for ad filtering, meters.
    pub fn targeting_radius_m(&self) -> f64 {
        self.targeting_radius_m
    }

    /// The configured output-selection strategy.
    pub fn selection(&self) -> SelectionKind {
        self.selection
    }
}

/// Builder for [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    r: f64,
    epsilon: f64,
    delta: f64,
    n: usize,
    nomadic_l: f64,
    nomadic_r: f64,
    eta: EtaThreshold,
    profile_theta_m: f64,
    top_match_radius_m: f64,
    window_days: u32,
    targeting_radius_m: f64,
    selection: SelectionKind,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            r: 500.0,
            epsilon: 1.0,
            delta: 0.01,
            n: 10,
            nomadic_l: 4f64.ln(),
            nomadic_r: 200.0,
            eta: EtaThreshold::Fraction(0.8),
            profile_theta_m: 50.0,
            top_match_radius_m: 200.0,
            window_days: 90,
            targeting_radius_m: 5_000.0,
            selection: SelectionKind::Posterior,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the geo-IND radius `r` in meters (default 500).
    pub fn radius(mut self, r: f64) -> Self {
        self.r = r;
        self
    }

    /// Sets the privacy level ε (default 1).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the failure probability δ (default 0.01).
    pub fn delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the number of permanent candidates n (default 10).
    pub fn n_fold(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the nomadic planar-Laplace level `l` at radius `r_m`
    /// (default `ln 4` at 200 m).
    pub fn nomadic_level(mut self, l: f64, r_m: f64) -> Self {
        self.nomadic_l = l;
        self.nomadic_r = r_m;
        self
    }

    /// Sets the η threshold (default 80 % of window check-ins).
    pub fn eta(mut self, eta: EtaThreshold) -> Self {
        self.eta = eta;
        self
    }

    /// Sets the profiling connectivity threshold in meters (default 50).
    pub fn profile_theta_m(mut self, theta: f64) -> Self {
        self.profile_theta_m = theta;
        self
    }

    /// Sets the top-location match radius in meters (default 200).
    pub fn top_match_radius_m(mut self, r: f64) -> Self {
        self.top_match_radius_m = r;
        self
    }

    /// Sets the profile window in days (default 90).
    pub fn window_days(mut self, days: u32) -> Self {
        self.window_days = days;
        self
    }

    /// Sets the ad-filtering targeting radius in meters (default 5,000).
    pub fn targeting_radius_m(mut self, r: f64) -> Self {
        self.targeting_radius_m = r;
        self
    }

    /// Sets the output-selection strategy (default posterior).
    pub fn selection(mut self, kind: SelectionKind) -> Self {
        self.selection = kind;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SystemError`] when any parameter is out of range.
    pub fn build(self) -> Result<SystemConfig, SystemError> {
        let geo_ind = GeoIndParams::new(self.r, self.epsilon, self.delta, self.n)?;
        let nomadic = PlanarLaplaceParams::from_level(self.nomadic_l, self.nomadic_r)?;
        if let EtaThreshold::Fraction(f) = self.eta {
            if !(f > 0.0 && f <= 1.0) {
                return Err(SystemError::InvalidEta(f));
            }
        }
        if !(self.profile_theta_m.is_finite() && self.profile_theta_m > 0.0) {
            return Err(SystemError::InvalidLength(self.profile_theta_m));
        }
        if !(self.top_match_radius_m.is_finite() && self.top_match_radius_m > 0.0) {
            return Err(SystemError::InvalidLength(self.top_match_radius_m));
        }
        if !(self.targeting_radius_m.is_finite() && self.targeting_radius_m > 0.0) {
            return Err(SystemError::InvalidLength(self.targeting_radius_m));
        }
        if self.window_days == 0 {
            return Err(SystemError::InvalidWindow);
        }
        Ok(SystemConfig {
            geo_ind,
            nomadic,
            eta: self.eta,
            profile_theta_m: self.profile_theta_m,
            top_match_radius_m: self.top_match_radius_m,
            window_days: self.window_days,
            targeting_radius_m: self.targeting_radius_m,
            selection: self.selection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SystemConfig::builder().build().unwrap();
        assert_eq!(c.geo_ind().r(), 500.0);
        assert_eq!(c.geo_ind().epsilon(), 1.0);
        assert_eq!(c.geo_ind().delta(), 0.01);
        assert_eq!(c.geo_ind().n(), 10);
        assert_eq!(c.profile_theta_m(), 50.0);
        assert_eq!(c.window_days(), 90);
        assert_eq!(c.targeting_radius_m(), 5_000.0);
        assert_eq!(c.selection(), SelectionKind::Posterior);
        assert!((c.nomadic().epsilon_per_meter() - 4f64.ln() / 200.0).abs() < 1e-15);
    }

    #[test]
    fn eta_resolution() {
        assert_eq!(EtaThreshold::Count(100).resolve(1_000), 100);
        assert_eq!(EtaThreshold::Fraction(0.8).resolve(1_000), 800);
        assert_eq!(EtaThreshold::Fraction(0.85).resolve(10), 9); // ceil
    }

    #[test]
    fn builder_setters() {
        let c = SystemConfig::builder()
            .radius(700.0)
            .epsilon(1.5)
            .delta(0.005)
            .n_fold(4)
            .nomadic_level(2f64.ln(), 100.0)
            .eta(EtaThreshold::Count(500))
            .profile_theta_m(25.0)
            .top_match_radius_m(300.0)
            .window_days(30)
            .targeting_radius_m(10_000.0)
            .selection(SelectionKind::Uniform)
            .build()
            .unwrap();
        assert_eq!(c.geo_ind().r(), 700.0);
        assert_eq!(c.geo_ind().n(), 4);
        assert_eq!(c.eta(), EtaThreshold::Count(500));
        assert_eq!(c.profile_theta_m(), 25.0);
        assert_eq!(c.top_match_radius_m(), 300.0);
        assert_eq!(c.window_days(), 30);
        assert_eq!(c.targeting_radius_m(), 10_000.0);
        assert_eq!(c.selection(), SelectionKind::Uniform);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            SystemConfig::builder().epsilon(0.0).build(),
            Err(SystemError::Mechanism(_))
        ));
        assert!(matches!(
            SystemConfig::builder().eta(EtaThreshold::Fraction(0.0)).build(),
            Err(SystemError::InvalidEta(_))
        ));
        assert!(matches!(
            SystemConfig::builder().eta(EtaThreshold::Fraction(1.5)).build(),
            Err(SystemError::InvalidEta(_))
        ));
        assert!(matches!(
            SystemConfig::builder().profile_theta_m(0.0).build(),
            Err(SystemError::InvalidLength(_))
        ));
        assert!(matches!(
            SystemConfig::builder().top_match_radius_m(f64::NAN).build(),
            Err(SystemError::InvalidLength(_))
        ));
        assert!(matches!(
            SystemConfig::builder().targeting_radius_m(-1.0).build(),
            Err(SystemError::InvalidLength(_))
        ));
        assert!(matches!(
            SystemConfig::builder().window_days(0).build(),
            Err(SystemError::InvalidWindow)
        ));
    }
}
