use privlocad_attack::{LocationProfile, ProfileEntry};
use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

use crate::EtaThreshold;

/// Computes the η-frequent location set (Definition 6, Algorithm 2): the
/// minimal prefix of the frequency-ordered profile whose cumulative
/// frequency reaches the resolved η.
///
/// Returns the whole profile if even that does not reach η (e.g. η larger
/// than the window's total check-ins).
///
/// # Examples
///
/// ```
/// use privlocad::{frequent_location_set, EtaThreshold};
/// use privlocad_attack::{LocationProfile, ProfileEntry};
/// use privlocad_geo::Point;
///
/// let profile = LocationProfile::from_entries([
///     ProfileEntry { location: Point::new(0.0, 0.0), frequency: 70 },
///     ProfileEntry { location: Point::new(9_000.0, 0.0), frequency: 20 },
///     ProfileEntry { location: Point::new(0.0, 9_000.0), frequency: 10 },
/// ]);
/// let tops = frequent_location_set(&profile, EtaThreshold::Fraction(0.85));
/// assert_eq!(tops.len(), 2); // 70 + 20 = 90 ≥ 85
/// ```
pub fn frequent_location_set(profile: &LocationProfile, eta: EtaThreshold) -> Vec<ProfileEntry> {
    let target = eta.resolve(profile.total_checkins());
    let mut total = 0usize;
    let mut set = Vec::new();
    for entry in profile.iter() {
        total += entry.frequency;
        set.push(*entry);
        if total >= target {
            break;
        }
    }
    set
}

/// The location-management module of one user on the edge device.
///
/// Buffers the current window's check-ins; on window end
/// ([`LocationManager::finalize_window`]) rebuilds the profile and the
/// η-frequent location set. The set is re-computed periodically "since
/// users will possibly (although not frequently) change their top
/// locations in real life" (Section V-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationManager {
    theta_m: f64,
    eta: EtaThreshold,
    buffer: Vec<Point>,
    profile: LocationProfile,
    top_set: Vec<ProfileEntry>,
    windows_closed: usize,
}

impl LocationManager {
    /// Creates a manager with profiling threshold `theta_m` (meters) and
    /// the η policy.
    ///
    /// # Panics
    ///
    /// Panics if `theta_m` is not positive and finite.
    pub fn new(theta_m: f64, eta: EtaThreshold) -> Self {
        assert!(theta_m.is_finite() && theta_m > 0.0, "theta must be positive and finite");
        LocationManager {
            theta_m,
            eta,
            buffer: Vec::new(),
            profile: LocationProfile::default(),
            top_set: Vec::new(),
            windows_closed: 0,
        }
    }

    /// Buffers one true-location check-in for the current window.
    pub fn record(&mut self, location: Point) {
        self.buffer.push(location);
    }

    /// Number of check-ins buffered in the current (open) window.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// The current window's buffered check-ins, oldest first — serialized
    /// by crash recovery so a restored device resumes the open window with
    /// nothing lost.
    pub(crate) fn buffered(&self) -> &[Point] {
        &self.buffer
    }

    /// Reinstates checkpointed window state verbatim: the open window's
    /// buffer, the last computed profile (in its recorded entry order),
    /// the η-frequent set, and the window epoch. θ and η keep their
    /// constructor values — they come from the device config, which the
    /// restore caller supplies.
    pub(crate) fn restore_window_state(
        &mut self,
        buffer: Vec<Point>,
        profile: LocationProfile,
        top_set: Vec<ProfileEntry>,
        windows_closed: usize,
    ) {
        self.buffer = buffer;
        self.profile = profile;
        self.top_set = top_set;
        self.windows_closed = windows_closed;
    }

    /// Closes the window: rebuilds the profile from the buffered check-ins
    /// and recomputes the η-frequent location set. Returns the new set.
    ///
    /// An empty window leaves the previous profile in place.
    pub fn finalize_window(&mut self) -> &[ProfileEntry] {
        if !self.buffer.is_empty() {
            self.profile = LocationProfile::from_checkins(&self.buffer, self.theta_m);
            self.top_set = frequent_location_set(&self.profile, self.eta);
            self.buffer.clear();
        }
        self.windows_closed += 1;
        &self.top_set
    }

    /// The current η-frequent location set (empty before the first window
    /// closes).
    pub fn top_set(&self) -> &[ProfileEntry] {
        &self.top_set
    }

    /// The last computed profile.
    pub fn profile(&self) -> &LocationProfile {
        &self.profile
    }

    /// How many windows have been finalized.
    pub fn windows_closed(&self) -> usize {
        self.windows_closed
    }

    /// Replaces the current η-frequent location set.
    ///
    /// Used by the multi-edge flow of Section V-B: each edge records only a
    /// *local* part of the profile; after the partial profiles are merged,
    /// the merged top set is installed back into every edge serving the
    /// user so any of them answers ad requests consistently.
    pub fn set_top_set(&mut self, tops: Vec<ProfileEntry>) {
        self.top_set = tops;
    }

    /// Finds the top location nearest to `location` within `match_radius_m`
    /// meters, if any — the edge's check for "is the user at a protected
    /// top location right now?".
    pub fn matching_top(&self, location: Point, match_radius_m: f64) -> Option<Point> {
        // Serving hot path: one squared distance per entry, no sqrt. The
        // first strictly-nearest entry wins, matching the old
        // filter + min_by pass.
        let radius_sq = match_radius_m * match_radius_m;
        let mut best: Option<(f64, Point)> = None;
        for entry in &self.top_set {
            let d_sq = entry.location.distance_sq(location);
            if d_sq <= radius_sq && best.is_none_or(|(b, _)| d_sq < b) {
                best = Some((d_sq, entry.location));
            }
        }
        best.map(|(_, top)| top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(x: f64, f: usize) -> ProfileEntry {
        ProfileEntry { location: Point::new(x, 0.0), frequency: f }
    }

    #[test]
    fn frequent_set_minimal_prefix() {
        let p = LocationProfile::from_entries([entry(0.0, 50), entry(1.0, 30), entry(2.0, 20)]);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Count(50)).len(), 1);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Count(51)).len(), 2);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Count(80)).len(), 2);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Count(81)).len(), 3);
    }

    #[test]
    fn frequent_set_with_fraction() {
        let p = LocationProfile::from_entries([entry(0.0, 70), entry(1.0, 20), entry(2.0, 10)]);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Fraction(0.7)).len(), 1);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Fraction(0.9)).len(), 2);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Fraction(1.0)).len(), 3);
    }

    #[test]
    fn unreachable_eta_returns_everything() {
        let p = LocationProfile::from_entries([entry(0.0, 5)]);
        assert_eq!(frequent_location_set(&p, EtaThreshold::Count(100)).len(), 1);
    }

    #[test]
    fn empty_profile_empty_set() {
        let p = LocationProfile::default();
        assert!(frequent_location_set(&p, EtaThreshold::Count(1)).is_empty());
    }

    #[test]
    fn manager_window_lifecycle() {
        let mut m = LocationManager::new(50.0, EtaThreshold::Fraction(0.8));
        assert!(m.top_set().is_empty());
        assert_eq!(m.pending(), 0);
        for _ in 0..80 {
            m.record(Point::new(0.0, 0.0));
        }
        for _ in 0..20 {
            m.record(Point::new(9_000.0, 0.0));
        }
        assert_eq!(m.pending(), 100);
        let tops = m.finalize_window().to_vec();
        assert_eq!(m.pending(), 0);
        assert_eq!(m.windows_closed(), 1);
        assert_eq!(tops.len(), 1); // 80 ≥ 0.8·100
        assert!(tops[0].location.distance(Point::ORIGIN) < 1.0);
        assert_eq!(m.profile().len(), 2);
    }

    #[test]
    fn empty_window_keeps_previous_profile() {
        let mut m = LocationManager::new(50.0, EtaThreshold::Fraction(0.5));
        m.record(Point::ORIGIN);
        m.finalize_window();
        let before = m.top_set().to_vec();
        m.finalize_window(); // nothing buffered
        assert_eq!(m.top_set(), before.as_slice());
        assert_eq!(m.windows_closed(), 2);
    }

    #[test]
    fn new_window_replaces_profile() {
        let mut m = LocationManager::new(50.0, EtaThreshold::Fraction(0.9));
        for _ in 0..10 {
            m.record(Point::new(0.0, 0.0));
        }
        m.finalize_window();
        assert!(m.matching_top(Point::ORIGIN, 200.0).is_some());
        // User moved: next window is all at a new home.
        for _ in 0..10 {
            m.record(Point::new(20_000.0, 0.0));
        }
        m.finalize_window();
        assert!(m.matching_top(Point::ORIGIN, 200.0).is_none());
        assert!(m.matching_top(Point::new(20_000.0, 0.0), 200.0).is_some());
    }

    #[test]
    fn matching_top_picks_nearest() {
        let mut m = LocationManager::new(50.0, EtaThreshold::Fraction(1.0));
        for _ in 0..10 {
            m.record(Point::new(0.0, 0.0));
        }
        for _ in 0..10 {
            m.record(Point::new(300.0, 0.0));
        }
        m.finalize_window();
        let top = m.matching_top(Point::new(290.0, 0.0), 200.0).unwrap();
        assert!(top.distance(Point::new(300.0, 0.0)) < 1.0);
        assert!(m.matching_top(Point::new(150.0, 5_000.0), 200.0).is_none());
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn rejects_bad_theta() {
        let _ = LocationManager::new(0.0, EtaThreshold::Count(1));
    }
}
