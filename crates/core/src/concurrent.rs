use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mechanisms::PlanarLaplace;
use privlocad_mobility::UserId;

use crate::recovery::{restore_user, DeviceSnapshot, RecoveryError, SnapshotBuilder};
use crate::user::{RequestStats, UserMap, UserState};
use crate::{StreamMode, SystemConfig};

/// A thread-shared edge device: many mobile clients (threads) report
/// check-ins and request obfuscated locations concurrently.
///
/// The paper's third design goal is a "scalable and practical
/// edge-assisted system"; [`crate::EdgeDevice`] is the single-threaded
/// deterministic core, and this wrapper adds the concurrent serving layer:
/// a read-mostly user directory (`RwLock`) over independently locked user
/// slots (`Mutex`), so hot-path requests of different users proceed in
/// parallel and only directory growth takes the write lock. Both devices
/// share the same per-user state and request hot path
/// (`crate::user::UserState`), including the posterior-selection cache.
///
/// Randomness comes from a per-operation RNG derived from an atomic
/// counter, so concurrent use is safe; unlike [`crate::EdgeDevice`] the
/// *interleaving* of operations across threads is scheduler-dependent.
///
/// # Examples
///
/// ```
/// use privlocad::{SharedEdgeDevice, SystemConfig};
/// use privlocad_geo::Point;
/// use privlocad_mobility::UserId;
///
/// let edge = SharedEdgeDevice::new(SystemConfig::builder().build()?, 1);
/// let user = UserId::new(0);
/// for _ in 0..30 {
///     edge.report_checkin(user, Point::new(10.0, 10.0));
/// }
/// edge.finalize_window(user);
/// let reported = edge.reported_location(user, Point::new(10.0, 10.0));
/// assert!(edge.candidates(user, Point::new(10.0, 10.0)).unwrap().contains(&reported));
/// # Ok::<(), privlocad::SystemError>(())
/// ```
#[derive(Debug)]
pub struct SharedEdgeDevice {
    config: SystemConfig,
    nomadic: PlanarLaplace,
    users: RwLock<UserMap<Arc<Mutex<UserState>>>>,
    seed: u64,
    op_counter: AtomicU64,
}

impl SharedEdgeDevice {
    /// Creates a shared edge device.
    pub fn new(config: SystemConfig, seed: u64) -> Self {
        SharedEdgeDevice {
            nomadic: PlanarLaplace::new(config.nomadic()),
            config,
            users: RwLock::new(UserMap::new()),
            seed,
            // lint:allow(telemetry-hygiene): per-op seed-derivation cursor, not a metric — never exported
            op_counter: AtomicU64::new(0),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Number of users with state on this device.
    pub fn user_count(&self) -> usize {
        self.users.read().len()
    }

    fn slot(&self, user: UserId) -> Arc<Mutex<UserState>> {
        if let Some(slot) = self.users.read().get(user) {
            return Arc::clone(slot);
        }
        let mut map = self.users.write();
        Arc::clone(
            map.entry_or_insert_with(user, || Arc::new(Mutex::new(UserState::new(&self.config)))),
        )
    }

    fn op_rng(&self) -> rand::rngs::StdRng {
        let op = self.op_counter.fetch_add(1, Ordering::Relaxed);
        seeded(derive_seed(self.seed, op))
    }

    /// Records a true-location check-in into the user's current window.
    pub fn report_checkin(&self, user: UserId, true_location: Point) {
        self.slot(user).lock().manager.record(true_location);
    }

    /// Closes the user's profile window; returns the number of freshly
    /// obfuscated top locations.
    pub fn finalize_window(&self, user: UserId) -> usize {
        let mut rng = self.op_rng();
        self.finalize_window_with(user, &mut rng)
    }

    /// [`SharedEdgeDevice::finalize_window`] with a caller-provided RNG.
    ///
    /// The device's own `op_rng` draws from an atomic operation counter,
    /// so outputs depend on the scheduling of concurrent calls.
    /// Deterministic worker pools instead derive one RNG per user (e.g.
    /// from `(seed, user index)`) and pass it here — results are then
    /// independent of thread count and interleaving.
    pub fn finalize_window_with(&self, user: UserId, rng: &mut dyn rand::RngCore) -> usize {
        let slot = self.slot(user);
        let mut state = slot.lock();
        state.finalize_window(&self.config, rng)
    }

    /// The permanent candidates covering `location`, if any.
    ///
    /// Owned (unlike [`crate::EdgeDevice::candidates`]): the borrow would
    /// otherwise have to hold the user's slot lock.
    pub fn candidates(&self, user: UserId, location: Point) -> Option<Vec<Point>> {
        let slot = self.users.read().get(user).map(Arc::clone)?;
        let state = slot.lock();
        let top = state
            .manager
            .matching_top(location, self.config.top_match_radius_m())?;
        state.obfuscation.table().get(top).map(<[Point]>::to_vec)
    }

    /// Drops every user's cached posterior-weight table (see
    /// [`crate::EdgeDevice::flush_selection_cache`]); outputs are
    /// unaffected, the tables rebuild lazily.
    pub fn flush_selection_cache(&self) {
        for slot in self.users.read().values() {
            slot.lock().selection.invalidate();
        }
    }

    /// Produces the location to report for an ad request at
    /// `current_true` (posterior-selected permanent candidate at top
    /// locations, one-time Laplace elsewhere).
    pub fn reported_location(&self, user: UserId, current_true: Point) -> Point {
        let mut rng = self.op_rng();
        self.reported_location_with(user, current_true, &mut rng)
    }

    /// [`SharedEdgeDevice::reported_location`] with a caller-provided RNG
    /// — the deterministic counterpart for worker pools (see
    /// [`SharedEdgeDevice::finalize_window_with`]).
    pub fn reported_location_with(
        &self,
        user: UserId,
        current_true: Point,
        mut rng: &mut dyn rand::RngCore,
    ) -> Point {
        let slot = self.slot(user);
        let mut state = slot.lock();
        // The shared device is exercised by the scalability harness, not
        // the telemetry-instrumented serving loop — observations are
        // discarded here.
        let mut stats = RequestStats::default();
        state.reported_location(&self.config, &self.nomadic, current_true, &mut rng, &mut stats)
    }

    /// Captures a recovery checkpoint: every user's state plus the
    /// operation counter (this device derives one RNG per operation from
    /// the counter, so the counter *is* the generator position — the raw
    /// RNG state words in the snapshot are unused and zero).
    ///
    /// Each user's slot lock is taken briefly in turn; for a hard
    /// consistency point, pause serving threads around the call.
    pub fn snapshot(&self) -> DeviceSnapshot {
        let map = self.users.read();
        let mut builder = SnapshotBuilder::new();
        for (user, slot) in map.keys().zip(map.values()) {
            builder.capture(user, &slot.lock());
        }
        builder.finish([0; 4], self.op_counter.load(Ordering::SeqCst), StreamMode::Device)
    }

    /// Rebuilds a shared device from a checkpoint taken with the same
    /// `seed`: the operation counter resumes where it stood, so later
    /// operations derive the exact RNG streams the captured device would
    /// have — no released candidate is ever re-drawn.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if the snapshot carries a corrupt table
    /// image or an invalid posterior table.
    pub fn restore(
        config: SystemConfig,
        seed: u64,
        snapshot: &DeviceSnapshot,
    ) -> Result<SharedEdgeDevice, RecoveryError> {
        let device = SharedEdgeDevice::new(config, seed);
        device.op_counter.store(snapshot.op_counter, Ordering::SeqCst);
        {
            let pools = snapshot.pools()?;
            let mut map = device.users.write();
            for record in &snapshot.users {
                let state = restore_user(&config, record, &pools)?;
                *map.entry_or_insert_with(record.user, || {
                    Arc::new(Mutex::new(UserState::new(&config)))
                }) = Arc::new(Mutex::new(state));
            }
        }
        Ok(device)
    }

    /// Batched [`SharedEdgeDevice::reported_location_with`]: answers one
    /// request per entry of `positions`, appending to `out`, under a
    /// *single* acquisition of the user's slot lock.
    ///
    /// This is the concurrent serving fast path: a worker draining a
    /// queue of requests for one user pays the lock (and the directory
    /// read) once per batch instead of once per request, and the RNG is
    /// consumed in exactly the same order as the equivalent sequence of
    /// single-request calls — outputs are bit-for-bit identical.
    pub fn reported_locations_with(
        &self,
        user: UserId,
        positions: &[Point],
        mut rng: &mut dyn rand::RngCore,
        out: &mut Vec<Point>,
    ) {
        let slot = self.slot(user);
        let mut state = slot.lock();
        out.reserve(positions.len());
        let mut stats = RequestStats::default();
        for &current_true in positions {
            out.push(state.reported_location(
                &self.config,
                &self.nomadic,
                current_true,
                &mut rng,
                &mut stats,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn device() -> Arc<SharedEdgeDevice> {
        Arc::new(SharedEdgeDevice::new(
            SystemConfig::builder().build().unwrap(),
            42,
        ))
    }

    #[test]
    fn serves_a_single_user_like_the_sequential_device() {
        let edge = device();
        let user = UserId::new(1);
        let home = Point::new(500.0, 500.0);
        for _ in 0..40 {
            edge.report_checkin(user, home);
        }
        assert_eq!(edge.finalize_window(user), 1);
        let candidates = edge.candidates(user, home).unwrap();
        assert_eq!(candidates.len(), 10);
        for _ in 0..20 {
            assert!(candidates.contains(&edge.reported_location(user, home)));
        }
    }

    #[test]
    fn concurrent_users_do_not_interfere() {
        let edge = device();
        let handles: Vec<_> = (0..8u32)
            .map(|u| {
                let edge = Arc::clone(&edge);
                thread::spawn(move || {
                    let user = UserId::new(u);
                    let home = Point::new(u as f64 * 5_000.0, 0.0);
                    for _ in 0..50 {
                        edge.report_checkin(user, home);
                    }
                    edge.finalize_window(user);
                    let candidates = edge.candidates(user, home).unwrap();
                    for _ in 0..100 {
                        assert!(candidates.contains(&edge.reported_location(user, home)));
                    }
                    candidates
                })
            })
            .collect();
        let all: Vec<Vec<Point>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(edge.user_count(), 8);
        // Every user got their own candidate set.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn concurrent_requests_to_one_user_stay_within_candidates() {
        let edge = device();
        let user = UserId::new(0);
        let home = Point::ORIGIN;
        for _ in 0..40 {
            edge.report_checkin(user, home);
        }
        edge.finalize_window(user);
        let candidates = edge.candidates(user, home).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let edge = Arc::clone(&edge);
                let candidates = candidates.clone();
                thread::spawn(move || {
                    for _ in 0..500 {
                        assert!(candidates.contains(&edge.reported_location(user, home)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn racing_first_contact_creates_one_slot() {
        let edge = device();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let edge = Arc::clone(&edge);
                thread::spawn(move || {
                    edge.report_checkin(UserId::new(7), Point::ORIGIN);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(edge.user_count(), 1);
        // All eight check-ins landed in the same buffer.
        assert_eq!(edge.finalize_window(UserId::new(7)), 1);
    }

    #[test]
    fn externally_seeded_drive_is_schedule_independent() {
        use privlocad_geo::rng::{derive_seed, seeded};
        // Drive two devices with per-user derived RNGs, one forwards and
        // one backwards: candidate tables and reports must match exactly.
        let build = |order: &[u32]| {
            let edge = device();
            let mut reports = std::collections::HashMap::new();
            for &u in order {
                let user = UserId::new(u);
                let home = Point::new(u as f64 * 4_000.0, 0.0);
                for _ in 0..40 {
                    edge.report_checkin(user, home);
                }
                let mut rng = seeded(derive_seed(1_000, u as u64));
                edge.finalize_window_with(user, &mut rng);
                reports.insert(u, edge.reported_location_with(user, home, &mut rng));
            }
            reports
        };
        let forward = build(&[0, 1, 2, 3]);
        let backward = build(&[3, 2, 1, 0]);
        assert_eq!(forward, backward);
    }

    #[test]
    fn batched_requests_match_singular_calls() {
        use privlocad_geo::rng::seeded;
        let user = UserId::new(5);
        let home = Point::new(750.0, 0.0);
        let positions: Vec<Point> = (0..64)
            .map(|i| if i % 5 == 0 { Point::new(30_000.0, 0.0) } else { home })
            .collect();
        let settle = |edge: &SharedEdgeDevice, rng: &mut dyn rand::RngCore| {
            for _ in 0..40 {
                edge.report_checkin(user, home);
            }
            edge.finalize_window_with(user, rng);
        };

        let batched = device();
        let mut rng = seeded(7);
        settle(&batched, &mut rng);
        let mut out = Vec::new();
        batched.reported_locations_with(user, &positions, &mut rng, &mut out);

        let singular = device();
        let mut rng = seeded(7);
        settle(&singular, &mut rng);
        let expected: Vec<Point> = positions
            .iter()
            .map(|&p| singular.reported_location_with(user, p, &mut rng))
            .collect();

        assert_eq!(out, expected);
    }

    #[test]
    fn flush_selection_cache_keeps_outputs_identical() {
        use privlocad_geo::rng::seeded;
        let run = |flush: bool| {
            let edge = device();
            let user = UserId::new(2);
            let home = Point::new(100.0, 100.0);
            let mut rng = seeded(19);
            for _ in 0..40 {
                edge.report_checkin(user, home);
            }
            edge.finalize_window_with(user, &mut rng);
            (0..30)
                .map(|_| {
                    if flush {
                        edge.flush_selection_cache();
                    }
                    edge.reported_location_with(user, home, &mut rng)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn snapshot_restore_resumes_the_operation_streams() {
        let edge = device();
        let user = UserId::new(4);
        let home = Point::new(300.0, 300.0);
        for _ in 0..40 {
            edge.report_checkin(user, home);
        }
        edge.finalize_window(user);
        edge.reported_location(user, home);

        let snap = edge.snapshot();
        let restored = SharedEdgeDevice::restore(edge.config(), 42, &snap).unwrap();
        assert_eq!(restored.user_count(), 1);
        assert_eq!(restored.candidates(user, home), edge.candidates(user, home));
        assert_eq!(
            crate::recovery::candidate_redraws(&snap, &restored.snapshot()).unwrap(),
            0
        );
        // The operation counter resumed: both devices derive the same
        // per-operation RNG streams from here on.
        for _ in 0..20 {
            assert_eq!(
                restored.reported_location(user, home),
                edge.reported_location(user, home)
            );
        }
    }

    #[test]
    fn nomadic_fallback_without_state() {
        let edge = device();
        let p = edge.reported_location(UserId::new(99), Point::new(1.0, 2.0));
        assert!(p.is_finite());
        assert!(edge.candidates(UserId::new(99), Point::new(1.0, 2.0)).is_none());
    }
}
