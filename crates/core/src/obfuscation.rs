use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use privlocad_geo::Point;
use privlocad_mechanisms::{BatchScratch, CandidateLanes, GeoIndParams, Lppm, NFoldGaussian};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The obfuscation table `T` of Section V-C: a permanent map from each top
/// location to its released candidate set.
///
/// Lookups match by *proximity*, not exact coordinates: profile centroids
/// drift by a few meters between windows (GPS jitter averages differently
/// over different check-in samples), and minting a fresh candidate set for
/// every drifted centroid would quietly release extra obfuscations of the
/// same place — exactly the longitudinal leak the system exists to stop.
/// Any top location within the table's `match_radius_m` of a recorded one
/// re-uses the recorded candidates.
///
/// Candidate sets are stored as `Arc<[Point]>`: once released they are
/// immutable, so a fleet authority and every edge serving the user can
/// hold the *same* allocation ([`ObfuscationTable::insert_shared`]) instead
/// of cloning the set per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObfuscationTable {
    match_radius_m: f64,
    entries: Vec<(Point, Arc<[Point]>)>,
}

impl ObfuscationTable {
    /// Creates an empty table with the given proximity-match radius.
    ///
    /// # Panics
    ///
    /// Panics if `match_radius_m` is not positive and finite.
    pub fn new(match_radius_m: f64) -> Self {
        assert!(
            match_radius_m.is_finite() && match_radius_m > 0.0,
            "match radius must be positive and finite"
        );
        ObfuscationTable { match_radius_m, entries: Vec::new() }
    }

    /// The proximity-match radius in meters.
    pub fn match_radius_m(&self) -> f64 {
        self.match_radius_m
    }

    /// Index of the entry covering `location`: the nearest recorded top
    /// within the match radius.
    fn position(&self, location: Point) -> Option<usize> {
        // Serving hot path: one squared distance per entry, no sqrt. The
        // first strictly-nearest entry wins, matching the old
        // filter + min_by pass.
        let radius_sq = self.match_radius_m * self.match_radius_m;
        let mut best: Option<(f64, usize)> = None;
        for (i, (top, _)) in self.entries.iter().enumerate() {
            let d_sq = top.distance_sq(location);
            if d_sq <= radius_sq && best.is_none_or(|(b, _)| d_sq < b) {
                best = Some((d_sq, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Looks up the permanent candidates covering `location`: the nearest
    /// recorded top within the match radius.
    pub fn get(&self, location: Point) -> Option<&[Point]> {
        self.position(location).map(|i| &*self.entries[i].1)
    }

    /// The shared handle to the candidates covering `location` — the
    /// zero-copy handoff the fleet install path uses to give every edge
    /// the same allocation.
    pub fn get_shared(&self, location: Point) -> Option<&Arc<[Point]>> {
        self.position(location).map(|i| &self.entries[i].1)
    }

    /// Returns `true` if `location` is covered by a recorded top location.
    pub fn contains(&self, location: Point) -> bool {
        self.position(location).is_some()
    }

    /// Records the candidates of a *new* top location.
    ///
    /// If `location` is already covered, the existing set is kept — once
    /// released, a candidate set is permanent — and `false` is returned.
    pub fn insert(&mut self, location: Point, candidates: Vec<Point>) -> bool {
        self.insert_shared(location, candidates.into())
    }

    /// [`ObfuscationTable::insert`] for an already-shared candidate set —
    /// an `Arc::clone`, no copy of the points.
    pub fn insert_shared(&mut self, location: Point, candidates: Arc<[Point]>) -> bool {
        if self.contains(location) {
            return false;
        }
        self.entries.push((location, candidates));
        true
    }

    /// Drops every entry while keeping the allocated capacity, so a table
    /// buffer can be reused across logical installs (a device wiping a
    /// departed user, or benchmark steady state) without reallocating.
    ///
    /// This does **not** weaken permanence: the permanence contract binds
    /// the *user's* protection state, which the edge only clears when the
    /// whole state is retired together.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The candidate set at entry `idx` (insertion order).
    fn candidates_at(&self, idx: usize) -> &[Point] {
        &self.entries[idx].1
    }

    /// Iterates the `(top location, candidates)` entries in release
    /// order — used by crash recovery to verify that a restored table
    /// kept every released candidate set bit-for-bit.
    pub fn entries(&self) -> impl Iterator<Item = (Point, &[Point])> {
        self.entries.iter().map(|(top, candidates)| (*top, &**candidates))
    }

    /// Iterates the entries with their shared candidate-set handles —
    /// used by checkpoint capture and footprint accounting, which dedup
    /// by `Arc` identity so a set shared across users is counted (and
    /// serialized) once.
    pub fn shared_entries(&self) -> impl Iterator<Item = (Point, &Arc<[Point]>)> {
        self.entries.iter().map(|(top, candidates)| (*top, candidates))
    }

    /// Number of protected top locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no location is protected yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the table to a compact binary image.
    ///
    /// **Permanence across restarts is a privacy property**: if the table
    /// is lost, the next window would draw *fresh* candidates for the same
    /// top locations, silently spending a second `(r, ε, δ, n)` budget. An
    /// edge deployment must persist this image durably and restore it with
    /// [`ObfuscationTable::decode`] on startup.
    pub fn encode(&self) -> Bytes {
        let candidate_count: usize = self.entries.iter().map(|(_, c)| c.len()).sum();
        let mut buf =
            BytesMut::with_capacity(16 + self.entries.len() * 24 + candidate_count * 16);
        buf.put_f64(self.match_radius_m);
        buf.put_u32(self.entries.len() as u32);
        for (top, candidates) in &self.entries {
            buf.put_f64(top.x);
            buf.put_f64(top.y);
            buf.put_u32(candidates.len() as u32);
            for c in candidates.iter() {
                buf.put_f64(c.x);
                buf.put_f64(c.y);
            }
        }
        buf.freeze()
    }

    /// Restores a table from its binary image.
    ///
    /// # Errors
    ///
    /// Returns [`TableDecodeError`] on truncated input or an invalid match
    /// radius.
    pub fn decode(mut buf: &[u8]) -> Result<Self, TableDecodeError> {
        let need = |buf: &[u8], n: usize| {
            if buf.len() < n {
                Err(TableDecodeError::Truncated)
            } else {
                Ok(())
            }
        };
        need(buf, 12)?;
        let match_radius_m = buf.get_f64();
        if !match_radius_m.is_finite() || match_radius_m <= 0.0 {
            return Err(TableDecodeError::InvalidRadius(match_radius_m));
        }
        let entry_count = buf.get_u32() as usize;
        let mut entries = Vec::with_capacity(entry_count.min(1_024));
        for _ in 0..entry_count {
            need(buf, 20)?;
            let top = Point::new(buf.get_f64(), buf.get_f64());
            let candidate_count = buf.get_u32() as usize;
            need(buf, candidate_count.saturating_mul(16))?;
            let candidates = (0..candidate_count)
                .map(|_| Point::new(buf.get_f64(), buf.get_f64()))
                .collect();
            entries.push((top, candidates));
        }
        Ok(ObfuscationTable { match_radius_m, entries })
    }
}

/// Error restoring an [`ObfuscationTable`] from its binary image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TableDecodeError {
    /// The image ends before the declared content.
    Truncated,
    /// The stored match radius is not positive and finite.
    InvalidRadius(f64),
}

impl std::fmt::Display for TableDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableDecodeError::Truncated => write!(f, "truncated obfuscation-table image"),
            TableDecodeError::InvalidRadius(r) => {
                write!(f, "stored match radius {r} is invalid")
            }
        }
    }
}

impl std::error::Error for TableDecodeError {}

/// The location-obfuscation module: the n-fold Gaussian mechanism plus the
/// permanent obfuscation table.
///
/// The first time a top location is seen, `n` candidates are drawn
/// (spending the one-and-only `(r, ε, δ, n)` budget for that location);
/// every later request re-uses them, so a longitudinal observer's view
/// stops gaining information after the first release.
///
/// # Examples
///
/// ```
/// use privlocad::ObfuscationModule;
/// use privlocad_geo::{rng::seeded, Point};
/// use privlocad_mechanisms::GeoIndParams;
///
/// let params = GeoIndParams::new(500.0, 1.0, 0.01, 10)?;
/// let mut module = ObfuscationModule::new(params, 200.0);
/// let mut rng = seeded(1);
/// let home = Point::new(1_000.0, 2_000.0);
/// let first = module.candidates_for(home, &mut rng).to_vec();
/// let again = module.candidates_for(home, &mut rng).to_vec();
/// assert_eq!(first, again); // permanent
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObfuscationModule {
    mechanism: NFoldGaussian,
    table: ObfuscationTable,
}

impl ObfuscationModule {
    /// Creates the module with a fresh table using `match_radius_m` for
    /// proximity lookups.
    ///
    /// # Panics
    ///
    /// Panics if `match_radius_m` is not positive and finite.
    pub fn new(params: GeoIndParams, match_radius_m: f64) -> Self {
        ObfuscationModule {
            mechanism: NFoldGaussian::new(params),
            table: ObfuscationTable::new(match_radius_m),
        }
    }

    /// The underlying mechanism.
    pub fn mechanism(&self) -> &NFoldGaussian {
        &self.mechanism
    }

    /// The obfuscation table.
    pub fn table(&self) -> &ObfuscationTable {
        &self.table
    }

    /// Returns the permanent candidates covering `top`, generating them on
    /// first use.
    pub fn candidates_for(&mut self, top: Point, rng: &mut dyn RngCore) -> &[Point] {
        // One table scan on the hit path (every request after the first).
        let idx = match self.table.position(top) {
            Some(i) => i,
            None => {
                let candidates = self.mechanism.obfuscate(top, rng);
                self.table.insert(top, candidates);
                self.table.len() - 1
            }
        };
        self.table.candidates_at(idx)
    }

    /// Restores the module from a persisted table image (see
    /// [`ObfuscationTable::encode`] for why persistence matters).
    ///
    /// # Errors
    ///
    /// Propagates [`TableDecodeError`] from the image.
    pub fn with_restored_table(
        params: GeoIndParams,
        image: &[u8],
    ) -> Result<Self, TableDecodeError> {
        Ok(ObfuscationModule {
            mechanism: NFoldGaussian::new(params),
            table: ObfuscationTable::decode(image)?,
        })
    }

    /// Assembles the module around an already-populated table — the
    /// pooled checkpoint restore path builds the table entry by entry
    /// from shared `Arc<[Point]>` handles and hands it over whole.
    pub(crate) fn from_table(params: GeoIndParams, table: ObfuscationTable) -> Self {
        ObfuscationModule { mechanism: NFoldGaussian::new(params), table }
    }

    /// Installs an externally generated candidate set (e.g. one produced
    /// by a fleet-level authority and distributed to every edge serving
    /// the user). Returns `false` — keeping the existing set — if the
    /// location is already covered.
    pub fn install(&mut self, top: Point, candidates: Vec<Point>) -> bool {
        self.table.insert(top, candidates)
    }

    /// [`ObfuscationModule::install`] for a candidate set already shared
    /// behind an `Arc` — the fleet distribution path, one `Arc::clone` per
    /// edge instead of a per-edge copy of the points.
    pub fn install_shared(&mut self, top: Point, candidates: Arc<[Point]>) -> bool {
        self.table.insert_shared(top, candidates)
    }

    /// Ensures every location in `tops` is covered; returns how many new
    /// candidate sets were generated (the Table II workload per user).
    ///
    /// Candidates are drawn through the batched lane kernel, consuming
    /// `rng` in exactly the order the per-top scalar loop would — the
    /// output is bit-for-bit what the pre-batching implementation
    /// released from the same stream.
    pub fn obfuscate_top_set(&mut self, tops: &[Point], rng: &mut dyn RngCore) -> usize {
        let mut scratch = BatchScratch::new();
        let mut lanes = CandidateLanes::new();
        self.obfuscate_top_set_with(tops, rng, &mut scratch, &mut lanes)
    }

    /// Scratch-reusing variant of [`ObfuscationModule::obfuscate_top_set`]
    /// for callers that close many windows (an edge device, the bench
    /// harness): the uniform/angle/radius lanes live in `scratch`/`lanes`
    /// and are reused across calls.
    pub fn obfuscate_top_set_with(
        &mut self,
        tops: &[Point],
        rng: &mut dyn RngCore,
        scratch: &mut BatchScratch,
        lanes: &mut CandidateLanes,
    ) -> usize {
        let fresh = self.select_fresh(tops);
        if fresh.is_empty() {
            return 0;
        }
        lanes.clear();
        self.mechanism.obfuscate_shared_stream_into(&fresh, rng, scratch, lanes);
        self.install_lanes(&fresh, lanes)
    }

    /// Fleet-authority variant: each fresh top draws from its **own
    /// derived stream** `seeded(derive_seed(master, *pair_counter + k))`,
    /// and `pair_counter` advances by the number of fresh sets — giving
    /// every `(user-window, top)` pair a globally unique stream index, so
    /// the generated candidates are independent of batch boundaries and of
    /// how many users closed windows before this one on any given thread.
    pub fn obfuscate_top_set_derived(
        &mut self,
        tops: &[Point],
        master: u64,
        pair_counter: &mut u64,
        scratch: &mut BatchScratch,
        lanes: &mut CandidateLanes,
    ) -> usize {
        let fresh = self.select_fresh(tops);
        if fresh.is_empty() {
            return 0;
        }
        lanes.clear();
        self.mechanism.obfuscate_many_into(&fresh, master, *pair_counter, scratch, lanes);
        *pair_counter += fresh.len() as u64;
        self.install_lanes(&fresh, lanes)
    }

    /// The tops needing a fresh candidate set, in input order.
    ///
    /// Mirrors the scalar insert-as-you-go loop exactly: a top is fresh
    /// unless the table already covers it *or* an earlier fresh top of
    /// this same batch lands within the match radius (the scalar loop
    /// would have inserted that one before checking this one).
    fn select_fresh(&self, tops: &[Point]) -> Vec<Point> {
        let radius_sq = self.table.match_radius_m() * self.table.match_radius_m();
        let mut fresh: Vec<Point> = Vec::new();
        for &top in tops {
            let covered = self.table.contains(top)
                || fresh.iter().any(|f| f.distance_sq(top) <= radius_sq);
            if !covered {
                fresh.push(top);
            }
        }
        fresh
    }

    /// Installs the generated lanes: `n` consecutive points per fresh top,
    /// each copied once into its permanent `Arc<[Point]>` home.
    fn install_lanes(&mut self, fresh: &[Point], lanes: &CandidateLanes) -> usize {
        let n = self.mechanism.params().n();
        for (i, &top) in fresh.iter().enumerate() {
            self.table.insert_shared(top, lanes.arc_points(i * n..(i + 1) * n));
        }
        fresh.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::seeded;

    fn module(n: usize) -> ObfuscationModule {
        ObfuscationModule::new(GeoIndParams::new(500.0, 1.0, 0.01, n).unwrap(), 200.0)
    }

    #[test]
    fn candidates_are_permanent() {
        let mut m = module(10);
        let mut rng = seeded(2);
        let a = m.candidates_for(Point::new(5.0, 5.0), &mut rng).to_vec();
        let b = m.candidates_for(Point::new(5.0, 5.0), &mut rng).to_vec();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(m.table().len(), 1);
    }

    #[test]
    fn cleared_table_accepts_reinstalls() {
        let mut table = ObfuscationTable::new(200.0);
        let top = Point::new(5.0, 5.0);
        assert!(table.insert(top, vec![Point::ORIGIN]));
        assert!(!table.insert(top, vec![Point::ORIGIN]), "permanent while live");
        table.clear();
        assert!(table.is_empty());
        assert!(table.insert(top, vec![Point::new(1.0, 1.0)]), "retired state reinstalls");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn drifted_centroids_reuse_candidates() {
        // The same home profiled in two windows: centroid drifts by a few
        // meters, candidates must not be re-released.
        let mut m = module(10);
        let mut rng = seeded(3);
        let a = m.candidates_for(Point::new(100.0, 100.0), &mut rng).to_vec();
        let b = m.candidates_for(Point::new(108.0, 95.0), &mut rng).to_vec();
        assert_eq!(a, b);
        assert_eq!(m.table().len(), 1);
    }

    #[test]
    fn distant_locations_get_their_own_sets() {
        let mut m = module(3);
        let mut rng = seeded(4);
        let a = m.candidates_for(Point::new(0.0, 0.0), &mut rng).to_vec();
        let c = m.candidates_for(Point::new(500.0, 0.0), &mut rng).to_vec();
        assert_ne!(a, c);
        assert_eq!(m.table().len(), 2);
    }

    #[test]
    fn get_picks_nearest_covering_entry() {
        let mut t = ObfuscationTable::new(200.0);
        t.insert(Point::new(0.0, 0.0), vec![Point::new(1.0, 0.0)]);
        t.insert(Point::new(300.0, 0.0), vec![Point::new(2.0, 0.0)]);
        let got = t.get(Point::new(180.0, 0.0)).unwrap();
        assert_eq!(got, &[Point::new(2.0, 0.0)]); // 120 m away beats 180 m
        assert!(t.get(Point::new(600.0, 0.0)).is_none());
    }

    #[test]
    fn insert_never_overwrites_covered_locations() {
        let mut t = ObfuscationTable::new(200.0);
        assert!(t.insert(Point::ORIGIN, vec![Point::new(1.0, 1.0)]));
        assert!(!t.insert(Point::new(10.0, 0.0), vec![Point::new(9.0, 9.0)]));
        assert_eq!(t.get(Point::ORIGIN).unwrap(), &[Point::new(1.0, 1.0)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn obfuscate_top_set_counts_fresh_only() {
        let mut m = module(2);
        let mut rng = seeded(4);
        let tops = [Point::new(0.0, 0.0), Point::new(8_000.0, 0.0)];
        assert_eq!(m.obfuscate_top_set(&tops, &mut rng), 2);
        assert_eq!(m.obfuscate_top_set(&tops, &mut rng), 0);
        let more = [Point::new(20.0, 0.0), Point::new(0.0, 8_000.0)];
        assert_eq!(m.obfuscate_top_set(&more, &mut rng), 1);
        assert_eq!(m.table().len(), 3);
    }

    #[test]
    fn obfuscate_top_set_matches_the_scalar_reference_stream() {
        // Bit-identity with the pre-batching per-top loop: the batched
        // kernel consumes the same rng stream and releases the same points,
        // including the interleaved skip of a top covered by an earlier
        // fresh set of the same batch.
        let mut m = module(5);
        let mut rng = seeded(21);
        let tops = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0), // within 200 m of the first: no own set
            Point::new(5_000.0, 0.0),
        ];
        assert_eq!(m.obfuscate_top_set(&tops, &mut rng), 2);
        let mech = *m.mechanism();
        let mut scalar_rng = seeded(21);
        let first = mech.obfuscate(tops[0], &mut scalar_rng);
        let third = mech.obfuscate(tops[2], &mut scalar_rng);
        assert_eq!(m.table().get(tops[0]).unwrap(), &first[..]);
        assert_eq!(m.table().get(tops[2]).unwrap(), &third[..]);
        assert_eq!(m.table().len(), 2);
    }

    #[test]
    fn derived_top_set_streams_are_indexed_by_pair_counter() {
        use privlocad_geo::rng::derive_seed;
        use privlocad_mechanisms::{BatchScratch, CandidateLanes};
        let mut m = module(4);
        let mut scratch = BatchScratch::new();
        let mut lanes = CandidateLanes::new();
        let mut counter = 3u64;
        let tops = [Point::new(0.0, 0.0), Point::new(9_000.0, 0.0)];
        assert_eq!(
            m.obfuscate_top_set_derived(&tops, 55, &mut counter, &mut scratch, &mut lanes),
            2
        );
        assert_eq!(counter, 5);
        let mech = *m.mechanism();
        for (k, &top) in tops.iter().enumerate() {
            let mut rng = seeded(derive_seed(55, 3 + k as u64));
            assert_eq!(m.table().get(top).unwrap(), &mech.obfuscate(top, &mut rng)[..]);
        }
        // Re-running generates nothing and leaves the counter untouched —
        // candidate permanence survives the batched path.
        assert_eq!(
            m.obfuscate_top_set_derived(&tops, 55, &mut counter, &mut scratch, &mut lanes),
            0
        );
        assert_eq!(counter, 5);
    }

    #[test]
    fn shared_installs_reuse_one_allocation() {
        use std::sync::Arc;
        let mut a = module(3);
        let mut b = module(3);
        let candidates: Arc<[Point]> = vec![Point::new(1.0, 2.0); 3].into();
        assert!(a.install_shared(Point::ORIGIN, Arc::clone(&candidates)));
        assert!(b.install_shared(Point::ORIGIN, Arc::clone(&candidates)));
        // Two tables, three handles, one allocation.
        assert_eq!(Arc::strong_count(&candidates), 3);
        assert!(Arc::ptr_eq(a.table().get_shared(Point::ORIGIN).unwrap(), &candidates));
        // Permanence still holds for the shared path.
        assert!(!a.install_shared(Point::new(5.0, 0.0), Arc::clone(&candidates)));
        assert_eq!(a.table().len(), 1);
    }

    #[test]
    fn empty_table_queries() {
        let t = ObfuscationTable::new(200.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.get(Point::ORIGIN).is_none());
        assert!(!t.contains(Point::ORIGIN));
        assert_eq!(t.match_radius_m(), 200.0);
    }

    #[test]
    #[should_panic(expected = "match radius must be positive")]
    fn rejects_bad_match_radius() {
        let _ = ObfuscationTable::new(f64::NAN);
    }

    #[test]
    fn table_image_round_trips() {
        let mut m = module(4);
        let mut rng = seeded(9);
        m.candidates_for(Point::new(0.0, 0.0), &mut rng);
        m.candidates_for(Point::new(9_000.0, -3.5), &mut rng);
        let image = m.table().encode();
        let restored = ObfuscationTable::decode(&image).unwrap();
        assert_eq!(&restored, m.table());
    }

    #[test]
    fn restored_module_does_not_re_release() {
        // The privacy point of persistence: after a restart the same top
        // location yields the SAME candidates, not fresh ones.
        let params = GeoIndParams::new(500.0, 1.0, 0.01, 10).unwrap();
        let mut m = ObfuscationModule::new(params, 200.0);
        let mut rng = seeded(10);
        let before = m.candidates_for(Point::new(1.0, 2.0), &mut rng).to_vec();
        let image = m.table().encode();
        let mut restored = ObfuscationModule::with_restored_table(params, &image).unwrap();
        let after = restored.candidates_for(Point::new(1.0, 2.0), &mut rng).to_vec();
        assert_eq!(before, after);
        assert_eq!(restored.obfuscate_top_set(&[Point::new(1.0, 2.0)], &mut rng), 0);
    }

    #[test]
    fn decode_rejects_corrupt_images() {
        let mut m = module(2);
        let mut rng = seeded(11);
        m.candidates_for(Point::ORIGIN, &mut rng);
        let image = m.table().encode();
        assert_eq!(
            ObfuscationTable::decode(&image[..image.len() - 1]),
            Err(TableDecodeError::Truncated)
        );
        assert_eq!(ObfuscationTable::decode(&[]), Err(TableDecodeError::Truncated));
        // Corrupt the radius field (first 8 bytes) to NaN.
        let mut bad = image.to_vec();
        bad[..8].copy_from_slice(&f64::NAN.to_be_bytes());
        assert!(matches!(
            ObfuscationTable::decode(&bad),
            Err(TableDecodeError::InvalidRadius(_))
        ));
    }

    #[test]
    fn empty_table_round_trips() {
        let t = ObfuscationTable::new(150.0);
        let restored = ObfuscationTable::decode(&t.encode()).unwrap();
        assert_eq!(restored, t);
        assert_eq!(restored.match_radius_m(), 150.0);
    }

    #[test]
    fn candidates_are_centered_near_the_top_statistically() {
        let mut m = module(200);
        let mut rng = seeded(5);
        let top = Point::new(1_000.0, -2_000.0);
        let cands = m.candidates_for(top, &mut rng);
        let mean = privlocad_geo::centroid(cands).unwrap();
        // With 200 candidates the sample mean should be within ~3σ/√200.
        let tol = 3.0 * m.mechanism().sigma() / (200f64).sqrt();
        assert!(mean.distance(top) < tol, "mean off by {}", mean.distance(top));
    }
}
