//! The utilization rate metric (Definition 4).
//!
//! `UR = |AOI ∩ AOR| / |AOI|` where the AOI is the targeting disc of radius
//! `R` around the user's *true* location and the AOR is the union of the
//! same disc re-centered on each released obfuscated location (an ad can be
//! requested from any of the `n` candidates).

use privlocad_geo::{Circle, Point};
use privlocad_mechanisms::Lppm;
use rand::Rng;

use crate::montecarlo::Fanout;

/// Exact utilization rate for a single obfuscated output: the circle-lens
/// area between the AOI and the shifted AOR over the AOI area.
///
/// # Examples
///
/// ```
/// use privlocad_geo::{Circle, Point};
/// use privlocad_metrics::utilization::analytic;
///
/// let aoi = Circle::new(Point::ORIGIN, 5_000.0)?;
/// assert_eq!(analytic(&aoi, Point::ORIGIN), 1.0);          // no shift
/// assert_eq!(analytic(&aoi, Point::new(10_000.0, 0.0)), 0.0); // disjoint
/// # Ok::<(), privlocad_geo::GeoError>(())
/// ```
pub fn analytic(aoi: &Circle, aor_center: Point) -> f64 {
    let aor = aoi.recenter(aor_center);
    aoi.intersection_area(&aor) / aoi.area()
}

/// Deterministic grid estimate of the union coverage
/// `|AOI ∩ ⋃ᵢ AORᵢ| / |AOI|`.
///
/// The AOI's bounding square is discretized into `resolution²` cells; the
/// fraction of in-AOI cell centers covered by at least one AOR is
/// returned. Error is O(1/resolution).
///
/// # Panics
///
/// Panics if `resolution` is zero.
pub fn coverage_grid(aoi: &Circle, aor_centers: &[Point], resolution: usize) -> f64 {
    assert!(resolution > 0, "resolution must be positive");
    let r = aoi.radius();
    let r_sq = r * r;
    let c = aoi.center();
    let step = 2.0 * r / resolution as f64;
    let mut inside = 0usize;
    let mut covered = 0usize;
    for ix in 0..resolution {
        let x = c.x - r + (ix as f64 + 0.5) * step;
        for iy in 0..resolution {
            let y = c.y - r + (iy as f64 + 0.5) * step;
            let p = Point::new(x, y);
            if c.distance_sq(p) > r_sq {
                continue;
            }
            inside += 1;
            if aor_centers.iter().any(|&q| q.distance_sq(p) <= r_sq) {
                covered += 1;
            }
        }
    }
    if inside == 0 {
        0.0
    } else {
        covered as f64 / inside as f64
    }
}

/// Monte-Carlo estimate of the union coverage with `samples` uniform
/// points in the AOI. Unbiased; standard error ≈ `0.5/√samples`.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn coverage_sampled<R: Rng + ?Sized>(
    aoi: &Circle,
    aor_centers: &[Point],
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "at least one sample is required");
    let r_sq = aoi.radius() * aoi.radius();
    let mut covered = 0usize;
    for _ in 0..samples {
        let p = aoi.sample_uniform(rng);
        if aor_centers.iter().any(|&q| q.distance_sq(p) <= r_sq) {
            covered += 1;
        }
    }
    covered as f64 / samples as f64
}

/// Number of in-AOI sample points used per trial by [`measure`].
pub const DEFAULT_SAMPLES_PER_TRIAL: usize = 512;

/// Runs `trials` independent releases of `mech` (real location at the
/// origin, WLOG — every mechanism here is translation-invariant) and
/// returns the per-trial utilization rate at targeting radius
/// `targeting_radius_m`.
///
/// Single-output releases are scored with the exact lens formula; multi-
/// output releases with [`coverage_sampled`] at
/// [`DEFAULT_SAMPLES_PER_TRIAL`] points. Trials run in parallel but are
/// deterministically seeded.
///
/// # Panics
///
/// Panics if `targeting_radius_m` is not positive and finite.
pub fn measure(mech: &dyn Lppm, targeting_radius_m: f64, trials: usize, seed: u64) -> Vec<f64> {
    measure_with(mech, targeting_radius_m, trials, seed, DEFAULT_SAMPLES_PER_TRIAL)
}

/// [`measure`] with an explicit per-trial sample budget.
///
/// # Panics
///
/// Panics if `targeting_radius_m` is invalid or `samples_per_trial` is 0.
pub fn measure_with(
    mech: &dyn Lppm,
    targeting_radius_m: f64,
    trials: usize,
    seed: u64,
    samples_per_trial: usize,
) -> Vec<f64> {
    measure_fanout(mech, targeting_radius_m, trials, Fanout::new(seed), samples_per_trial)
}

/// [`measure_with`] driven by an explicit [`Fanout`] — the caller controls
/// both the seed and the worker-thread count. Results are identical for
/// any thread count (per-trial seeding; the candidate buffer is cleared
/// between trials).
///
/// # Panics
///
/// Panics if `targeting_radius_m` is invalid or `samples_per_trial` is 0.
pub fn measure_fanout(
    mech: &dyn Lppm,
    targeting_radius_m: f64,
    trials: usize,
    fanout: Fanout,
    samples_per_trial: usize,
) -> Vec<f64> {
    let aoi = Circle::new(Point::ORIGIN, targeting_radius_m)
        .expect("targeting radius must be positive and finite");
    assert!(samples_per_trial > 0, "at least one sample per trial");
    fanout.run_trials_with_scratch(trials, Vec::new, move |_, rng, outputs: &mut Vec<Point>| {
        outputs.clear();
        mech.obfuscate_into(Point::ORIGIN, rng, outputs);
        if outputs.len() == 1 {
            analytic(&aoi, outputs[0])
        } else {
            coverage_sampled(&aoi, outputs, samples_per_trial, rng)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::seeded;
    use privlocad_mechanisms::{GeoIndParams, NFoldGaussian, PlainComposition};

    fn aoi() -> Circle {
        Circle::new(Point::ORIGIN, 5_000.0).unwrap()
    }

    #[test]
    fn analytic_known_values() {
        // Equal circles at distance R overlap ≈ 39.1 % of either disc.
        let ur = analytic(&aoi(), Point::new(5_000.0, 0.0));
        assert!((ur - 0.391).abs() < 0.001, "ur {ur}");
    }

    #[test]
    fn grid_matches_analytic_for_single_center() {
        for d in [0.0, 1_000.0, 3_000.0, 5_000.0, 8_000.0, 11_000.0] {
            let exact = analytic(&aoi(), Point::new(d, 0.0));
            let grid = coverage_grid(&aoi(), &[Point::new(d, 0.0)], 400);
            assert!((exact - grid).abs() < 0.01, "d={d}: exact {exact} grid {grid}");
        }
    }

    #[test]
    fn sampled_matches_analytic_for_single_center() {
        let mut rng = seeded(3);
        let exact = analytic(&aoi(), Point::new(4_000.0, 0.0));
        let mc = coverage_sampled(&aoi(), &[Point::new(4_000.0, 0.0)], 50_000, &mut rng);
        assert!((exact - mc).abs() < 0.01, "exact {exact} mc {mc}");
    }

    #[test]
    fn union_coverage_never_below_best_single(/* union ⊇ each member */) {
        let centers = [
            Point::new(3_000.0, 0.0),
            Point::new(-4_000.0, 1_000.0),
            Point::new(0.0, 6_000.0),
        ];
        let union = coverage_grid(&aoi(), &centers, 300);
        for &c in &centers {
            assert!(union >= analytic(&aoi(), c) - 0.01);
        }
    }

    #[test]
    fn coverage_of_matching_center_is_one() {
        assert_eq!(coverage_grid(&aoi(), &[Point::ORIGIN], 200), 1.0);
        let mut rng = seeded(1);
        assert_eq!(coverage_sampled(&aoi(), &[Point::ORIGIN], 1_000, &mut rng), 1.0);
    }

    #[test]
    fn coverage_of_no_centers_is_zero() {
        assert_eq!(coverage_grid(&aoi(), &[], 100), 0.0);
        let mut rng = seeded(1);
        assert_eq!(coverage_sampled(&aoi(), &[], 100, &mut rng), 0.0);
    }

    #[test]
    fn measure_returns_unit_interval_values() {
        let mech = NFoldGaussian::new(GeoIndParams::new(500.0, 1.0, 0.01, 5).unwrap());
        let urs = measure(&mech, 5_000.0, 100, 11);
        assert_eq!(urs.len(), 100);
        assert!(urs.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn measure_is_deterministic() {
        let mech = NFoldGaussian::new(GeoIndParams::new(500.0, 1.0, 0.01, 3).unwrap());
        assert_eq!(measure(&mech, 5_000.0, 50, 7), measure(&mech, 5_000.0, 50, 7));
    }

    #[test]
    fn n_fold_beats_composition_on_average() {
        // The headline of Fig. 7, in miniature.
        let params = GeoIndParams::new(500.0, 1.0, 0.01, 10).unwrap();
        let nfold = NFoldGaussian::new(params);
        let comp = PlainComposition::new(params);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let u_nfold = mean(&measure(&nfold, 5_000.0, 300, 1));
        let u_comp = mean(&measure(&comp, 5_000.0, 300, 1));
        assert!(
            u_nfold > u_comp + 0.2,
            "n-fold {u_nfold} should clearly beat composition {u_comp}"
        );
    }

    #[test]
    fn more_outputs_raise_utilization_for_n_fold() {
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let u1 = mean(&measure(
            &NFoldGaussian::new(GeoIndParams::new(500.0, 1.0, 0.01, 1).unwrap()),
            5_000.0,
            300,
            2,
        ));
        let u10 = mean(&measure(
            &NFoldGaussian::new(GeoIndParams::new(500.0, 1.0, 0.01, 10).unwrap()),
            5_000.0,
            300,
            2,
        ));
        assert!(u10 > u1, "n=10 ({u10}) should beat n=1 ({u1})");
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn grid_rejects_zero_resolution() {
        let _ = coverage_grid(&aoi(), &[], 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn sampled_rejects_zero_samples() {
        let mut rng = seeded(0);
        let _ = coverage_sampled(&aoi(), &[], 0, &mut rng);
    }
}
