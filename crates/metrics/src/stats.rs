//! Summary statistics, quantiles, empirical CDFs, and binomial confidence
//! intervals.

use privlocad_mechanisms::special::normal_quantile;
use serde::{Deserialize, Serialize};

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation
/// between order statistics (type-7, the common default).
///
/// # Panics
///
/// Panics if `values` is empty, `q ∉ [0, 1]`, or a value is NaN.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::stats::quantile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 0.5), 2.5);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// ```
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} must be in [0, 1]");
    let mut xs = values.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let w = pos - lo as f64;
        xs[lo] * (1.0 - w) + xs[hi] * w
    }
}

/// The paper's "minimal utilization rate υ at confidence α" (Equation 24):
/// the largest υ with `Pr(UR ≥ υ) = α`, i.e. the `(1 − α)`-quantile of the
/// UR sample.
///
/// # Panics
///
/// Panics under the same conditions as [`quantile`].
///
/// # Examples
///
/// ```
/// use privlocad_metrics::stats::min_rate_at_confidence;
///
/// let urs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
/// let v = min_rate_at_confidence(&urs, 0.9);
/// assert!((v - 0.109).abs() < 0.01); // ~10th percentile
/// ```
pub fn min_rate_at_confidence(values: &[f64], alpha: f64) -> f64 {
    quantile(values, 1.0 - alpha)
}

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for singletons).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of an empty sample");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            median: quantile(values, 0.5),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Spearman rank correlation coefficient between two paired samples, with
/// average ranks for ties.
///
/// Fig. 3's claim — "the users' location entropy declines with the
/// increase of the number of check-ins" — is a monotone association, which
/// Spearman's ρ measures directly (ρ < 0 confirms the decline without
/// assuming linearity).
///
/// # Panics
///
/// Panics if the slices differ in length, are shorter than 2, or contain
/// NaN.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::stats::spearman;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert!((spearman(&xs, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
/// assert!((spearman(&xs, &[9.0, 7.0, 5.0, 3.0]) + 1.0).abs() < 1e-12);
/// ```
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    assert!(xs.len() >= 2, "at least two pairs are required");
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    // Pearson correlation of the ranks.
    let n = rx.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut num = 0.0;
    let mut den_x = 0.0;
    let mut den_y = 0.0;
    for (a, b) in rx.iter().zip(&ry) {
        num += (a - mean) * (b - mean);
        den_x += (a - mean) * (a - mean);
        den_y += (b - mean) * (b - mean);
    }
    // lint:allow(float-eq): a constant sample yields an exactly-zero sum of squares; this guards the 0/0 case only
    if den_x == 0.0 || den_y == 0.0 {
        return 0.0; // a constant sample carries no ordering information
    }
    num / (den_x * den_y).sqrt()
}

fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("values must not be NaN"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Wilson score interval for a binomial proportion.
///
/// The attack success rates of Fig. 6 are proportions over a finite user
/// sample; the Wilson interval gives calibrated error bars even near 0
/// or 1 (where the naive ±z√(p(1−p)/n) interval collapses), which matters
/// because the defense arm sits at ~0 %.
///
/// Returns `(low, high)` at the given two-sided confidence level.
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or
/// `confidence ∉ (0, 1)`.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::stats::wilson_interval;
///
/// let (lo, hi) = wilson_interval(0, 500, 0.95);
/// assert_eq!(lo, 0.0);
/// assert!(hi < 0.01); // "0 of 500" still bounds the rate below 1 %
/// ```
pub fn wilson_interval(successes: usize, trials: usize, confidence: f64) -> (f64, f64) {
    assert!(trials > 0, "at least one trial is required");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(confidence > 0.0 && confidence < 1.0, "confidence must be in (0, 1)");
    let z = normal_quantile(1.0 - (1.0 - confidence) / 2.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// An empirical cumulative distribution function.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::stats::Ecdf;
///
/// let ecdf = Ecdf::new(&[1.0, 2.0, 2.0, 5.0]);
/// assert_eq!(ecdf.eval(0.0), 0.0);
/// assert_eq!(ecdf.eval(2.0), 0.75);
/// assert_eq!(ecdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of a sample.
    ///
    /// # Panics
    ///
    /// Panics if a value is NaN.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        Ecdf { sorted }
    }

    /// `F(x)`: the fraction of the sample ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Evaluates the ECDF at each of `xs`.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` for an empty sample.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_extremes_and_median() {
        let xs = [10.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 0.5), 20.0);
        assert_eq!(quantile(&xs, 1.0), 30.0);
        assert_eq!(quantile(&xs, 0.25), 15.0);
    }

    #[test]
    fn quantile_single_value() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn min_rate_is_low_quantile() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let v = min_rate_at_confidence(&xs, 0.9);
        assert!((v - 0.1).abs() < 0.01);
        // Higher confidence → smaller guaranteed rate.
        assert!(min_rate_at_confidence(&xs, 0.99) < v);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_of_singleton() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn spearman_extremes_and_independence() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let up: Vec<f64> = xs.iter().map(|x| x * x).collect(); // monotone, nonlinear
        assert!((spearman(&xs, &up) - 1.0).abs() < 1e-12);
        let down: Vec<f64> = xs.iter().map(|x| -x.exp()).collect();
        assert!((spearman(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 6.0, 7.0];
        let rho = spearman(&xs, &ys);
        assert!((rho - 1.0).abs() < 1e-12, "rho {rho}");
    }

    #[test]
    fn spearman_constant_sample_is_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn spearman_length_mismatch() {
        let _ = spearman(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn wilson_contains_the_point_estimate() {
        for &(s, n) in &[(0usize, 10usize), (5, 10), (10, 10), (1, 1000), (999, 1000)] {
            let p = s as f64 / n as f64;
            let (lo, hi) = wilson_interval(s, n, 0.95);
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "s={s} n={n}: [{lo}, {hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(50, 100, 0.95);
        let (lo2, hi2) = wilson_interval(500, 1_000, 0.95);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_zero_successes_has_positive_upper_bound() {
        let (lo, hi) = wilson_interval(0, 37_262, 0.95);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 2e-4, "hi {hi}");
    }

    #[test]
    fn wilson_matches_reference_value() {
        // Classic check: 8/10 at 95 % → (0.490, 0.943) (Wilson, two-sided).
        let (lo, hi) = wilson_interval(8, 10, 0.95);
        assert!((lo - 0.490).abs() < 0.005, "lo {lo}");
        assert!((hi - 0.943).abs() < 0.005, "hi {hi}");
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed trials")]
    fn wilson_rejects_bad_counts() {
        let _ = wilson_interval(2, 1, 0.95);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::new(&[1.0, 3.0]);
        assert_eq!(e.eval(0.99), 0.0);
        assert_eq!(e.eval(1.0), 0.5);
        assert_eq!(e.eval(2.9), 0.5);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(5.0), 0.0);
    }

    #[test]
    fn ecdf_eval_many_is_monotone() {
        let e = Ecdf::new(&[0.5, 1.5, 2.5, 3.5]);
        let ys = e.eval_many(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        for w in ys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
