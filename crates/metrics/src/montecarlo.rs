//! Deterministic parallel fan-out: the workspace's shared execution layer.
//!
//! The paper runs 100,000 Monte-Carlo trials per parameter combination over
//! a 37,262-user population; every experiment in the reproduction funnels
//! its per-trial and per-user work through this module. The engine spreads
//! work over threads while keeping results **bit-for-bit reproducible**:
//!
//! * every trial (or item) gets its own RNG derived from
//!   `(master seed, index)` via [`derive_seed`], never from a worker-local
//!   stream, so the outcome is independent of the thread count, the shard
//!   layout, and the scheduler;
//! * results are written into pre-allocated, index-addressed slots, so
//!   collection order equals trial order with no reordering step.
//!
//! [`Fanout`] is the configurable entry point (`threads == 0` means "use
//! the available parallelism"); [`run_trials`] and
//! [`run_trials_with_workers`] remain as thin historical wrappers.

use privlocad_geo::rng::{derive_seed, seeded};
use rand::rngs::StdRng;

/// A deterministic parallel executor with a fixed master seed and thread
/// count.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::montecarlo::Fanout;
/// use rand::Rng;
///
/// let serial = Fanout::with_threads(9, 1);
/// let parallel = Fanout::with_threads(9, 8);
/// let a = serial.run_trials(1_000, |_, rng| rng.gen::<u64>());
/// let b = parallel.run_trials(1_000, |_, rng| rng.gen::<u64>());
/// assert_eq!(a, b); // identical for any thread count
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fanout {
    seed: u64,
    threads: usize,
}

impl Fanout {
    /// An executor using the machine's available parallelism.
    pub fn new(seed: u64) -> Self {
        Fanout { seed, threads: 0 }
    }

    /// An executor with an explicit thread count; `0` means "auto".
    pub fn with_threads(seed: u64, threads: usize) -> Self {
        Fanout { seed, threads }
    }

    /// The master seed every per-index RNG derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same executor with a different master seed.
    pub fn reseeded(&self, seed: u64) -> Self {
        Fanout { seed, threads: self.threads }
    }

    /// The resolved worker count (auto-detected when constructed with `0`).
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Runs `trials` independent trials of `f` and collects the results in
    /// trial order. `f` receives the trial index and a per-trial RNG seeded
    /// from `(seed, trial)`.
    pub fn run_trials<T, F>(&self, trials: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut StdRng) -> T + Sync,
    {
        let seed = self.seed;
        self.run_sharded(trials, |base, slots| {
            for (offset, out) in slots.iter_mut().enumerate() {
                let trial = base + offset;
                let mut rng = seeded(derive_seed(seed, trial as u64));
                *out = Some(f(trial, &mut rng));
            }
        })
    }

    /// Like [`Fanout::run_trials`], with a per-worker scratch value built by
    /// `init` and passed mutably to every trial the worker runs — the hook
    /// hot loops use to reuse allocation-heavy buffers across trials.
    ///
    /// Determinism contract: `f` must not let results depend on scratch
    /// state carried over from previous trials (reset what you read), since
    /// which trials share a scratch depends on the shard layout.
    pub fn run_trials_with_scratch<T, S, I, F>(&self, trials: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(usize, &mut StdRng, &mut S) -> T + Sync,
    {
        let seed = self.seed;
        self.run_sharded(trials, |base, slots| {
            let mut scratch = init();
            for (offset, out) in slots.iter_mut().enumerate() {
                let trial = base + offset;
                let mut rng = seeded(derive_seed(seed, trial as u64));
                *out = Some(f(trial, &mut rng, &mut scratch));
            }
        })
    }

    /// Applies `f` to every item of a slice in parallel (index-sharded),
    /// collecting results in item order. For pure per-item work — no RNG.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.run_sharded(items.len(), |base, slots| {
            for (offset, out) in slots.iter_mut().enumerate() {
                let index = base + offset;
                *out = Some(f(index, &items[index]));
            }
        })
    }

    /// Like [`Fanout::map`], but each item additionally receives an RNG
    /// seeded from `(seed, index)` — the user-level sharding used by the
    /// edge-device sweeps, where item `i` is user `i`.
    pub fn map_seeded<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I, &mut StdRng) -> T + Sync,
    {
        let seed = self.seed;
        self.run_sharded(items.len(), |base, slots| {
            for (offset, out) in slots.iter_mut().enumerate() {
                let index = base + offset;
                let mut rng = seeded(derive_seed(seed, index as u64));
                *out = Some(f(index, &items[index], &mut rng));
            }
        })
    }

    /// The sharding engine: splits `0..n` into contiguous chunks, one per
    /// worker, and lets `run_shard` fill each chunk's slots.
    fn run_sharded<T, F>(&self, n: usize, run_shard: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut [Option<T>]) + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads().min(n).max(1);
        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let chunk = n.div_ceil(workers);
        if workers == 1 {
            run_shard(0, &mut results);
        } else {
            std::thread::scope(|scope| {
                for (w, slots) in results.chunks_mut(chunk).enumerate() {
                    let run_shard = &run_shard;
                    scope.spawn(move || run_shard(w * chunk, slots));
                }
            });
        }
        results.into_iter().map(|r| r.expect("every index ran")).collect()
    }
}

/// Runs `trials` independent trials of `f` in parallel and collects the
/// results in trial order.
///
/// `f` receives the trial index and a per-trial RNG. The number of worker
/// threads defaults to the available parallelism.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::montecarlo::run_trials;
/// use rand::Rng;
///
/// let xs = run_trials(1_000, 9, |_, rng| rng.gen::<f64>());
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!((mean - 0.5).abs() < 0.05);
/// // Fully reproducible regardless of thread count:
/// assert_eq!(xs, run_trials(1_000, 9, |_, rng| rng.gen::<f64>()));
/// ```
pub fn run_trials<T, F>(trials: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    Fanout::new(seed).run_trials(trials, f)
}

/// Like [`run_trials`] with an explicit worker count (useful in tests and
/// for measuring scaling).
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn run_trials_with_workers<T, F>(trials: usize, seed: u64, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    assert!(workers > 0, "at least one worker is required");
    Fanout::with_threads(seed, workers).run_trials(trials, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_in_trial_order() {
        let xs = run_trials_with_workers(100, 0, 7, |i, _| i);
        assert_eq!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let f = |i: usize, rng: &mut StdRng| (i, rng.gen::<u64>());
        let a = run_trials_with_workers(257, 5, 1, f);
        let b = run_trials_with_workers(257, 5, 8, f);
        let c = run_trials_with_workers(257, 5, 64, f);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn trial_seeds_depend_only_on_master_seed_and_index() {
        // The contract behind thread-count invariance: trial i's RNG is
        // `seeded(derive_seed(master, i))` no matter which shard — and
        // hence which worker thread and chunk layout — runs the trial.
        let master = 31;
        let observed = run_trials_with_workers(17, master, 5, |_, rng| rng.gen::<u64>());
        for (i, &draw) in observed.iter().enumerate() {
            let mut expected = seeded(derive_seed(master, i as u64));
            assert_eq!(draw, expected.gen::<u64>(), "trial {i}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let f = |_: usize, rng: &mut StdRng| rng.gen::<u64>();
        assert_ne!(run_trials(10, 1, f), run_trials(10, 2, f));
    }

    #[test]
    fn zero_trials_empty() {
        let xs: Vec<u8> = run_trials(0, 0, |_, _| 0);
        assert!(xs.is_empty());
    }

    #[test]
    fn more_workers_than_trials() {
        let xs = run_trials_with_workers(3, 0, 16, |i, _| i * 2);
        assert_eq!(xs, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = run_trials_with_workers(1, 0, 0, |i, _| i);
    }

    #[test]
    fn scratch_reuse_matches_plain_run() {
        let fan = Fanout::with_threads(3, 4);
        let plain = fan.run_trials(200, |i, rng| i as u64 + rng.gen::<u64>() % 100);
        let scratched = fan.run_trials_with_scratch(
            200,
            Vec::<u64>::new,
            |i, rng, buf| {
                buf.clear();
                buf.push(rng.gen::<u64>() % 100);
                i as u64 + buf[0]
            },
        );
        assert_eq!(plain, scratched);
    }

    #[test]
    fn map_preserves_item_order_and_is_thread_count_independent() {
        let items: Vec<u64> = (0..137).collect();
        let serial = Fanout::with_threads(0, 1).map(&items, |i, &x| x * 2 + i as u64);
        let parallel = Fanout::with_threads(0, 8).map(&items, |i, &x| x * 2 + i as u64);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 9);
    }

    #[test]
    fn map_seeded_derives_per_item_rngs() {
        let items: Vec<u32> = (0..64).collect();
        let f = |_: usize, &x: &u32, rng: &mut StdRng| (x, rng.gen::<u64>());
        let one = Fanout::with_threads(11, 1).map_seeded(&items, f);
        let many = Fanout::with_threads(11, 5).map_seeded(&items, f);
        assert_eq!(one, many);
        // Per-item streams must be distinct.
        assert_ne!(one[0].1, one[1].1);
    }

    #[test]
    fn auto_thread_count_resolves_to_nonzero() {
        assert!(Fanout::new(0).threads() > 0);
        assert_eq!(Fanout::with_threads(0, 3).threads(), 3);
    }

    #[test]
    fn reseeded_changes_only_the_seed() {
        let fan = Fanout::with_threads(1, 2).reseeded(9);
        assert_eq!(fan.seed(), 9);
        assert_eq!(fan.threads(), 2);
    }
}
