//! A deterministic, crossbeam-parallel Monte-Carlo trial runner.
//!
//! The paper runs 100,000 trials per parameter combination; this runner
//! spreads trials over worker threads while keeping results bit-for-bit
//! reproducible: every trial gets its own RNG derived from
//! `(master seed, trial index)`, so the outcome is independent of the
//! worker count and scheduling.

use privlocad_geo::rng::{derive_seed, seeded};
use rand::rngs::StdRng;

/// Runs `trials` independent trials of `f` in parallel and collects the
/// results in trial order.
///
/// `f` receives the trial index and a per-trial RNG. The number of worker
/// threads defaults to the available parallelism.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::montecarlo::run_trials;
/// use rand::Rng;
///
/// let xs = run_trials(1_000, 9, |_, rng| rng.gen::<f64>());
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!((mean - 0.5).abs() < 0.05);
/// // Fully reproducible regardless of thread count:
/// assert_eq!(xs, run_trials(1_000, 9, |_, rng| rng.gen::<f64>()));
/// ```
pub fn run_trials<T, F>(trials: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    run_trials_with_workers(trials, seed, workers, f)
}

/// Like [`run_trials`] with an explicit worker count (useful in tests and
/// for measuring scaling).
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn run_trials_with_workers<T, F>(trials: usize, seed: u64, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> T + Sync,
{
    assert!(workers > 0, "at least one worker is required");
    if trials == 0 {
        return Vec::new();
    }
    let workers = workers.min(trials);
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let chunk = trials.div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (w, slot) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = w * chunk;
                for (offset, out) in slot.iter_mut().enumerate() {
                    let trial = base + offset;
                    let mut rng = seeded(derive_seed(seed, trial as u64));
                    *out = Some(f(trial, &mut rng));
                }
            });
        }
    })
    .expect("worker threads must not panic");
    results.into_iter().map(|r| r.expect("every trial ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_in_trial_order() {
        let xs = run_trials_with_workers(100, 0, 7, |i, _| i);
        assert_eq!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let f = |i: usize, rng: &mut StdRng| (i, rng.gen::<u64>());
        let a = run_trials_with_workers(257, 5, 1, f);
        let b = run_trials_with_workers(257, 5, 8, f);
        let c = run_trials_with_workers(257, 5, 64, f);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn different_seeds_differ() {
        let f = |_: usize, rng: &mut StdRng| rng.gen::<u64>();
        assert_ne!(run_trials(10, 1, f), run_trials(10, 2, f));
    }

    #[test]
    fn zero_trials_empty() {
        let xs: Vec<u8> = run_trials(0, 0, |_, _| 0);
        assert!(xs.is_empty());
    }

    #[test]
    fn more_workers_than_trials() {
        let xs = run_trials_with_workers(3, 0, 16, |i, _| i * 2);
        assert_eq!(xs, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = run_trials_with_workers(1, 0, 0, |i, _| i);
    }
}
