//! Utility metrics for LBA privacy mechanisms (Definitions 4 and 5 of the
//! Edge-PrivLocAd paper) plus the statistical plumbing the evaluation needs.
//!
//! - [`utilization`]: the **utilization rate** `UR = |AOI ∩ AOR| / |AOI|`,
//!   where AOI is the disc of targeting radius `R` around the user's true
//!   location and AOR the union of the same disc re-centered on each
//!   released obfuscated location. Exact circle-lens math covers `n = 1`;
//!   deterministic grid integration covers unions.
//! - [`efficacy`]: the **advertising efficacy**
//!   `AE = Pr[ad ∈ AOI | ad ∈ AOR]` — how likely an ad fetched from the
//!   reported location is actually relevant.
//! - [`stats`]: summaries, quantiles and empirical CDFs (the paper's
//!   "minimal utilization rate at confidence α" is a quantile of the UR
//!   distribution).
//! - [`montecarlo`]: a crossbeam-parallel, deterministically-seeded trial
//!   runner used to burn through the paper's 100,000-trial experiments.
//!
//! # Examples
//!
//! ```
//! use privlocad_geo::Point;
//! use privlocad_mechanisms::{GeoIndParams, Lppm, NFoldGaussian};
//! use privlocad_metrics::utilization;
//!
//! let mech = NFoldGaussian::new(GeoIndParams::new(500.0, 1.0, 0.01, 10)?);
//! let urs = utilization::measure(&mech, 5_000.0, 200, 42);
//! assert_eq!(urs.len(), 200);
//! assert!(urs.iter().all(|u| (0.0..=1.0).contains(u)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod efficacy;
pub mod histogram;
pub mod montecarlo;
pub mod stats;
pub mod utilization;
