//! The advertising efficacy metric (Definition 5).
//!
//! `AE = Pr[ad ∈ AOI | ad ∈ AOR]`: when the system requests ads from an
//! obfuscated location (the AOR), how likely is a returned ad to actually
//! lie in the user's true area of interest? With equal AOI/AOR radii and
//! ads uniform over the AOR, this equals the lens overlap divided by the
//! disc area — computed exactly per trial, with a sampled variant matching
//! the paper's described Monte-Carlo procedure.

use privlocad_geo::{Circle, Point};
use privlocad_mechanisms::{Lppm, SelectionStrategy};

use crate::montecarlo::Fanout;
use crate::utilization::analytic;

/// Runs `trials` end-to-end releases (mechanism + output selection, true
/// location at the origin) and returns the per-trial efficacy, computed
/// exactly from the selected candidate's lens overlap.
///
/// # Panics
///
/// Panics if `targeting_radius_m` is not positive and finite.
pub fn measure(
    mech: &dyn Lppm,
    selector: &dyn SelectionStrategy,
    targeting_radius_m: f64,
    trials: usize,
    seed: u64,
) -> Vec<f64> {
    measure_fanout(mech, selector, targeting_radius_m, trials, Fanout::new(seed))
}

/// [`measure`] driven by an explicit [`Fanout`] — the caller controls both
/// the seed and the worker-thread count. Results are identical for any
/// thread count (per-trial seeding; the candidate buffer is cleared
/// between trials).
///
/// # Panics
///
/// Panics if `targeting_radius_m` is not positive and finite.
pub fn measure_fanout(
    mech: &dyn Lppm,
    selector: &dyn SelectionStrategy,
    targeting_radius_m: f64,
    trials: usize,
    fanout: Fanout,
) -> Vec<f64> {
    let aoi = Circle::new(Point::ORIGIN, targeting_radius_m)
        .expect("targeting radius must be positive and finite");
    fanout.run_trials_with_scratch(trials, Vec::new, move |_, rng, candidates: &mut Vec<Point>| {
        candidates.clear();
        mech.obfuscate_into(Point::ORIGIN, rng, candidates);
        let chosen = candidates[selector.select(candidates, rng)];
        // AE = |AOI ∩ AOR| / |AOR|; radii are equal so the lens fraction
        // relative to the AOI equals the fraction relative to the AOR.
        analytic(&aoi, chosen)
    })
}

/// The paper's literal procedure: sample `ads_per_trial` uniform ad
/// locations in the selected AOR and count the fraction inside the AOI.
///
/// Converges to [`measure`] as the ad budget grows; kept for validation
/// and for workloads where ads are not uniform.
///
/// # Panics
///
/// Panics if `targeting_radius_m` is invalid or `ads_per_trial` is zero.
pub fn measure_sampled(
    mech: &dyn Lppm,
    selector: &dyn SelectionStrategy,
    targeting_radius_m: f64,
    trials: usize,
    ads_per_trial: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(ads_per_trial > 0, "at least one ad per trial");
    let aoi = Circle::new(Point::ORIGIN, targeting_radius_m)
        .expect("targeting radius must be positive and finite");
    Fanout::new(seed).run_trials_with_scratch(
        trials,
        Vec::new,
        move |_, rng, candidates: &mut Vec<Point>| {
            candidates.clear();
            mech.obfuscate_into(Point::ORIGIN, rng, candidates);
            let chosen = candidates[selector.select(candidates, rng)];
            let aor = aoi.recenter(chosen);
            let hits = (0..ads_per_trial)
                .filter(|_| aoi.contains(aor.sample_uniform(&mut *rng)))
                .count();
            hits as f64 / ads_per_trial as f64
        },
    )
}

/// Convenience: the mean efficacy over trials.
///
/// # Panics
///
/// Panics if `trials` is zero or `targeting_radius_m` is invalid.
pub fn mean_efficacy(
    mech: &dyn Lppm,
    selector: &dyn SelectionStrategy,
    targeting_radius_m: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    mean_efficacy_fanout(mech, selector, targeting_radius_m, trials, Fanout::new(seed))
}

/// [`mean_efficacy`] driven by an explicit [`Fanout`].
///
/// # Panics
///
/// Panics if `trials` is zero or `targeting_radius_m` is invalid.
pub fn mean_efficacy_fanout(
    mech: &dyn Lppm,
    selector: &dyn SelectionStrategy,
    targeting_radius_m: f64,
    trials: usize,
    fanout: Fanout,
) -> f64 {
    assert!(trials > 0, "at least one trial is required");
    let xs = measure_fanout(mech, selector, targeting_radius_m, trials, fanout);
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_mechanisms::{
        GeoIndParams, NFoldGaussian, PosteriorSelector, UniformSelector,
    };

    fn mech(n: usize) -> NFoldGaussian {
        NFoldGaussian::new(GeoIndParams::new(500.0, 1.0, 0.01, n).unwrap())
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn efficacy_in_unit_interval() {
        let m = mech(5);
        let sel = PosteriorSelector::new(m.sigma());
        let es = measure(&m, &sel, 5_000.0, 200, 3);
        assert_eq!(es.len(), 200);
        assert!(es.iter().all(|e| (0.0..=1.0).contains(e)));
    }

    #[test]
    fn sampled_matches_analytic_in_expectation() {
        let m = mech(4);
        let sel = UniformSelector::new();
        let exact = mean(&measure(&m, &sel, 5_000.0, 400, 5));
        let sampled = mean(&measure_sampled(&m, &sel, 5_000.0, 400, 400, 5));
        assert!((exact - sampled).abs() < 0.03, "exact {exact} sampled {sampled}");
    }

    #[test]
    fn posterior_selection_beats_uniform() {
        // Fig. 9's mechanism: the posterior selector favors candidates near
        // the sample mean, i.e. near the true location, keeping efficacy up.
        let m = mech(10);
        let posterior = PosteriorSelector::new(m.sigma());
        let uniform = UniformSelector::new();
        let e_post = mean_efficacy(&m, &posterior, 5_000.0, 3_000, 8);
        let e_unif = mean_efficacy(&m, &uniform, 5_000.0, 3_000, 8);
        assert!(
            e_post > e_unif,
            "posterior {e_post} should beat uniform {e_unif}"
        );
    }

    #[test]
    fn deterministic() {
        let m = mech(3);
        let sel = PosteriorSelector::new(m.sigma());
        assert_eq!(measure(&m, &sel, 5_000.0, 50, 1), measure(&m, &sel, 5_000.0, 50, 1));
    }

    #[test]
    #[should_panic(expected = "at least one ad per trial")]
    fn sampled_rejects_zero_ads() {
        let m = mech(1);
        let _ = measure_sampled(&m, &UniformSelector::new(), 5_000.0, 1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn mean_rejects_zero_trials() {
        let m = mech(1);
        let _ = mean_efficacy(&m, &UniformSelector::new(), 5_000.0, 0, 0);
    }
}
