//! Equal-width histograms for utility distributions.
//!
//! Fig. 7 of the paper plots the *distribution* of the utilization rate
//! per mechanism, not just a point estimate; this histogram renders those
//! distributions in the text harness and feeds the CSV output.

use serde::{Deserialize, Serialize};

/// An equal-width histogram over a fixed range.
///
/// # Examples
///
/// ```
/// use privlocad_metrics::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4)?;
/// for x in [0.1, 0.2, 0.6, 0.9, 0.95] {
///     h.add(x);
/// }
/// assert_eq!(h.counts(), &[2, 0, 1, 2]);
/// assert_eq!(h.total(), 5);
/// # Ok::<(), privlocad_metrics::histogram::HistogramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

/// Error constructing a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramError {
    /// `min` was not strictly below `max`, or a bound was not finite.
    InvalidRange,
    /// Zero bins requested.
    NoBins,
}

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistogramError::InvalidRange => write!(f, "histogram range must be finite and non-empty"),
            HistogramError::NoBins => write!(f, "histogram needs at least one bin"),
        }
    }
}

impl std::error::Error for HistogramError {}

impl Histogram {
    /// Creates an empty histogram over `[min, max]` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError`] for an empty or non-finite range, or
    /// zero bins.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self, HistogramError> {
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Err(HistogramError::InvalidRange);
        }
        if bins == 0 {
            return Err(HistogramError::NoBins);
        }
        Ok(Histogram { min, max, counts: vec![0; bins], below: 0, above: 0 })
    }

    /// Adds one observation. Values outside the range land in the
    /// underflow/overflow counters; the range maximum belongs to the last
    /// bin.
    pub fn add(&mut self, x: f64) {
        if x < self.min {
            self.below += 1;
            return;
        }
        if x > self.max {
            self.above += 1;
            return;
        }
        let width = (self.max - self.min) / self.counts.len() as f64;
        let idx = (((x - self.min) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds many observations.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Builds a histogram directly from a sample.
    ///
    /// # Errors
    ///
    /// Same as [`Histogram::new`].
    pub fn of(values: &[f64], min: f64, max: f64, bins: usize) -> Result<Self, HistogramError> {
        let mut h = Histogram::new(min, max, bins)?;
        h.extend(values.iter().copied());
        Ok(h)
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// Observations above the range.
    pub fn overflow(&self) -> u64 {
        self.above
    }

    /// All observations seen, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }

    /// The `[lo, hi)` bounds of bin `i` (the last bin is closed).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.max - self.min) / self.counts.len() as f64;
        (self.min + i as f64 * width, self.min + (i + 1) as f64 * width)
    }

    /// Per-bin fractions of the in-range mass (empty histogram → zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / in_range as f64).collect()
    }

    /// A compact sparkline-style rendering, one character per bin.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return LEVELS[0].to_string().repeat(self.counts.len());
        }
        self.counts
            .iter()
            .map(|&c| LEVELS[((c as f64 / max as f64) * 7.0).round() as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert_eq!(Histogram::new(1.0, 1.0, 4), Err(HistogramError::InvalidRange));
        assert_eq!(Histogram::new(2.0, 1.0, 4), Err(HistogramError::InvalidRange));
        assert_eq!(Histogram::new(f64::NAN, 1.0, 4), Err(HistogramError::InvalidRange));
        assert_eq!(Histogram::new(0.0, 1.0, 0), Err(HistogramError::NoBins));
    }

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(0.0); // first bin (inclusive lower edge)
        h.add(0.499); // first bin
        h.add(0.5); // second bin
        h.add(1.0); // max belongs to the last bin
        assert_eq!(h.counts(), &[2, 2]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.1);
        h.add(1.1);
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_ranges_partition_the_interval() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (0.0, 0.25));
        assert_eq!(h.bin_range(3), (0.75, 1.0));
    }

    #[test]
    fn fractions_sum_to_one() {
        let h = Histogram::of(&[0.1, 0.2, 0.3, 0.9], 0.0, 1.0, 5).unwrap();
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fractions_and_sparkline() {
        let h = Histogram::new(0.0, 1.0, 3).unwrap();
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
        assert_eq!(h.sparkline().chars().count(), 3);
    }

    #[test]
    fn sparkline_highlights_the_mode() {
        let h = Histogram::of(&[0.9, 0.95, 0.99, 0.91, 0.1], 0.0, 1.0, 10).unwrap();
        let s: Vec<char> = h.sparkline().chars().collect();
        assert_eq!(s.len(), 10);
        assert_eq!(s[9], '█');
    }

    #[test]
    #[should_panic(expected = "bin index")]
    fn bin_range_bounds_checked() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_range(2);
    }
}
