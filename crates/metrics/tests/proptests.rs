//! Property-based tests for the metrics crate.

use privlocad_geo::{rng::seeded, Circle, Point};
use privlocad_mechanisms::{GeoIndParams, NFoldGaussian, PosteriorSelector};
use privlocad_metrics::stats::{min_rate_at_confidence, quantile, Ecdf, Summary};
use privlocad_metrics::{efficacy, utilization};
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantile_between_min_and_max(
        xs in proptest::collection::vec(-1e6..1e6f64, 1..100),
        q in 0.0..=1.0f64,
    ) {
        let v = quantile(&xs, q);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn quantile_monotone_in_q(
        xs in proptest::collection::vec(-1e3..1e3f64, 2..60),
        q1 in 0.0..=1.0f64,
        q2 in 0.0..=1.0f64,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn min_rate_decreases_with_confidence(
        xs in proptest::collection::vec(0.0..1.0f64, 5..100),
        a1 in 0.05..0.95f64,
        da in 0.0..0.04f64,
    ) {
        prop_assert!(
            min_rate_at_confidence(&xs, a1 + da) <= min_rate_at_confidence(&xs, a1) + 1e-9
        );
    }

    #[test]
    fn summary_invariants(xs in proptest::collection::vec(-1e4..1e4f64, 1..80)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.median + 1e-9 && s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn ecdf_is_monotone_cdf(
        xs in proptest::collection::vec(-100.0..100.0f64, 0..60),
        probe in proptest::collection::vec(-150.0..150.0f64, 2..10),
    ) {
        let e = Ecdf::new(&xs);
        let mut sorted_probe = probe.clone();
        sorted_probe.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ys = e.eval_many(&sorted_probe);
        for w in ys.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for y in ys {
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn lens_coverage_consistency(d in 0.0..15_000.0f64) {
        // Grid union coverage of a single AOR must track the exact lens.
        let aoi = Circle::new(Point::ORIGIN, 5_000.0).unwrap();
        let exact = utilization::analytic(&aoi, Point::new(d, 0.0));
        let grid = utilization::coverage_grid(&aoi, &[Point::new(d, 0.0)], 250);
        prop_assert!((exact - grid).abs() < 0.02, "d={d}: exact {exact} grid {grid}");
    }

    #[test]
    fn union_coverage_monotone_in_centers(
        centers in proptest::collection::vec((-8_000.0..8_000.0f64, -8_000.0..8_000.0f64), 1..6),
    ) {
        let aoi = Circle::new(Point::ORIGIN, 5_000.0).unwrap();
        let pts: Vec<Point> = centers.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut prev = 0.0;
        for k in 1..=pts.len() {
            let cov = utilization::coverage_grid(&aoi, &pts[..k], 120);
            prop_assert!(cov >= prev - 1e-9, "coverage dropped when adding a center");
            prev = cov;
        }
    }

    #[test]
    fn measured_ur_and_efficacy_in_unit_interval(
        n in 1usize..8,
        eps in 0.5..2.0f64,
        seed in 0u64..50,
    ) {
        let mech = NFoldGaussian::new(GeoIndParams::new(500.0, eps, 0.01, n).unwrap());
        let urs = utilization::measure_with(&mech, 5_000.0, 20, seed, 64);
        prop_assert!(urs.iter().all(|u| (0.0..=1.0).contains(u)));
        let sel = PosteriorSelector::new(mech.sigma());
        let es = efficacy::measure(&mech, &sel, 5_000.0, 20, seed);
        prop_assert!(es.iter().all(|e| (0.0..=1.0).contains(e)));
    }

    #[test]
    fn coverage_sampled_close_to_grid(
        x in -6_000.0..6_000.0f64,
        y in -6_000.0..6_000.0f64,
    ) {
        let aoi = Circle::new(Point::ORIGIN, 5_000.0).unwrap();
        let centers = [Point::new(x, y)];
        let grid = utilization::coverage_grid(&aoi, &centers, 200);
        let mut rng = seeded(1);
        let mc = utilization::coverage_sampled(&aoi, &centers, 4_000, &mut rng);
        prop_assert!((grid - mc).abs() < 0.05, "grid {grid} mc {mc}");
    }
}
