//! Property-based tests for the attack crate.

use privlocad_attack::evaluation::{rank_distances, AttackStats};
use privlocad_attack::{
    connectivity_clusters, AttackConfig, DeobfuscationAttack, InferredLocation, LocationProfile,
    ProfileEntry,
};
use privlocad_geo::Point;
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-20_000.0..20_000.0f64, -20_000.0..20_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn clusters_partition_input(
        pts in proptest::collection::vec(point(), 0..120),
        theta in 1.0..500.0f64,
    ) {
        let clusters = connectivity_clusters(&pts, theta);
        let mut count = 0;
        let mut seen = vec![false; pts.len()];
        for c in &clusters {
            prop_assert!(!c.is_empty());
            for &m in &c.members {
                prop_assert!(!seen[m]);
                seen[m] = true;
                count += 1;
            }
        }
        prop_assert_eq!(count, pts.len());
    }

    #[test]
    fn cluster_sizes_are_sorted_descending(
        pts in proptest::collection::vec(point(), 1..120),
        theta in 1.0..500.0f64,
    ) {
        let clusters = connectivity_clusters(&pts, theta);
        for w in clusters.windows(2) {
            prop_assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn larger_theta_never_increases_cluster_count(
        pts in proptest::collection::vec(point(), 1..80),
        theta in 10.0..200.0f64,
    ) {
        let small = connectivity_clusters(&pts, theta).len();
        let large = connectivity_clusters(&pts, theta * 2.0).len();
        prop_assert!(large <= small);
    }

    #[test]
    fn profile_total_matches_input_and_frequencies(
        pts in proptest::collection::vec(point(), 0..120),
    ) {
        let p = LocationProfile::from_checkins(&pts, 50.0);
        prop_assert_eq!(p.total_checkins(), pts.len());
        let freq_sum: usize = p.iter().map(|e| e.frequency).sum();
        prop_assert_eq!(freq_sum, pts.len());
    }

    #[test]
    fn entropy_nonnegative_and_bounded_by_ln_m(
        freqs in proptest::collection::vec(1usize..1_000, 1..30),
    ) {
        let entries = freqs.iter().enumerate().map(|(i, &f)| ProfileEntry {
            location: Point::new(i as f64 * 100_000.0, 0.0),
            frequency: f,
        });
        let p = LocationProfile::from_entries(entries);
        let h = p.entropy();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (p.len() as f64).ln() + 1e-9);
    }

    #[test]
    fn inferred_supports_never_exceed_input(
        pts in proptest::collection::vec(point(), 1..100),
        k in 1usize..4,
        r_alpha in 50.0..2_000.0f64,
    ) {
        let attack = DeobfuscationAttack::new(AttackConfig::new(50.0, r_alpha));
        let inferred = attack.infer_top_locations(&pts, k);
        prop_assert!(inferred.len() <= k);
        let support: usize = inferred.iter().map(|i| i.support).sum();
        prop_assert!(support <= pts.len());
        for (i, loc) in inferred.iter().enumerate() {
            prop_assert_eq!(loc.rank, i);
            prop_assert!(loc.location.is_finite());
            prop_assert!(loc.support >= 1);
        }
    }

    #[test]
    fn success_rate_monotone_in_threshold(
        ds in proptest::collection::vec(proptest::option::of(0.0..5_000.0f64), 1..50),
        t1 in 0.0..2_500.0f64,
        dt in 0.0..2_500.0f64,
    ) {
        let mut stats = AttackStats::new(1);
        for d in &ds {
            stats.record(&[*d]);
        }
        prop_assert!(stats.success_rate(0, t1) <= stats.success_rate(0, t1 + dt) + 1e-12);
    }

    #[test]
    fn rank_distances_len_matches_truth(
        n_inf in 0usize..5,
        n_truth in 0usize..5,
    ) {
        let inferred: Vec<InferredLocation> = (0..n_inf)
            .map(|r| InferredLocation { rank: r, location: Point::ORIGIN, support: 1 })
            .collect();
        let truth: Vec<Point> = (0..n_truth).map(|i| Point::new(i as f64, 0.0)).collect();
        let d = rank_distances(&inferred, &truth);
        prop_assert_eq!(d.len(), n_truth);
        for (k, v) in d.iter().enumerate() {
            prop_assert_eq!(v.is_some(), k < n_inf);
        }
    }
}
