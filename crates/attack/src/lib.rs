//! The longitudinal location exposure attack (Section III of the
//! Edge-PrivLocAd paper).
//!
//! An honest-but-curious observer of the ad-bidding stream (an ad network,
//! an advertiser, or a traffic-verification company) accumulates a user's
//! reported — and individually geo-IND-obfuscated — locations over weeks to
//! years. Because the user's *top locations* (home, workplace) repeat day
//! after day while geo-IND protects each report independently, the noise
//! averages out: the attack recovers top locations to within tens of meters
//! given a year of data.
//!
//! The crate provides:
//!
//! - [`connectivity_clusters`]: the connectivity-based clustering primitive
//!   (two check-ins are connected if within θ meters), shared by profiling
//!   and de-obfuscation.
//! - [`LocationProfile`]: the attacker's reconstruction of Equation 2's
//!   location/frequency profile, with the location-entropy metric of
//!   Equation 3 (Fig. 3).
//! - [`DeobfuscationAttack`]: Algorithm 1 — iterated "largest cluster →
//!   trim → re-absorb" extraction of the top-n locations from obfuscated
//!   check-ins (Figs. 4 and 6).
//! - [`evaluation`]: rank-wise inference distances and attack success rates
//!   (the "% of top-k locations recovered within d meters" metric).
//!
//! # Examples
//!
//! ```
//! use privlocad_attack::DeobfuscationAttack;
//! use privlocad_geo::{rng::seeded, Point};
//! use privlocad_mechanisms::{Lppm, PlanarLaplace, PlanarLaplaceParams};
//!
//! // A user reporting home 300 times through one-time geo-IND.
//! let home = Point::new(1_000.0, 2_000.0);
//! let mech = PlanarLaplace::new(PlanarLaplaceParams::from_level(4f64.ln(), 200.0)?);
//! let mut rng = seeded(1);
//! let reports: Vec<Point> = (0..300).map(|_| mech.sample(home, &mut rng)).collect();
//!
//! let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05)?;
//! let inferred = attack.infer_top_locations(&reports, 1);
//! assert!(inferred[0].location.distance(home) < 200.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustering;
mod deobfuscation;
pub mod evaluation;
pub mod exchange;
mod online;
pub mod patterns;
mod profiling;
pub mod semantics;

pub use clustering::{connectivity_clusters, connectivity_clusters_with, Cluster, ClusterScratch};
pub use deobfuscation::{AttackConfig, AttackScratch, DeobfuscationAttack, InferredLocation};
pub use exchange::ExchangeObservations;
pub use online::OnlineAttack;
pub use profiling::{LocationProfile, ProfileEntry};
