use privlocad_geo::Point;
use privlocad_mechanisms::{MechanismError, NFoldGaussian, PlanarLaplace};
use serde::{Deserialize, Serialize};

use crate::clustering::{connectivity_clusters_with, ClusterScratch};

/// Configuration of the top-n de-obfuscation attack (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Connectivity threshold θ in meters: two check-ins are connected if
    /// within this distance. The paper uses 50 m.
    pub theta: f64,
    /// Cluster radius `r_α` in meters for the trimming stage — the
    /// confidence radius of the obfuscation noise beyond which an
    /// obfuscated check-in is "almost impossible" (Equation 4; the paper
    /// uses `r₀.₀₅`).
    pub cluster_radius: f64,
    /// Whether to run the trimming stage. Disabling it is the ablation of
    /// DESIGN.md: without trimming the attack must rely on raw connected
    /// components, which fragment under heavy noise.
    pub trimming: bool,
    /// Safety bound on trimming iterations (the fixpoint loop of
    /// Algorithm 1 lines 11–19 converges quickly in practice).
    pub max_trim_iterations: usize,
}

impl AttackConfig {
    /// Creates a validated configuration with trimming enabled.
    ///
    /// # Panics
    ///
    /// Panics if `theta` or `cluster_radius` is not positive and finite.
    pub fn new(theta: f64, cluster_radius: f64) -> Self {
        assert!(theta.is_finite() && theta > 0.0, "theta must be positive and finite");
        assert!(
            cluster_radius.is_finite() && cluster_radius > 0.0,
            "cluster radius must be positive and finite"
        );
        AttackConfig { theta, cluster_radius, trimming: true, max_trim_iterations: 100 }
    }

    /// Returns the configuration with the trimming stage disabled.
    pub fn without_trimming(mut self) -> Self {
        self.trimming = false;
        self
    }
}

/// One inferred top location, produced by
/// [`DeobfuscationAttack::infer_top_locations`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferredLocation {
    /// 0-based rank: 0 is the inferred top-1 location.
    pub rank: usize,
    /// The inferred coordinate (cluster centroid).
    pub location: Point,
    /// Number of check-ins supporting the inference.
    pub support: usize,
}

/// The top-n location de-obfuscation attack of Algorithm 1.
///
/// The attack alternates two stages per extracted location:
///
/// 1. **Clustering** — connectivity-based clustering at threshold θ finds
///    the largest connected component of the remaining check-ins. Under
///    heavy noise the components fragment, but the largest fragment still
///    sits near the densest region (the top location).
/// 2. **Trimming** — starting from that fragment, iterate to a fixpoint:
///    drop members farther than `r_α` from the current centroid, then
///    absorb *any* remaining check-in within `r_α` of the centroid. This
///    re-assembles the full noise cloud around the top location and washes
///    out the noise by averaging.
///
/// After each extraction the absorbed check-ins are removed and the
/// procedure repeats for the next rank.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeobfuscationAttack {
    config: AttackConfig,
}

impl DeobfuscationAttack {
    /// Creates the attack from an explicit configuration.
    pub fn new(config: AttackConfig) -> Self {
        DeobfuscationAttack { config }
    }

    /// Convenience constructor targeting check-ins obfuscated by the planar
    /// Laplace mechanism: the cluster radius is the mechanism's `r_α`
    /// confidence radius (Equation 4) and θ defaults to the paper's 50 m.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::InvalidProbability`] if `alpha ∉ (0, 1)`.
    pub fn for_planar_laplace(
        mech: &PlanarLaplace,
        alpha: f64,
    ) -> Result<Self, MechanismError> {
        let r_alpha = mech.confidence_radius(alpha)?;
        Ok(Self::new(AttackConfig::new(50.0, r_alpha)))
    }

    /// Convenience constructor targeting outputs of the (n-fold) Gaussian
    /// mechanism, with `r_α` from the Rayleigh tail of its noise.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::InvalidProbability`] if `alpha ∉ (0, 1)`.
    pub fn for_gaussian(mech: &NFoldGaussian, alpha: f64) -> Result<Self, MechanismError> {
        let r_alpha = mech.confidence_radius(alpha)?;
        Ok(Self::new(AttackConfig::new(50.0, r_alpha)))
    }

    /// The attack configuration.
    pub fn config(&self) -> AttackConfig {
        self.config
    }

    /// Infers up to `k` top locations from the observed check-ins,
    /// best-supported first (Algorithm 1).
    ///
    /// Fewer than `k` locations are returned if the check-ins run out.
    pub fn infer_top_locations(&self, checkins: &[Point], k: usize) -> Vec<InferredLocation> {
        self.infer_top_locations_with(checkins, k, &mut AttackScratch::default())
    }

    /// [`DeobfuscationAttack::infer_top_locations`] with caller-owned
    /// scratch buffers.
    ///
    /// Monte-Carlo sweeps run the attack once per trial over fresh
    /// check-in streams; passing the same [`AttackScratch`] keeps the
    /// spatial grid and working buffers allocated across trials. The
    /// scratch never changes results — it is pure acceleration state.
    pub fn infer_top_locations_with(
        &self,
        checkins: &[Point],
        k: usize,
        scratch: &mut AttackScratch,
    ) -> Vec<InferredLocation> {
        let pool = &mut scratch.pool;
        pool.clear();
        pool.extend_from_slice(checkins);
        let mut results = Vec::with_capacity(k);
        for rank in 0..k {
            if pool.is_empty() {
                break;
            }
            let clusters = connectivity_clusters_with(pool, self.config.theta, &mut scratch.clusters);
            let seed_members = clusters[0].members.clone();
            let members = if self.config.trimming {
                self.trim(pool, seed_members, &mut scratch.in_cluster)
            } else {
                seed_members
            };
            // lint:allow(panic-hygiene): provably infallible — members always contains at least the largest-component seed
            let center = mean_of(pool, &members).expect("non-empty cluster");
            results.push(InferredLocation { rank, location: center, support: members.len() });
            // Remove the absorbed check-ins before extracting the next
            // rank, compacting the pool in place.
            let absorbed = &mut scratch.in_cluster;
            absorbed.clear();
            absorbed.resize(pool.len(), false);
            for &i in &members {
                absorbed[i] = true;
            }
            let mut kept = 0;
            for i in 0..pool.len() {
                if !absorbed[i] {
                    pool[kept] = pool[i];
                    kept += 1;
                }
            }
            pool.truncate(kept);
        }
        results
    }

    /// The trimming fixpoint of Algorithm 1 (lines 10–19): returns the
    /// final member indices into `pool`. `in_cluster` is a reused
    /// membership bitmap.
    fn trim(&self, pool: &[Point], seed: Vec<usize>, in_cluster: &mut Vec<bool>) -> Vec<usize> {
        let r_sq = self.config.cluster_radius * self.config.cluster_radius;
        in_cluster.clear();
        in_cluster.resize(pool.len(), false);
        for &i in &seed {
            in_cluster[i] = true;
        }
        let mut members = seed.clone();
        for _ in 0..self.config.max_trim_iterations {
            let Some(center) = mean_of(pool, &members) else { break };
            let mut changed = false;
            // Discard members beyond r_α of the centroid…
            for &i in &members {
                if pool[i].distance_sq(center) > r_sq {
                    in_cluster[i] = false;
                    changed = true;
                }
            }
            // …then absorb any remaining check-in within r_α.
            for (i, p) in pool.iter().enumerate() {
                if !in_cluster[i] && p.distance_sq(center) <= r_sq {
                    in_cluster[i] = true;
                    changed = true;
                }
            }
            members.clear();
            members.extend((0..pool.len()).filter(|&i| in_cluster[i]));
            if !changed {
                break;
            }
            if members.is_empty() {
                break;
            }
        }
        if members.is_empty() {
            // Degenerate r_α (smaller than the seed spread): fall back to
            // the untrimmed seed so the attack still reports something.
            return seed;
        }
        members
    }
}

/// Streaming mean of the points selected by `members` — no temporary
/// point buffer.
fn mean_of(pool: &[Point], members: &[usize]) -> Option<Point> {
    if members.is_empty() {
        return None;
    }
    let mut sum = Point::ORIGIN;
    for &i in members {
        sum += pool[i];
    }
    Some(Point::new(sum.x / members.len() as f64, sum.y / members.len() as f64))
}

/// Reusable working memory for [`DeobfuscationAttack::infer_top_locations_with`]:
/// the clustering grid, the mutable check-in pool, and the trimming
/// membership bitmap all survive across invocations.
#[derive(Debug, Default)]
pub struct AttackScratch {
    clusters: ClusterScratch,
    pool: Vec<Point>,
    in_cluster: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::seeded;
    use privlocad_mechanisms::{Lppm, PlanarLaplaceParams};

    fn laplace(l: f64) -> PlanarLaplace {
        PlanarLaplace::new(PlanarLaplaceParams::from_level(l, 200.0).unwrap())
    }

    /// Obfuscated check-ins for a user with two top locations.
    fn observed_checkins(
        mech: &PlanarLaplace,
        top1: Point,
        n1: usize,
        top2: Point,
        n2: usize,
        seed: u64,
    ) -> Vec<Point> {
        let mut rng = seeded(seed);
        let mut pts: Vec<Point> = (0..n1).map(|_| mech.sample(top1, &mut rng)).collect();
        pts.extend((0..n2).map(|_| mech.sample(top2, &mut rng)));
        pts
    }

    #[test]
    fn recovers_single_top_location_under_laplace() {
        let mech = laplace(4f64.ln());
        let home = Point::new(2_000.0, -3_000.0);
        let obs = observed_checkins(&mech, home, 800, Point::new(50_000.0, 0.0), 0, 7);
        let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let inferred = attack.infer_top_locations(&obs, 1);
        assert_eq!(inferred.len(), 1);
        assert_eq!(inferred[0].rank, 0);
        assert!(
            inferred[0].location.distance(home) < 100.0,
            "inference error {} m",
            inferred[0].location.distance(home)
        );
        assert!(inferred[0].support > 600);
    }

    #[test]
    fn recovers_two_top_locations_in_rank_order() {
        let mech = laplace(4f64.ln());
        let home = Point::new(0.0, 0.0);
        let office = Point::new(12_000.0, 5_000.0);
        let obs = observed_checkins(&mech, home, 900, office, 450, 11);
        let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let inferred = attack.infer_top_locations(&obs, 2);
        assert_eq!(inferred.len(), 2);
        assert!(inferred[0].location.distance(home) < 150.0);
        assert!(inferred[1].location.distance(office) < 200.0);
        assert!(inferred[0].support > inferred[1].support);
    }

    #[test]
    fn accuracy_improves_with_observation_window() {
        // Fig. 4's qualitative claim: more check-ins, better inference.
        let mech = laplace(4f64.ln());
        let home = Point::new(500.0, 500.0);
        let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let err = |n: usize| -> f64 {
            let mut total = 0.0;
            for seed in 0..10u64 {
                let obs = observed_checkins(&mech, home, n, Point::ORIGIN, 0, 100 + seed);
                let inf = attack.infer_top_locations(&obs, 1);
                total += inf[0].location.distance(home);
            }
            total / 10.0
        };
        let week = err(40); // ~ one week of check-ins
        let year = err(2_000); // ~ a full year
        assert!(year < week, "year {year} week {week}");
        assert!(year < 60.0, "full-year error {year} m should be tens of meters");
    }

    #[test]
    fn trimming_rescues_fragmented_clusters() {
        // Under the strictest privacy level the noise cloud is sparse and
        // the θ = 50 m graph fragments; trimming must still assemble it.
        let mech = laplace(2f64.ln());
        let home = Point::new(0.0, 0.0);
        let obs = observed_checkins(&mech, home, 1_000, Point::ORIGIN, 0, 21);
        let with = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let without = DeobfuscationAttack::new(with.config().without_trimming());
        let e_with = with.infer_top_locations(&obs, 1)[0].location.distance(home);
        let e_without = without.infer_top_locations(&obs, 1)[0].location.distance(home);
        assert!(e_with < 150.0, "with trimming {e_with}");
        // Without trimming the fragment centroid is supported by far fewer
        // points; it should be no better than the trimmed inference.
        assert!(e_with <= e_without + 50.0, "with {e_with} without {e_without}");
    }

    #[test]
    fn defense_outputs_resist_the_attack() {
        // Check-ins produced by the permanent 10-fold Gaussian mechanism:
        // the attacker sees repeats of 10 fixed candidates and cannot get
        // near the true location.
        use privlocad_mechanisms::{GeoIndParams, NFoldGaussian};
        let params = GeoIndParams::new(500.0, 1.0, 0.01, 10).unwrap();
        let mech = NFoldGaussian::new(params);
        let mut rng = seeded(31);
        let home = Point::new(0.0, 0.0);
        let candidates = mech.obfuscate(home, &mut rng);
        // A year of reports drawn from the permanent candidates.
        let mut reports = Vec::new();
        for i in 0..1_000usize {
            reports.push(candidates[i % candidates.len()]);
        }
        let attack = DeobfuscationAttack::for_gaussian(&mech, 0.05).unwrap();
        let inferred = attack.infer_top_locations(&reports, 1);
        // The best the attacker can do concentrates at σ/√n scale — far
        // beyond the 200 m success threshold with overwhelming probability.
        assert!(
            inferred[0].location.distance(home) > 200.0,
            "defense leaked: error {} m",
            inferred[0].location.distance(home)
        );
    }

    #[test]
    fn empty_input_yields_no_locations() {
        let attack = DeobfuscationAttack::new(AttackConfig::new(50.0, 500.0));
        assert!(attack.infer_top_locations(&[], 3).is_empty());
    }

    #[test]
    fn requests_beyond_available_clusters_are_truncated() {
        let attack = DeobfuscationAttack::new(AttackConfig::new(50.0, 100.0));
        let pts = vec![Point::ORIGIN; 10];
        let inferred = attack.infer_top_locations(&pts, 5);
        // One cluster absorbs everything; no check-ins remain for rank 2.
        assert_eq!(inferred.len(), 1);
        assert_eq!(inferred[0].support, 10);
    }

    #[test]
    fn config_accessors_and_ablation() {
        let cfg = AttackConfig::new(50.0, 700.0);
        assert!(cfg.trimming);
        let ablated = cfg.without_trimming();
        assert!(!ablated.trimming);
        assert_eq!(ablated.theta, 50.0);
        assert_eq!(ablated.cluster_radius, 700.0);
        let attack = DeobfuscationAttack::new(cfg);
        assert_eq!(attack.config(), cfg);
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn rejects_bad_theta() {
        let _ = AttackConfig::new(-1.0, 100.0);
    }

    #[test]
    #[should_panic(expected = "cluster radius must be positive")]
    fn rejects_bad_radius() {
        let _ = AttackConfig::new(50.0, f64::INFINITY);
    }

    #[test]
    fn constructor_propagates_alpha_errors() {
        let mech = laplace(2f64.ln());
        assert!(DeobfuscationAttack::for_planar_laplace(&mech, 0.0).is_err());
        assert!(DeobfuscationAttack::for_planar_laplace(&mech, 1.0).is_err());
    }

    #[test]
    fn reused_scratch_matches_fresh_inference() {
        let mech = laplace(4f64.ln());
        let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let mut scratch = AttackScratch::default();
        for seed in 0..3u64 {
            let obs = observed_checkins(
                &mech,
                Point::new(0.0, 0.0),
                400,
                Point::new(10_000.0, 0.0),
                200,
                80 + seed,
            );
            let fresh = attack.infer_top_locations(&obs, 2);
            let reused = attack.infer_top_locations_with(&obs, 2, &mut scratch);
            assert_eq!(fresh, reused, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let mech = laplace(4f64.ln());
        let obs = observed_checkins(&mech, Point::ORIGIN, 300, Point::new(9_000.0, 0.0), 150, 55);
        let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let a = attack.infer_top_locations(&obs, 2);
        let b = attack.infer_top_locations(&obs, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn one_time_geoind_leaks_via_lppm_trait() {
        // End-to-end shape of Section III: every check-in independently
        // obfuscated through the Lppm interface.
        let mech = laplace(6f64.ln());
        let home = Point::new(-4_000.0, 2_500.0);
        let mut rng = seeded(61);
        let obs: Vec<Point> = (0..700)
            .flat_map(|_| mech.obfuscate(home, &mut rng))
            .collect();
        let attack = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let top1 = &attack.infer_top_locations(&obs, 1)[0];
        assert!(top1.location.distance(home) < 100.0);
    }
}
