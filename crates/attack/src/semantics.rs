//! Location-semantics inference: labeling recovered top locations as home
//! or workplace from the *timing* of the observations.
//!
//! Section III of the paper notes that once the top locations are
//! recovered, "the location semantics (e.g., home and office) and the
//! mobility patterns are not difficult to infer". This module makes that
//! concrete: check-ins at a home cluster concentrate in evenings, nights
//! and weekends, while workplace check-ins concentrate in weekday working
//! hours — exactly the diurnal structure real (and our synthetic) traces
//! carry.

use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

use crate::InferredLocation;

/// One timestamped observation from the bid log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedObservation {
    /// Seconds since the observation epoch (midnight of day 0).
    pub timestamp_s: i64,
    /// Reported (obfuscated) location.
    pub location: Point,
}

/// A semantic label for a top location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SemanticLabel {
    /// Evening/night/weekend-dominated: the victim's home.
    Home,
    /// Weekday-working-hour-dominated: the victim's workplace.
    Work,
    /// No dominant diurnal signature.
    Other,
}

impl std::fmt::Display for SemanticLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SemanticLabel::Home => write!(f, "home"),
            SemanticLabel::Work => write!(f, "work"),
            SemanticLabel::Other => write!(f, "other"),
        }
    }
}

/// Configuration of the semantic classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SemanticConfig {
    /// Observations within this radius of a top location count toward it.
    pub assign_radius_m: f64,
    /// Weekday of day 0 (0 = Monday … 6 = Sunday). The synthetic study
    /// epoch, June 1 2019, was a Saturday (5).
    pub epoch_day_of_week: u8,
    /// Inclusive start of "night" hours (evening side), e.g. 19.
    pub night_start_hour: u8,
    /// Exclusive end of "night" hours (morning side), e.g. 9.
    pub night_end_hour: u8,
    /// Inclusive start of working hours, e.g. 9.
    pub work_start_hour: u8,
    /// Exclusive end of working hours, e.g. 19.
    pub work_end_hour: u8,
    /// Minimum fraction for a label to win.
    pub dominance_threshold: f64,
}

impl Default for SemanticConfig {
    fn default() -> Self {
        SemanticConfig {
            assign_radius_m: 500.0,
            epoch_day_of_week: 5,
            night_start_hour: 19,
            night_end_hour: 9,
            work_start_hour: 9,
            work_end_hour: 19,
            dominance_threshold: 0.6,
        }
    }
}

/// A labeled top location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SemanticInference {
    /// The rank of the underlying inferred top location.
    pub rank: usize,
    /// The inferred coordinate.
    pub location: Point,
    /// The assigned label.
    pub label: SemanticLabel,
    /// Fraction of assigned observations in night/weekend hours.
    pub night_fraction: f64,
    /// Fraction of assigned observations in weekday working hours.
    pub work_fraction: f64,
    /// Number of observations assigned to this top location.
    pub support: usize,
}

fn hour_of(ts: i64) -> u8 {
    (ts.rem_euclid(86_400) / 3_600) as u8
}

fn weekday_of(ts: i64, epoch_dow: u8) -> u8 {
    ((ts.div_euclid(86_400) + epoch_dow as i64).rem_euclid(7)) as u8
}

/// Classifies each inferred top location by its observations' diurnal
/// signature.
///
/// Observations are assigned to the nearest top location within
/// `config.assign_radius_m`; each top's night fraction (evening/night or
/// weekend) and weekday-working-hour fraction are compared against the
/// dominance threshold.
///
/// # Examples
///
/// ```
/// use privlocad_attack::semantics::{classify, SemanticConfig, SemanticLabel, TimedObservation};
/// use privlocad_attack::InferredLocation;
/// use privlocad_geo::Point;
///
/// // Monday-night observations near the rank-0 top.
/// let obs: Vec<TimedObservation> = (0..20)
///     .map(|i| TimedObservation { timestamp_s: (2 + 7 * i) * 86_400 + 22 * 3_600, location: Point::ORIGIN })
///     .collect();
/// let tops = [InferredLocation { rank: 0, location: Point::ORIGIN, support: 20 }];
/// let labels = classify(&obs, &tops, &SemanticConfig::default());
/// assert_eq!(labels[0].label, SemanticLabel::Home);
/// ```
pub fn classify(
    observations: &[TimedObservation],
    tops: &[InferredLocation],
    config: &SemanticConfig,
) -> Vec<SemanticInference> {
    let radius_sq = config.assign_radius_m * config.assign_radius_m;
    let mut night = vec![0usize; tops.len()];
    let mut work = vec![0usize; tops.len()];
    let mut total = vec![0usize; tops.len()];

    for obs in observations {
        // Nearest top within the assignment radius.
        let nearest = tops
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.location.distance_sq(obs.location)))
            .filter(|&(_, d)| d <= radius_sq)
            .min_by(|a, b| a.1.total_cmp(&b.1));
        let Some((idx, _)) = nearest else { continue };
        total[idx] += 1;
        let hour = hour_of(obs.timestamp_s);
        let dow = weekday_of(obs.timestamp_s, config.epoch_day_of_week);
        let weekend = dow >= 5;
        let at_night = hour >= config.night_start_hour || hour < config.night_end_hour;
        if weekend || at_night {
            night[idx] += 1;
        }
        if !weekend && (config.work_start_hour..config.work_end_hour).contains(&hour) {
            work[idx] += 1;
        }
    }

    tops.iter()
        .enumerate()
        .map(|(i, t)| {
            let n = total[i].max(1) as f64;
            let night_fraction = night[i] as f64 / n;
            let work_fraction = work[i] as f64 / n;
            let label = if total[i] == 0 {
                SemanticLabel::Other
            } else if night_fraction >= config.dominance_threshold
                && night_fraction >= work_fraction
            {
                SemanticLabel::Home
            } else if work_fraction >= config.dominance_threshold {
                SemanticLabel::Work
            } else {
                SemanticLabel::Other
            };
            SemanticInference {
                rank: t.rank,
                location: t.location,
                label,
                night_fraction,
                work_fraction,
                support: total[i],
            }
        })
        .collect()
}

/// A time-sliced refinement of the de-obfuscation attack: cluster the
/// night-time and working-hour observations *separately* before inferring
/// tops.
///
/// The paper's Algorithm 1 ignores timestamps, so under heavy noise the
/// workplace cluster can drown in the home cluster's skirt. Exploiting the
/// diurnal structure — the same structure the semantic classifier reads —
/// separates the two populations before clustering, sharpening top-2
/// recovery. This goes slightly beyond the paper's attack and demonstrates
/// that the longitudinal threat is, if anything, *worse* than Fig. 6
/// suggests.
///
/// Returns at most two locations: rank 0 from the night slice (home
/// candidate), rank 1 from the working-hour slice (workplace candidate).
pub fn time_sliced_top2(
    observations: &[TimedObservation],
    attack: &crate::DeobfuscationAttack,
    config: &SemanticConfig,
) -> Vec<InferredLocation> {
    let mut night = Vec::new();
    let mut work = Vec::new();
    for obs in observations {
        let hour = hour_of(obs.timestamp_s);
        let dow = weekday_of(obs.timestamp_s, config.epoch_day_of_week);
        let weekend = dow >= 5;
        if weekend || hour >= config.night_start_hour || hour < config.night_end_hour {
            night.push(obs.location);
        } else if (config.work_start_hour..config.work_end_hour).contains(&hour) {
            work.push(obs.location);
        }
    }
    let mut result = Vec::new();
    if let Some(home) = attack.infer_top_locations(&night, 1).into_iter().next() {
        result.push(InferredLocation { rank: 0, ..home });
    }
    if let Some(office) = attack.infer_top_locations(&work, 1).into_iter().next() {
        result.push(InferredLocation { rank: 1, ..office });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top(rank: usize, x: f64) -> InferredLocation {
        InferredLocation { rank, location: Point::new(x, 0.0), support: 0 }
    }

    fn obs(day: i64, hour: i64, x: f64) -> TimedObservation {
        TimedObservation { timestamp_s: day * 86_400 + hour * 3_600, location: Point::new(x, 0.0) }
    }

    #[test]
    fn night_heavy_cluster_is_home() {
        // Days 2..6 are Mon–Fri under epoch_dow = 5.
        let observations: Vec<_> = (0..30).map(|i| obs(2 + (i % 5), 22, 0.0)).collect();
        let out = classify(&observations, &[top(0, 0.0)], &SemanticConfig::default());
        assert_eq!(out[0].label, SemanticLabel::Home);
        assert!(out[0].night_fraction > 0.9);
        assert_eq!(out[0].support, 30);
    }

    #[test]
    fn workhour_cluster_is_work() {
        let observations: Vec<_> = (0..30).map(|i| obs(2 + (i % 5), 10, 0.0)).collect();
        let out = classify(&observations, &[top(0, 0.0)], &SemanticConfig::default());
        assert_eq!(out[0].label, SemanticLabel::Work);
        assert!(out[0].work_fraction > 0.9);
    }

    #[test]
    fn weekend_daytime_counts_toward_home() {
        // Day 0 (Saturday) noon: weekend ⇒ night/home bucket.
        let observations: Vec<_> = (0..10).map(|_| obs(0, 12, 0.0)).collect();
        let out = classify(&observations, &[top(0, 0.0)], &SemanticConfig::default());
        assert_eq!(out[0].label, SemanticLabel::Home);
    }

    #[test]
    fn mixed_cluster_is_other() {
        let mut observations: Vec<_> = (0..10).map(|i| obs(2 + (i % 5), 10, 0.0)).collect();
        observations.extend((0..10).map(|i| obs(2 + (i % 5), 22, 0.0)));
        let out = classify(&observations, &[top(0, 0.0)], &SemanticConfig::default());
        assert_eq!(out[0].label, SemanticLabel::Other);
    }

    #[test]
    fn observations_assign_to_nearest_top_only() {
        let tops = [top(0, 0.0), top(1, 2_000.0)];
        let observations = vec![obs(2, 22, 100.0), obs(2, 10, 1_900.0), obs(2, 10, 50_000.0)];
        let out = classify(&observations, &tops, &SemanticConfig::default());
        assert_eq!(out[0].support, 1);
        assert_eq!(out[1].support, 1);
        // The far observation is dropped entirely.
        assert_eq!(out[0].support + out[1].support, 2);
    }

    #[test]
    fn empty_cluster_is_other_with_zero_support() {
        let out = classify(&[], &[top(0, 0.0)], &SemanticConfig::default());
        assert_eq!(out[0].label, SemanticLabel::Other);
        assert_eq!(out[0].support, 0);
    }

    #[test]
    fn end_to_end_on_synthetic_diurnal_data() {
        // Home cluster at x=0 visited at night, work at x=9000 during
        // weekday office hours: both labeled correctly.
        let mut observations = Vec::new();
        for week in 0..10i64 {
            for d in 2..7 {
                // Mon–Fri
                observations.push(obs(week * 7 + d, 22, 10.0));
                observations.push(obs(week * 7 + d, 11, 9_010.0));
            }
            observations.push(obs(week * 7, 14, -5.0)); // Saturday at home
        }
        let tops = [top(0, 0.0), top(1, 9_000.0)];
        let out = classify(&observations, &tops, &SemanticConfig::default());
        assert_eq!(out[0].label, SemanticLabel::Home);
        assert_eq!(out[1].label, SemanticLabel::Work);
    }

    #[test]
    fn time_slicing_recovers_both_places_under_heavy_noise() {
        use privlocad_mechanisms::{PlanarLaplace, PlanarLaplaceParams};
        let mech =
            PlanarLaplace::new(PlanarLaplaceParams::from_level(2f64.ln(), 200.0).unwrap());
        let mut rng = privlocad_geo::rng::seeded(44);
        let home = Point::new(0.0, 0.0);
        let office = Point::new(6_000.0, 0.0);
        // Weekday commute over ~70 weeks, every report obfuscated.
        let mut observations = Vec::new();
        for day in 0..500i64 {
            let dow = (day + 5) % 7;
            if dow < 5 {
                observations.push(TimedObservation {
                    timestamp_s: day * 86_400 + 11 * 3_600,
                    location: mech.sample(office, &mut rng),
                });
            }
            observations.push(TimedObservation {
                timestamp_s: day * 86_400 + 22 * 3_600,
                location: mech.sample(home, &mut rng),
            });
        }
        let attack = crate::DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap();
        let sliced = time_sliced_top2(&observations, &attack, &SemanticConfig::default());
        assert_eq!(sliced.len(), 2);
        assert!(
            sliced[0].location.distance(home) < 150.0,
            "home error {}",
            sliced[0].location.distance(home)
        );
        assert!(
            sliced[1].location.distance(office) < 200.0,
            "office error {}",
            sliced[1].location.distance(office)
        );
    }

    #[test]
    fn time_slicing_handles_empty_slices() {
        let attack = crate::DeobfuscationAttack::new(crate::AttackConfig::new(50.0, 500.0));
        // Only night observations: just the home candidate comes back.
        let night: Vec<TimedObservation> = (0..20)
            .map(|i| TimedObservation { timestamp_s: i * 86_400 + 22 * 3_600, location: Point::ORIGIN })
            .collect();
        let sliced = time_sliced_top2(&night, &attack, &SemanticConfig::default());
        assert_eq!(sliced.len(), 1);
        assert_eq!(sliced[0].rank, 0);
        assert!(time_sliced_top2(&[], &attack, &SemanticConfig::default()).is_empty());
    }

    #[test]
    fn label_display() {
        assert_eq!(SemanticLabel::Home.to_string(), "home");
        assert_eq!(SemanticLabel::Work.to_string(), "work");
        assert_eq!(SemanticLabel::Other.to_string(), "other");
    }
}
