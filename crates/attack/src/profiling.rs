use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

use crate::connectivity_clusters;

/// One location/frequency pair of a user's location profile (Equation 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// The location coordinate — the centroid of the check-ins that the
    /// profiler inferred to belong to the same place.
    pub location: Point,
    /// How many check-ins mapped to this location.
    pub frequency: usize,
}

/// A user's location profile `P = {(l₁, f₁), …, (l_M, f_M)}` (Equation 2),
/// ordered by decreasing frequency.
///
/// Both sides of the paper use this structure: the longitudinal attacker
/// builds it from *observed* (possibly obfuscated) check-ins to find top
/// locations, and the Edge-PrivLocAd location-management module builds it
/// from *true* check-ins to decide which locations need permanent
/// obfuscation.
///
/// # Examples
///
/// ```
/// use privlocad_attack::LocationProfile;
/// use privlocad_geo::Point;
///
/// let mut checkins = vec![Point::new(0.0, 0.0); 70];
/// checkins.extend(vec![Point::new(9_000.0, 0.0); 30]);
/// let profile = LocationProfile::from_checkins(&checkins, 50.0);
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile.entries()[0].frequency, 70);
/// assert!(profile.entropy() < 2.0); // a routine-bound user (cf. Fig. 3)
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LocationProfile {
    entries: Vec<ProfileEntry>,
    total: usize,
}

impl LocationProfile {
    /// Builds a profile by connectivity-clustering `checkins` at threshold
    /// `theta` meters (the paper uses 50 m) and taking each cluster's
    /// centroid and size.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not positive and finite.
    pub fn from_checkins(checkins: &[Point], theta: f64) -> Self {
        let clusters = connectivity_clusters(checkins, theta);
        let entries: Vec<ProfileEntry> = clusters
            .iter()
            .map(|c| ProfileEntry {
                // lint:allow(panic-hygiene): provably infallible — connectivity_clusters never emits an empty cluster
                location: c.centroid(checkins).expect("clusters are non-empty"),
                frequency: c.len(),
            })
            .collect();
        LocationProfile { entries, total: checkins.len() }
    }

    /// Builds a profile directly from known location/frequency pairs,
    /// sorting by decreasing frequency.
    ///
    /// Used by the Edge-PrivLocAd location-management module when the edge
    /// device already knows which place each check-in belongs to.
    pub fn from_entries<I: IntoIterator<Item = ProfileEntry>>(entries: I) -> Self {
        let mut entries: Vec<ProfileEntry> = entries.into_iter().collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.frequency));
        let total = entries.iter().map(|e| e.frequency).sum();
        LocationProfile { entries, total }
    }

    /// Rebuilds a profile from entries already in their recorded order,
    /// preserving that order exactly — the checkpoint-restore counterpart
    /// of [`LocationProfile::from_entries`], which re-sorts. A restored
    /// profile must compare equal to the one that was serialized, and
    /// `from_checkins` emits entries in cluster order, not necessarily
    /// frequency order.
    pub fn from_ordered_entries<I: IntoIterator<Item = ProfileEntry>>(entries: I) -> Self {
        let entries: Vec<ProfileEntry> = entries.into_iter().collect();
        let total = entries.iter().map(|e| e.frequency).sum();
        LocationProfile { entries, total }
    }

    /// The profile entries, ordered by decreasing frequency.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Number of distinct locations `M`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the profile has no locations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of check-ins (`sum` in Equation 3).
    pub fn total_checkins(&self) -> usize {
        self.total
    }

    /// The rank-`k` location (0-based: `top(0)` is the top-1 location).
    pub fn top(&self, k: usize) -> Option<&ProfileEntry> {
        self.entries.get(k)
    }

    /// Location entropy (Equation 3), in nats:
    /// `Σᵢ (fᵢ/sum)·ln(sum/fᵢ)`.
    ///
    /// Low entropy means the user's activity is dominated by a few top
    /// locations; the paper reports 88.8 % of users below 2.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum = self.total as f64;
        self.entries
            .iter()
            .filter(|e| e.frequency > 0)
            .map(|e| {
                let f = e.frequency as f64;
                (f / sum) * (sum / f).ln()
            })
            .sum()
    }

    /// Location entropy in bits (base-2 variant of Equation 3).
    pub fn entropy_bits(&self) -> f64 {
        self.entropy() / std::f64::consts::LN_2
    }

    /// Iterates over the entries in decreasing-frequency order.
    pub fn iter(&self) -> std::slice::Iter<'_, ProfileEntry> {
        self.entries.iter()
    }

    /// Merges another profile into this one, re-clustering entries whose
    /// locations are within `theta` meters.
    ///
    /// This supports the paper's multi-edge scenario (Section V-B): each
    /// edge device holds a partial profile, and the η-frequent location set
    /// is computed from the merged result. (The paper delegates
    /// confidentiality of this merge to an MPC protocol it treats as
    /// orthogonal; we merge in the clear.)
    pub fn merge(&self, other: &LocationProfile, theta: f64) -> LocationProfile {
        let mut merged: Vec<ProfileEntry> = Vec::new();
        for e in self.entries.iter().chain(other.entries.iter()) {
            match merged
                .iter_mut()
                .find(|m| m.location.distance(e.location) <= theta)
            {
                Some(m) => {
                    // Frequency-weighted centroid keeps the location stable.
                    let fm = m.frequency as f64;
                    let fe = e.frequency as f64;
                    m.location = (m.location * fm + e.location * fe) / (fm + fe);
                    m.frequency += e.frequency;
                }
                None => merged.push(*e),
            }
        }
        LocationProfile::from_entries(merged)
    }
}

impl<'a> IntoIterator for &'a LocationProfile {
    type Item = &'a ProfileEntry;
    type IntoIter = std::slice::Iter<'a, ProfileEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::{gaussian_2d, seeded};

    fn blob(center: Point, n: usize, spread: f64, seed: u64) -> Vec<Point> {
        let mut rng = seeded(seed);
        (0..n).map(|_| center + gaussian_2d(&mut rng, spread)).collect()
    }

    #[test]
    fn profile_orders_by_frequency() {
        let mut pts = blob(Point::new(0.0, 0.0), 50, 5.0, 1);
        pts.extend(blob(Point::new(10_000.0, 0.0), 200, 5.0, 2));
        pts.extend(blob(Point::new(0.0, 10_000.0), 100, 5.0, 3));
        let p = LocationProfile::from_checkins(&pts, 50.0);
        assert_eq!(p.len(), 3);
        assert_eq!(p.entries()[0].frequency, 200);
        assert_eq!(p.entries()[1].frequency, 100);
        assert_eq!(p.entries()[2].frequency, 50);
        assert!(p.top(0).unwrap().location.distance(Point::new(10_000.0, 0.0)) < 10.0);
        assert_eq!(p.total_checkins(), 350);
    }

    #[test]
    fn empty_profile() {
        let p = LocationProfile::from_checkins(&[], 50.0);
        assert!(p.is_empty());
        assert_eq!(p.entropy(), 0.0);
        assert_eq!(p.top(0), None);
        assert_eq!(p.total_checkins(), 0);
    }

    #[test]
    fn single_location_has_zero_entropy() {
        let p = LocationProfile::from_checkins(&vec![Point::ORIGIN; 100], 50.0);
        assert_eq!(p.len(), 1);
        assert!(p.entropy().abs() < 1e-12);
    }

    #[test]
    fn uniform_over_m_locations_has_entropy_ln_m() {
        let entries = (0..8).map(|i| ProfileEntry {
            location: Point::new(i as f64 * 10_000.0, 0.0),
            frequency: 25,
        });
        let p = LocationProfile::from_entries(entries);
        assert!((p.entropy() - 8f64.ln()).abs() < 1e-12);
        assert!((p.entropy_bits() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn routine_user_entropy_below_two() {
        // 70% home, 25% office, 5% elsewhere — the typical Fig. 3 user.
        let p = LocationProfile::from_entries([
            ProfileEntry { location: Point::new(0.0, 0.0), frequency: 700 },
            ProfileEntry { location: Point::new(8_000.0, 0.0), frequency: 250 },
            ProfileEntry { location: Point::new(0.0, 8_000.0), frequency: 50 },
        ]);
        assert!(p.entropy() < 2.0);
    }

    #[test]
    fn from_entries_sorts() {
        let p = LocationProfile::from_entries([
            ProfileEntry { location: Point::new(0.0, 0.0), frequency: 5 },
            ProfileEntry { location: Point::new(1.0, 0.0), frequency: 50 },
        ]);
        assert_eq!(p.entries()[0].frequency, 50);
    }

    #[test]
    fn merge_combines_nearby_locations() {
        let a = LocationProfile::from_entries([
            ProfileEntry { location: Point::new(0.0, 0.0), frequency: 30 },
            ProfileEntry { location: Point::new(9_000.0, 0.0), frequency: 10 },
        ]);
        let b = LocationProfile::from_entries([
            ProfileEntry { location: Point::new(20.0, 0.0), frequency: 50 },
        ]);
        let m = a.merge(&b, 50.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.entries()[0].frequency, 80);
        assert_eq!(m.total_checkins(), 90);
        // Weighted centroid: (0·30 + 20·50)/80 = 12.5.
        assert!((m.entries()[0].location.x - 12.5).abs() < 1e-9);
    }

    #[test]
    fn merge_keeps_distant_locations_separate() {
        let a = LocationProfile::from_entries([ProfileEntry {
            location: Point::new(0.0, 0.0),
            frequency: 5,
        }]);
        let b = LocationProfile::from_entries([ProfileEntry {
            location: Point::new(500.0, 0.0),
            frequency: 7,
        }]);
        let m = a.merge(&b, 50.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_yields_sorted_entries() {
        let p = LocationProfile::from_entries([
            ProfileEntry { location: Point::new(0.0, 0.0), frequency: 1 },
            ProfileEntry { location: Point::new(1.0, 0.0), frequency: 3 },
            ProfileEntry { location: Point::new(2.0, 0.0), frequency: 2 },
        ]);
        let freqs: Vec<usize> = p.iter().map(|e| e.frequency).collect();
        assert_eq!(freqs, vec![3, 2, 1]);
        let freqs2: Vec<usize> = (&p).into_iter().map(|e| e.frequency).collect();
        assert_eq!(freqs2, freqs);
    }

    #[test]
    fn more_checkins_dont_raise_entropy_for_routine_users() {
        // Mimics Fig. 3's negative correlation: heavy users concentrate
        // activity on the same top locations, so entropy stays low.
        let mut light = blob(Point::new(0.0, 0.0), 10, 5.0, 10);
        light.extend(blob(Point::new(10_000.0, 0.0), 5, 5.0, 11));
        light.extend(blob(Point::new(20_000.0, 0.0), 5, 5.0, 12));
        let heavy_top = blob(Point::new(0.0, 0.0), 900, 5.0, 13);
        let mut heavy = heavy_top;
        heavy.extend(blob(Point::new(10_000.0, 0.0), 80, 5.0, 14));
        heavy.extend(blob(Point::new(20_000.0, 0.0), 20, 5.0, 15));
        let e_light = LocationProfile::from_checkins(&light, 50.0).entropy();
        let e_heavy = LocationProfile::from_checkins(&heavy, 50.0).entropy();
        assert!(e_heavy < e_light, "heavy {e_heavy} light {e_light}");
    }
}
