//! Ingestion of the live OpenRTB-lite bid stream — the attacker's actual
//! observation channel.
//!
//! Section III's observer does not get a curated per-user dataset; it taps
//! the bid-request bytes an ad exchange settles. [`ExchangeObservations`]
//! rebuilds the per-device observation sequences from exactly that
//! material: either the raw concatenated wire frames
//! ([`ExchangeObservations::from_wire`], decoding request frames and
//! skipping responses) or an already-settled
//! [`BidExchangeLog`](privlocad_openrtb::BidExchangeLog)
//! ([`ExchangeObservations::from_log`]). The synthetic `BidLog` path the
//! evaluation previously used survives only as a test fixture; the
//! end-to-end experiments run the attack off these live observations.

use bytes::Bytes;
use privlocad_geo::Point;
use privlocad_openrtb::{
    BidExchangeLog, BidRequest, DecodeError, DeviceId, Frame, KIND_BID_REQUEST,
};
use std::collections::BTreeMap;

use crate::deobfuscation::{DeobfuscationAttack, InferredLocation};

/// Per-device observation sequences reconstructed from the bid stream.
#[derive(Debug, Clone, Default)]
pub struct ExchangeObservations {
    per_device: BTreeMap<u64, Vec<Point>>,
}

impl ExchangeObservations {
    /// Parses a concatenated stream of OpenRTB-lite frames — the bytes as
    /// the attacker taps them. Bid-request frames contribute one
    /// observation each, keyed by the device identifier and ordered by the
    /// request sequence number; response frames are decoded (to advance
    /// the stream) and skipped.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] on a malformed or truncated
    /// frame; a real observer would resynchronize, but the evaluation
    /// demands bit-exact input.
    pub fn from_wire(mut stream: Bytes) -> Result<Self, DecodeError> {
        let mut sequenced: BTreeMap<u64, Vec<(u64, Point)>> = BTreeMap::new();
        while !stream.is_empty() {
            let (frame, consumed) = Frame::decode(&stream)?;
            if frame.kind == KIND_BID_REQUEST {
                let request = BidRequest::from_frame(&frame)?;
                sequenced
                    .entry(request.device.id.raw())
                    .or_default()
                    .push((request.seq, request.device.geo.point()));
            }
            stream = stream.slice(consumed..stream.len());
        }
        let per_device = sequenced
            .into_iter()
            .map(|(device, mut seen)| {
                seen.sort_by_key(|&(seq, _)| seq);
                (device, seen.into_iter().map(|(_, p)| p).collect())
            })
            .collect();
        Ok(ExchangeObservations { per_device })
    }

    /// Reads the observation sequences out of a settled exchange log.
    pub fn from_log(log: &BidExchangeLog) -> Self {
        let per_device = log
            .devices()
            .into_iter()
            .map(|device| (device.raw(), log.locations_of(device)))
            .collect();
        ExchangeObservations { per_device }
    }

    /// Every observed device, ascending.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.per_device.keys().map(|&raw| DeviceId::new(raw)).collect()
    }

    /// One device's observation sequence, in request order.
    pub fn locations_of(&self, device: DeviceId) -> &[Point] {
        self.per_device.get(&device.raw()).map_or(&[], Vec::as_slice)
    }

    /// Total observations across all devices.
    pub fn len(&self) -> usize {
        self.per_device.values().map(Vec::len).sum()
    }

    /// Whether no observations were captured.
    pub fn is_empty(&self) -> bool {
        self.per_device.is_empty()
    }

    /// Runs Algorithm 1 against one device's live observations.
    pub fn infer_top_locations(
        &self,
        attack: &DeobfuscationAttack,
        device: DeviceId,
        k: usize,
    ) -> Vec<InferredLocation> {
        attack.infer_top_locations(self.locations_of(device), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use privlocad_openrtb::{BidResponse, Geo};

    fn wire(frames: &[(u64, u64, f64)]) -> Bytes {
        let mut buf = BytesMut::new();
        for &(device, seq, x) in frames {
            let request = BidRequest::new(DeviceId::new(device), seq, Geo { x, y: 0.0 });
            request.encode_into(&mut buf);
            BidResponse::no_bid(request.id).encode_into(&mut buf);
        }
        buf.freeze()
    }

    #[test]
    fn wire_taps_rebuild_per_device_sequences() {
        let stream = wire(&[(2, 0, 20.0), (1, 0, 10.0), (1, 1, 11.0)]);
        let obs = ExchangeObservations::from_wire(stream).unwrap();
        assert_eq!(obs.devices(), vec![DeviceId::new(1), DeviceId::new(2)]);
        assert_eq!(obs.len(), 3);
        let xs: Vec<f64> = obs.locations_of(DeviceId::new(1)).iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![10.0, 11.0]);
        assert!(obs.locations_of(DeviceId::new(9)).is_empty());
    }

    #[test]
    fn truncated_streams_surface_a_decode_error() {
        let stream = wire(&[(1, 0, 1.0)]);
        let cut = stream.slice(0..stream.len() - 3);
        assert!(matches!(
            ExchangeObservations::from_wire(cut),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn observations_sort_by_sequence_not_arrival() {
        let stream = wire(&[(1, 1, 11.0), (1, 0, 10.0)]);
        let obs = ExchangeObservations::from_wire(stream).unwrap();
        let xs: Vec<f64> = obs.locations_of(DeviceId::new(1)).iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![10.0, 11.0]);
    }
}
