//! An online variant of the longitudinal attacker.
//!
//! The batch attack of Algorithm 1 assumes the observer holds the full
//! log; in reality "any advertisers or third-party traffic verification
//! companies can observe the location updating from the billions of ad
//! bidding logs per day" — a *stream*. [`OnlineAttack`] ingests one
//! observation at a time, maintaining connectivity clusters incrementally
//! (grid-bucketed union-find), so the attacker's current best guess is
//! available after every observation in O(neighbors) amortized work
//! instead of re-clustering the history.
//!
//! Top-location extraction reuses the batch trimming logic, seeded by the
//! incrementally maintained components.

use std::collections::{BTreeMap, HashMap};

use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

use crate::{AttackConfig, DeobfuscationAttack, InferredLocation};

/// Incrementally maintained connectivity clustering over a stream of
/// observations.
///
/// # Examples
///
/// ```
/// use privlocad_attack::{AttackConfig, OnlineAttack};
/// use privlocad_geo::Point;
///
/// let mut attack = OnlineAttack::new(AttackConfig::new(50.0, 500.0));
/// for i in 0..100 {
///     attack.observe(Point::new((i % 10) as f64, 0.0));
/// }
/// let tops = attack.current_top_locations(1);
/// assert_eq!(tops[0].support, 100);
/// assert!(tops[0].location.distance(Point::new(4.5, 0.0)) < 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineAttack {
    config: AttackConfig,
    points: Vec<Point>,
    // Incremental spatial hash: cell -> point indices.
    cells: HashMap<(i64, i64), Vec<usize>>,
    // Union-find over observation indices.
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl OnlineAttack {
    /// Creates an empty online attacker.
    pub fn new(config: AttackConfig) -> Self {
        OnlineAttack {
            config,
            points: Vec::new(),
            cells: HashMap::new(),
            parent: Vec::new(),
            size: Vec::new(),
        }
    }

    /// The attack configuration.
    pub fn config(&self) -> AttackConfig {
        self.config
    }

    /// Number of observations ingested.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        let u = self.config.theta;
        ((p.x / u).floor() as i64, (p.y / u).floor() as i64)
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }

    /// Ingests one observation, linking it to every earlier observation
    /// within θ meters.
    pub fn observe(&mut self, p: Point) {
        let idx = self.points.len();
        self.points.push(p);
        self.parent.push(idx);
        self.size.push(1);
        let (cx, cy) = self.cell_of(p);
        let theta_sq = self.config.theta * self.config.theta;
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(neighbors) = self.cells.get(&(cx + dx, cy + dy)) {
                    // Collect first: union borrows self mutably.
                    let close: Vec<usize> = neighbors
                        .iter()
                        .copied()
                        .filter(|&j| self.points[j].distance_sq(p) <= theta_sq)
                        .collect();
                    for j in close {
                        self.union(idx, j);
                    }
                }
            }
        }
        self.cells.entry((cx, cy)).or_default().push(idx);
    }

    /// Ingests a batch of observations.
    pub fn observe_all<I: IntoIterator<Item = Point>>(&mut self, points: I) {
        for p in points {
            self.observe(p);
        }
    }

    /// The size of the largest current connected component.
    pub fn largest_component(&mut self) -> usize {
        let n = self.points.len();
        (0..n).map(|i| self.find(i)).fold(BTreeMap::new(), |mut acc: BTreeMap<usize, usize>, r| {
            *acc.entry(r).or_insert(0) += 1;
            acc
        })
        .into_values()
        .max()
        .unwrap_or(0)
    }

    /// The attacker's current best top-k estimate.
    ///
    /// Runs the batch extraction (largest component → trimming → remove →
    /// repeat) over the accumulated observations; the incremental state
    /// guarantees the stream has been fully linked, and the batch pass is
    /// only paid when the attacker actually wants an estimate.
    pub fn current_top_locations(&self, k: usize) -> Vec<InferredLocation> {
        DeobfuscationAttack::new(self.config).infer_top_locations(&self.points, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::seeded;
    use privlocad_mechanisms::{PlanarLaplace, PlanarLaplaceParams};

    fn config() -> AttackConfig {
        AttackConfig::new(50.0, 700.0)
    }

    #[test]
    fn empty_state() {
        let mut a = OnlineAttack::new(config());
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.largest_component(), 0);
        assert!(a.current_top_locations(1).is_empty());
    }

    #[test]
    fn incremental_components_match_batch_clustering() {
        let mech =
            PlanarLaplace::new(PlanarLaplaceParams::from_level(6f64.ln(), 200.0).unwrap());
        let mut rng = seeded(3);
        let home = Point::new(0.0, 0.0);
        let pts: Vec<Point> = (0..400).map(|_| mech.sample(home, &mut rng)).collect();
        let mut online = OnlineAttack::new(config());
        online.observe_all(pts.iter().copied());
        let batch = crate::connectivity_clusters(&pts, 50.0);
        assert_eq!(online.largest_component(), batch[0].len());
        assert_eq!(online.len(), 400);
    }

    #[test]
    fn estimate_converges_as_the_stream_grows() {
        let mech =
            PlanarLaplace::new(PlanarLaplaceParams::from_level(4f64.ln(), 200.0).unwrap());
        let attack_cfg = DeobfuscationAttack::for_planar_laplace(&mech, 0.05)
            .unwrap()
            .config();
        let mut online = OnlineAttack::new(attack_cfg);
        let home = Point::new(3_000.0, -1_000.0);
        let mut rng = seeded(5);
        let mut errors = Vec::new();
        for batch in 0..4 {
            for _ in 0..250 {
                online.observe(mech.sample(home, &mut rng));
            }
            let top = &online.current_top_locations(1)[0];
            errors.push(top.location.distance(home));
            assert_eq!(online.len(), (batch + 1) * 250);
        }
        // More stream, better estimate (allowing small non-monotonic noise).
        assert!(
            errors.last().unwrap() < &(errors[0] + 10.0),
            "errors {errors:?}"
        );
        assert!(errors.last().unwrap() < &100.0, "final error {:?}", errors.last());
    }

    #[test]
    fn matches_batch_attack_exactly_on_the_same_data() {
        let mech =
            PlanarLaplace::new(PlanarLaplaceParams::from_level(4f64.ln(), 200.0).unwrap());
        let mut rng = seeded(8);
        let pts: Vec<Point> = (0..300)
            .map(|i| {
                let place = if i % 3 == 0 {
                    Point::new(9_000.0, 0.0)
                } else {
                    Point::ORIGIN
                };
                mech.sample(place, &mut rng)
            })
            .collect();
        let cfg = DeobfuscationAttack::for_planar_laplace(&mech, 0.05).unwrap().config();
        let mut online = OnlineAttack::new(cfg);
        online.observe_all(pts.iter().copied());
        let batch = DeobfuscationAttack::new(cfg).infer_top_locations(&pts, 2);
        assert_eq!(online.current_top_locations(2), batch);
    }

    #[test]
    fn distinct_blobs_stay_separate_components() {
        let mut online = OnlineAttack::new(config());
        for i in 0..30 {
            online.observe(Point::new(i as f64, 0.0));
            online.observe(Point::new(10_000.0 + i as f64, 0.0));
        }
        assert_eq!(online.largest_component(), 30);
    }
}
