//! Mobility-pattern inference over recovered top locations.
//!
//! Beyond static top locations, a longitudinal observer reconstructs *how*
//! the victim moves between them (Fig. 2 of the paper shows a 7-day
//! commute pattern). Given the timestamped observation stream and the
//! inferred top locations, this module builds per-location hourly visit
//! histograms and the first-order transition matrix between consecutive
//! top-location visits.

use serde::{Deserialize, Serialize};

use crate::semantics::TimedObservation;
use crate::InferredLocation;

/// The inferred mobility pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityPattern {
    /// `hourly[i][h]`: observations of top-i during hour-of-day `h`.
    pub hourly: Vec<[u32; 24]>,
    /// `transitions[i][j]`: consecutive-visit moves from top-i to top-j
    /// (repeat visits to the same location are collapsed first).
    pub transitions: Vec<Vec<u32>>,
    /// Observations assigned to each top location.
    pub support: Vec<usize>,
    /// Observations not within the assignment radius of any top.
    pub unassigned: usize,
}

impl MobilityPattern {
    /// Infers the pattern from time-ordered observations.
    ///
    /// Observations are assigned to the nearest top within
    /// `assign_radius_m`; others only contribute to `unassigned`.
    ///
    /// # Panics
    ///
    /// Panics if `assign_radius_m` is not positive and finite.
    pub fn infer(
        observations: &[TimedObservation],
        tops: &[InferredLocation],
        assign_radius_m: f64,
    ) -> MobilityPattern {
        assert!(
            assign_radius_m.is_finite() && assign_radius_m > 0.0,
            "assignment radius must be positive and finite"
        );
        let radius_sq = assign_radius_m * assign_radius_m;
        let mut sorted: Vec<&TimedObservation> = observations.iter().collect();
        sorted.sort_by_key(|o| o.timestamp_s);

        let mut hourly = vec![[0u32; 24]; tops.len()];
        let mut transitions = vec![vec![0u32; tops.len()]; tops.len()];
        let mut support = vec![0usize; tops.len()];
        let mut unassigned = 0usize;
        let mut previous: Option<usize> = None;

        for obs in sorted {
            let nearest = tops
                .iter()
                .enumerate()
                .map(|(i, t)| (i, t.location.distance_sq(obs.location)))
                .filter(|&(_, d)| d <= radius_sq)
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i);
            match nearest {
                Some(idx) => {
                    support[idx] += 1;
                    let hour = (obs.timestamp_s.rem_euclid(86_400) / 3_600) as usize;
                    hourly[idx][hour] += 1;
                    if let Some(prev) = previous {
                        if prev != idx {
                            transitions[prev][idx] += 1;
                        }
                    }
                    previous = Some(idx);
                }
                None => unassigned += 1,
            }
        }
        MobilityPattern { hourly, transitions, support, unassigned }
    }

    /// The busiest hour of top-`i`, or `None` without observations.
    pub fn peak_hour(&self, i: usize) -> Option<u8> {
        let hist = self.hourly.get(i)?;
        if hist.iter().all(|&c| c == 0) {
            return None;
        }
        hist.iter().enumerate().max_by_key(|(_, &c)| c).map(|(h, _)| h as u8)
    }

    /// Total observed transitions between distinct top locations.
    pub fn total_transitions(&self) -> u32 {
        self.transitions.iter().flatten().sum()
    }

    /// The most frequent directed transition `(from, to)`, or `None` when
    /// no transitions were observed.
    pub fn dominant_transition(&self) -> Option<(usize, usize)> {
        let mut best = None;
        let mut best_count = 0;
        for (i, row) in self.transitions.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c > best_count {
                    best_count = c;
                    best = Some((i, j));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::Point;

    fn top(rank: usize, x: f64) -> InferredLocation {
        InferredLocation { rank, location: Point::new(x, 0.0), support: 0 }
    }

    fn obs(ts: i64, x: f64) -> TimedObservation {
        TimedObservation { timestamp_s: ts, location: Point::new(x, 0.0) }
    }

    #[test]
    fn commute_pattern_recovered() {
        // home (x=0) nights, work (x=9000) days, 5 days.
        let mut observations = Vec::new();
        for d in 0..5i64 {
            observations.push(obs(d * 86_400 + 7 * 3_600, 0.0)); // 07:00 home
            observations.push(obs(d * 86_400 + 10 * 3_600, 9_000.0)); // 10:00 work
            observations.push(obs(d * 86_400 + 15 * 3_600, 9_000.0)); // 15:00 work
            observations.push(obs(d * 86_400 + 21 * 3_600, 0.0)); // 21:00 home
        }
        let tops = [top(0, 0.0), top(1, 9_000.0)];
        let p = MobilityPattern::infer(&observations, &tops, 500.0);
        assert_eq!(p.support, vec![10, 10]);
        assert_eq!(p.unassigned, 0);
        // One home→work and one work→home transition per day; the
        // day-boundary home(21:00)→home(07:00) pair collapses.
        assert_eq!(p.transitions[0][1], 5);
        assert_eq!(p.transitions[1][0], 5);
        assert_eq!(p.total_transitions(), 10);
        assert!(matches!(p.dominant_transition(), Some((0, 1)) | Some((1, 0))));
        // Peak hours land in the right part of the day.
        let home_peak = p.peak_hour(0).unwrap();
        assert!(home_peak == 7 || home_peak == 21);
        let work_peak = p.peak_hour(1).unwrap();
        assert!((10..=15).contains(&work_peak));
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let observations = vec![
            obs(3 * 3_600, 9_000.0),
            obs(3_600, 0.0),
            obs(5 * 3_600, 0.0),
        ];
        let tops = [top(0, 0.0), top(1, 9_000.0)];
        let p = MobilityPattern::infer(&observations, &tops, 500.0);
        // Time order: home → work → home.
        assert_eq!(p.transitions[0][1], 1);
        assert_eq!(p.transitions[1][0], 1);
    }

    #[test]
    fn repeat_visits_do_not_self_transition() {
        let observations = vec![obs(0, 0.0), obs(3_600, 0.0), obs(7_200, 0.0)];
        let p = MobilityPattern::infer(&observations, &[top(0, 0.0)], 500.0);
        assert_eq!(p.total_transitions(), 0);
        assert_eq!(p.support[0], 3);
    }

    #[test]
    fn distant_observations_unassigned() {
        let observations = vec![obs(0, 50_000.0), obs(3_600, 0.0)];
        let p = MobilityPattern::infer(&observations, &[top(0, 0.0)], 500.0);
        assert_eq!(p.unassigned, 1);
        assert_eq!(p.support[0], 1);
    }

    #[test]
    fn empty_inputs() {
        let p = MobilityPattern::infer(&[], &[top(0, 0.0)], 500.0);
        assert_eq!(p.support, vec![0]);
        assert_eq!(p.peak_hour(0), None);
        assert_eq!(p.dominant_transition(), None);
        let q = MobilityPattern::infer(&[obs(0, 0.0)], &[], 500.0);
        assert_eq!(q.unassigned, 1);
        assert!(q.hourly.is_empty());
    }

    #[test]
    #[should_panic(expected = "assignment radius")]
    fn rejects_bad_radius() {
        let _ = MobilityPattern::infer(&[], &[], 0.0);
    }
}
