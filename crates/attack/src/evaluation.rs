//! Attack-success evaluation (the metrics behind Figs. 4 and 6).
//!
//! The paper calls an attack on one user *successful at rank k and
//! threshold d* when the inferred top-k location lies within `d` meters of
//! the user's true top-k location. The [`AttackStats`] aggregator collects
//! rank-wise inference distances over a user population and reports success
//! rates and distance CDFs.

use serde::{Deserialize, Serialize};

use privlocad_geo::Point;

use crate::InferredLocation;

/// Rank-wise distances between inferred and true top locations.
///
/// `result[k]` is `Some(distance in meters)` when both an inferred and a
/// true location exist at rank `k`, and `None` when the attack produced no
/// inference for that rank (treated as a failed attack at every threshold).
///
/// # Examples
///
/// ```
/// use privlocad_attack::evaluation::rank_distances;
/// use privlocad_attack::InferredLocation;
/// use privlocad_geo::Point;
///
/// let inferred = vec![InferredLocation { rank: 0, location: Point::new(30.0, 40.0), support: 10 }];
/// let truth = vec![Point::ORIGIN, Point::new(9_000.0, 0.0)];
/// let d = rank_distances(&inferred, &truth);
/// assert_eq!(d, vec![Some(50.0), None]);
/// ```
pub fn rank_distances(inferred: &[InferredLocation], truth: &[Point]) -> Vec<Option<f64>> {
    truth
        .iter()
        .enumerate()
        .map(|(k, t)| {
            inferred
                .iter()
                .find(|i| i.rank == k)
                .map(|i| i.location.distance(*t))
        })
        .collect()
}

/// Aggregated attack results over a population of users.
///
/// # Examples
///
/// ```
/// use privlocad_attack::evaluation::AttackStats;
///
/// let mut stats = AttackStats::new(2);
/// stats.record(&[Some(120.0), Some(800.0)]);
/// stats.record(&[Some(350.0), None]);
/// assert_eq!(stats.users(), 2);
/// assert!((stats.success_rate(0, 200.0) - 0.5).abs() < 1e-12);
/// assert!((stats.success_rate(1, 1_000.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackStats {
    /// distances[k] holds one entry per recorded user: the rank-k inference
    /// distance, or `None` when the attack produced nothing at that rank.
    distances: Vec<Vec<Option<f64>>>,
    users: usize,
}

impl AttackStats {
    /// Creates an aggregator tracking the first `max_rank` ranks.
    pub fn new(max_rank: usize) -> Self {
        AttackStats { distances: vec![Vec::new(); max_rank], users: 0 }
    }

    /// Records one user's rank-wise distances (from [`rank_distances`]).
    ///
    /// Missing ranks beyond `user.len()` are recorded as failures.
    pub fn record(&mut self, user: &[Option<f64>]) {
        for (k, bucket) in self.distances.iter_mut().enumerate() {
            bucket.push(user.get(k).copied().flatten());
        }
        self.users += 1;
    }

    /// Number of users recorded.
    pub fn users(&self) -> usize {
        self.users
    }

    /// Number of tracked ranks.
    pub fn max_rank(&self) -> usize {
        self.distances.len()
    }

    /// Fraction of users whose rank-`k` inference landed within
    /// `threshold_m` meters (the paper's attack success rate).
    ///
    /// Returns 0 when no users are recorded.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a tracked rank.
    pub fn success_rate(&self, k: usize, threshold_m: f64) -> f64 {
        let bucket = &self.distances[k];
        if bucket.is_empty() {
            return 0.0;
        }
        let hits = bucket
            .iter()
            .filter(|d| matches!(d, Some(x) if *x <= threshold_m))
            .count();
        hits as f64 / bucket.len() as f64
    }

    /// Empirical CDF of the rank-`k` inference distance evaluated at each
    /// of the `thresholds` (meters): the per-threshold success rates that
    /// make up one curve of Fig. 6.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a tracked rank.
    pub fn success_curve(&self, k: usize, thresholds: &[f64]) -> Vec<f64> {
        thresholds.iter().map(|&t| self.success_rate(k, t)).collect()
    }

    /// Mean rank-`k` inference distance over users where the attack
    /// produced an inference, or `None` if it never did.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a tracked rank.
    pub fn mean_distance(&self, k: usize) -> Option<f64> {
        let xs: Vec<f64> = self.distances[k].iter().filter_map(|d| *d).collect();
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }

    /// Median rank-`k` inference distance, or `None` when no inferences
    /// exist at that rank.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a tracked rank.
    pub fn median_distance(&self, k: usize) -> Option<f64> {
        let mut xs: Vec<f64> = self.distances[k].iter().filter_map(|d| *d).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(f64::total_cmp);
        Some(xs[xs.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inf(rank: usize, x: f64, y: f64) -> InferredLocation {
        InferredLocation { rank, location: Point::new(x, y), support: 1 }
    }

    #[test]
    fn rank_distances_pairs_by_rank() {
        let inferred = vec![inf(0, 0.0, 100.0), inf(1, 5_000.0, 0.0)];
        let truth = vec![Point::ORIGIN, Point::new(5_000.0, 50.0)];
        let d = rank_distances(&inferred, &truth);
        assert_eq!(d.len(), 2);
        assert!((d[0].unwrap() - 100.0).abs() < 1e-12);
        assert!((d[1].unwrap() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn missing_rank_is_none() {
        let inferred = vec![inf(0, 0.0, 0.0)];
        let truth = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let d = rank_distances(&inferred, &truth);
        assert_eq!(d, vec![Some(0.0), None, None]);
    }

    #[test]
    fn empty_truth_empty_result() {
        assert!(rank_distances(&[inf(0, 0.0, 0.0)], &[]).is_empty());
    }

    #[test]
    fn success_rate_counts_thresholds_inclusively() {
        let mut s = AttackStats::new(1);
        s.record(&[Some(200.0)]);
        s.record(&[Some(201.0)]);
        assert!((s.success_rate(0, 200.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn none_counts_as_failure() {
        let mut s = AttackStats::new(2);
        s.record(&[Some(10.0)]); // rank-1 missing entirely
        assert!((s.success_rate(0, 100.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.success_rate(1, 1e12), 0.0);
    }

    #[test]
    fn success_curve_is_monotone() {
        let mut s = AttackStats::new(1);
        for d in [50.0, 150.0, 250.0, 400.0, 900.0] {
            s.record(&[Some(d)]);
        }
        let curve = s.success_curve(0, &[100.0, 200.0, 300.0, 500.0, 1_000.0]);
        for w in curve.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((curve[0] - 0.2).abs() < 1e-12);
        assert!((curve[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_median() {
        let mut s = AttackStats::new(1);
        for d in [100.0, 200.0, 600.0] {
            s.record(&[Some(d)]);
        }
        s.record(&[None]);
        assert!((s.mean_distance(0).unwrap() - 300.0).abs() < 1e-12);
        assert!((s.median_distance(0).unwrap() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = AttackStats::new(3);
        assert_eq!(s.users(), 0);
        assert_eq!(s.max_rank(), 3);
        assert_eq!(s.success_rate(0, 100.0), 0.0);
        assert_eq!(s.mean_distance(0), None);
        assert_eq!(s.median_distance(0), None);
    }
}
