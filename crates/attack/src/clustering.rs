use privlocad_geo::grid::SpatialGrid;
use privlocad_geo::Point;

/// A cluster of check-in indices produced by [`connectivity_clusters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Indices into the input slice, in ascending order.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Number of check-ins in the cluster — the frequency estimate of the
    /// location profile.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members (never produced by
    /// [`connectivity_clusters`], but useful for callers building clusters
    /// incrementally).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The centroid of the cluster's members within `points`.
    ///
    /// Returns `None` for an empty cluster.
    ///
    /// # Panics
    ///
    /// Panics if a member index is out of bounds for `points`.
    pub fn centroid(&self, points: &[Point]) -> Option<Point> {
        if self.members.is_empty() {
            return None;
        }
        let mut sum = Point::ORIGIN;
        for &i in &self.members {
            sum += points[i];
        }
        Some(Point::new(sum.x / self.members.len() as f64, sum.y / self.members.len() as f64))
    }
}

/// Partitions `points` into connectivity-based clusters: two check-ins are
/// *connected* when their Euclidean distance is at most `theta` meters, and
/// clusters are the connected components of that graph (Algorithm 1, line 2;
/// also the profiling step of Section III-B with θ = 50 m).
///
/// Clusters are returned sorted by size, largest first; ties are broken by
/// the smallest member index so the output is deterministic.
///
/// The implementation unions grid-accelerated neighbor pairs with a
/// weighted-quick-union disjoint-set, so it runs in near-linear time in the
/// number of neighbor pairs rather than O(m²) over all check-ins.
///
/// # Panics
///
/// Panics if `theta` is not positive and finite.
///
/// # Examples
///
/// ```
/// use privlocad_attack::connectivity_clusters;
/// use privlocad_geo::Point;
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(30.0, 0.0),   // chained to the first
///     Point::new(60.0, 0.0),   // chained through the second
///     Point::new(500.0, 0.0),  // isolated
/// ];
/// let clusters = connectivity_clusters(&pts, 50.0);
/// assert_eq!(clusters[0].members, vec![0, 1, 2]);
/// assert_eq!(clusters[1].members, vec![3]);
/// ```
pub fn connectivity_clusters(points: &[Point], theta: f64) -> Vec<Cluster> {
    connectivity_clusters_with(points, theta, &mut ClusterScratch::default())
}

/// Reusable buffers for [`connectivity_clusters_with`]: the spatial grid
/// and its per-query neighbor list survive across calls, so repeated
/// clustering passes (one per extracted rank in Algorithm 1, one per trial
/// in the Monte-Carlo sweeps) stop re-allocating the acceleration
/// structure every time.
///
/// The scratch is pure acceleration state — results are identical whether
/// a scratch is fresh or carried over from any previous call.
#[derive(Debug, Default)]
pub struct ClusterScratch {
    grid: Option<SpatialGrid>,
    neighbors: Vec<usize>,
}

/// [`connectivity_clusters`] with caller-owned scratch buffers.
///
/// # Panics
///
/// Panics if `theta` is not positive and finite.
pub fn connectivity_clusters_with(
    points: &[Point],
    theta: f64,
    scratch: &mut ClusterScratch,
) -> Vec<Cluster> {
    assert!(theta.is_finite() && theta > 0.0, "theta must be positive and finite");
    if points.is_empty() {
        return Vec::new();
    }
    let ClusterScratch { grid, neighbors } = scratch;
    let grid = match grid {
        Some(g) => {
            g.rebuild(points, theta);
            g
        }
        None => grid.insert(SpatialGrid::build(points, theta)),
    };
    let mut dsu = DisjointSet::new(points.len());
    for (i, &point) in points.iter().enumerate() {
        grid.neighbors_within_into(point, theta, neighbors);
        for &j in neighbors.iter() {
            if j > i {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = std::collections::BTreeMap::new();
    for i in 0..points.len() {
        groups.entry(dsu.find(i)).or_default().push(i);
    }
    let mut clusters: Vec<Cluster> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            Cluster { members }
        })
        .collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then(a.members[0].cmp(&b.members[0])));
    clusters
}

/// Weighted quick-union with path halving.
#[derive(Debug)]
struct DisjointSet {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl DisjointSet {
    fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_geo::rng::{gaussian_2d, seeded};

    #[test]
    fn empty_input_gives_no_clusters() {
        assert!(connectivity_clusters(&[], 50.0).is_empty());
    }

    #[test]
    fn single_point_is_single_cluster() {
        let clusters = connectivity_clusters(&[Point::ORIGIN], 50.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members, vec![0]);
    }

    #[test]
    fn transitive_chaining_joins_clusters() {
        // 0-1-2 chained at 40 m steps (pairwise 0-2 distance is 80 > θ).
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(80.0, 0.0),
        ];
        let clusters = connectivity_clusters(&pts, 50.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn distance_exactly_theta_is_connected() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        assert_eq!(connectivity_clusters(&pts, 50.0).len(), 1);
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut rng = seeded(4);
        let mut pts = Vec::new();
        for _ in 0..80 {
            pts.push(Point::new(0.0, 0.0) + gaussian_2d(&mut rng, 10.0));
        }
        for _ in 0..40 {
            pts.push(Point::new(5_000.0, 0.0) + gaussian_2d(&mut rng, 10.0));
        }
        let clusters = connectivity_clusters(&pts, 50.0);
        assert_eq!(clusters[0].len(), 80);
        assert_eq!(clusters[1].len(), 40);
        // Largest-first ordering.
        assert!(clusters[0].len() >= clusters[1].len());
        // Centroids near the true blob centers.
        assert!(clusters[0].centroid(&pts).unwrap().distance(Point::ORIGIN) < 10.0);
        assert!(clusters[1].centroid(&pts).unwrap().distance(Point::new(5_000.0, 0.0)) < 10.0);
    }

    #[test]
    fn clusters_partition_the_input() {
        let mut rng = seeded(8);
        let pts: Vec<Point> = (0..500)
            .map(|_| gaussian_2d(&mut rng, 2_000.0))
            .collect();
        let clusters = connectivity_clusters(&pts, 50.0);
        let mut seen = vec![false; pts.len()];
        for c in &clusters {
            for &m in &c.members {
                assert!(!seen[m], "index {m} appears twice");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_ordering() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1_000.0, 0.0),
            Point::new(2_000.0, 0.0),
        ];
        let a = connectivity_clusters(&pts, 50.0);
        let b = connectivity_clusters(&pts, 50.0);
        assert_eq!(a, b);
        // Equal sizes → ordered by smallest member index.
        assert_eq!(a[0].members, vec![0]);
        assert_eq!(a[1].members, vec![1]);
        assert_eq!(a[2].members, vec![2]);
    }

    #[test]
    fn cluster_helpers() {
        let c = Cluster { members: vec![] };
        assert!(c.is_empty());
        assert_eq!(c.centroid(&[]), None);
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn rejects_bad_theta() {
        let _ = connectivity_clusters(&[Point::ORIGIN], f64::NAN);
    }

    #[test]
    fn reused_scratch_matches_fresh_clustering() {
        let mut rng = seeded(13);
        let mut scratch = ClusterScratch::default();
        for round in 0..4 {
            let pts: Vec<Point> = (0..300)
                .map(|_| gaussian_2d(&mut rng, 1_000.0 + 500.0 * round as f64))
                .collect();
            let fresh = connectivity_clusters(&pts, 50.0);
            let reused = connectivity_clusters_with(&pts, 50.0, &mut scratch);
            assert_eq!(fresh, reused, "round {round}");
        }
    }
}
