//! Property-based tests for the geometry substrate.

use privlocad_geo::grid::SpatialGrid;
use privlocad_geo::{centroid, Circle, GeoPoint, LocalProjection, Point};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -100_000.0..100_000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_nonnegative_symmetric(a in point(), b in point()) {
        prop_assert!(a.distance(b) >= 0.0);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
    }

    #[test]
    fn distance_translation_invariant(a in point(), b in point(), t in point()) {
        let d1 = a.distance(b);
        let d2 = (a + t).distance(b + t);
        // Relative tolerance: translation can shift magnitudes by ~1e5.
        prop_assert!((d1 - d2).abs() <= 1e-7 * (1.0 + d1));
    }

    #[test]
    fn centroid_within_bounding_box(pts in proptest::collection::vec(point(), 1..50)) {
        let c = centroid(&pts).unwrap();
        let (min_x, max_x) = pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.x), hi.max(p.x)));
        let (min_y, max_y) = pts.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| (lo.min(p.y), hi.max(p.y)));
        prop_assert!(c.x >= min_x - 1e-9 && c.x <= max_x + 1e-9);
        prop_assert!(c.y >= min_y - 1e-9 && c.y <= max_y + 1e-9);
    }

    #[test]
    fn projection_round_trip(lat in 30.7..31.4f64, lon in 121.0..122.0f64) {
        let proj = LocalProjection::new(GeoPoint::new(31.05, 121.5).unwrap());
        let g = GeoPoint::new(lat, lon).unwrap();
        let back = proj.to_geo(proj.to_local(g)).unwrap();
        prop_assert!((back.lat() - lat).abs() < 1e-9);
        prop_assert!((back.lon() - lon).abs() < 1e-9);
    }

    #[test]
    fn lens_area_bounded_by_smaller_disc(
        d in 0.0..1_000.0f64,
        r1 in 1.0..500.0f64,
        r2 in 1.0..500.0f64,
    ) {
        let a = Circle::new(Point::ORIGIN, r1).unwrap();
        let b = Circle::new(Point::new(d, 0.0), r2).unwrap();
        let lens = a.intersection_area(&b);
        let min_area = a.area().min(b.area());
        prop_assert!(lens >= 0.0);
        prop_assert!(lens <= min_area + 1e-6);
    }

    #[test]
    fn lens_area_rotation_invariant(d in 0.0..400.0f64, angle in 0.0..std::f64::consts::TAU, r in 10.0..200.0f64) {
        let a = Circle::new(Point::ORIGIN, r).unwrap();
        let b1 = Circle::new(Point::new(d, 0.0), r).unwrap();
        let b2 = Circle::new(Point::new(d * angle.cos(), d * angle.sin()), r).unwrap();
        prop_assert!((a.intersection_area(&b1) - a.intersection_area(&b2)).abs() < 1e-6);
    }

    #[test]
    fn grid_matches_brute_force(
        pts in proptest::collection::vec((-300.0..300.0f64, -300.0..300.0f64).prop_map(|(x, y)| Point::new(x, y)), 0..80),
        qx in -300.0..300.0f64,
        qy in -300.0..300.0f64,
        theta in 1.0..60.0f64,
    ) {
        let grid = SpatialGrid::build(&pts, theta);
        let q = Point::new(qx, qy);
        let fast: Vec<usize> = grid.neighbors_within(q, theta).collect();
        let brute: Vec<usize> = (0..pts.len()).filter(|&i| pts[i].distance(q) <= theta).collect();
        prop_assert_eq!(fast, brute);
    }
}
