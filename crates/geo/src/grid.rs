//! A uniform spatial hash grid over planar points.
//!
//! The longitudinal attack's connectivity-based clustering asks, for every
//! check-in, "which other check-ins are within θ meters?". A naive
//! all-pairs scan is O(m²) and the paper's heaviest user has 11,435
//! check-ins per window; [`SpatialGrid`] with cell size θ reduces the
//! neighbor query to the 3×3 surrounding cells.

use std::collections::HashMap;

use crate::Point;

/// A uniform hash grid indexing points by integer cell coordinates.
///
/// # Examples
///
/// ```
/// use privlocad_geo::grid::SpatialGrid;
/// use privlocad_geo::Point;
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(30.0, 0.0), Point::new(500.0, 0.0)];
/// let grid = SpatialGrid::build(&pts, 50.0);
/// let near: Vec<usize> = grid.neighbors_within(Point::new(10.0, 0.0), 50.0).collect();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell: f64,
    points: Vec<Point>,
    cells: HashMap<(i64, i64), Vec<usize>>,
}

impl SpatialGrid {
    /// Builds a grid over `points` with the given cell size in meters.
    ///
    /// For neighbor queries of radius `θ`, a cell size of `θ` is optimal:
    /// all candidates then live in the 3×3 cell neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite"
        );
        let mut cells: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::key(cell_size, *p)).or_default().push(i);
        }
        SpatialGrid { cell: cell_size, points: points.to_vec(), cells }
    }

    /// Re-indexes the grid over a new point set, reusing the existing
    /// cell-bucket allocations.
    ///
    /// Attack pipelines rebuild the grid once per inference pass over the
    /// same check-in stream; reusing the buckets avoids re-allocating the
    /// whole `HashMap` of `Vec`s each time.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive and finite.
    pub fn rebuild(&mut self, points: &[Point], cell_size: f64) {
        assert!(
            cell_size.is_finite() && cell_size > 0.0,
            "cell size must be positive and finite"
        );
        self.cell = cell_size;
        self.points.clear();
        self.points.extend_from_slice(points);
        for bucket in self.cells.values_mut() {
            bucket.clear();
        }
        for (i, p) in points.iter().enumerate() {
            self.cells.entry(Self::key(cell_size, *p)).or_default().push(i);
        }
        // Buckets left empty by the new point set would otherwise
        // accumulate across rebuilds with shifting data.
        self.cells.retain(|_, bucket| !bucket.is_empty());
    }

    #[inline]
    fn key(cell: f64, p: Point) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the grid indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in insertion order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Iterates over indices of points within `radius` meters of `query`
    /// (inclusive), in ascending index order.
    ///
    /// Only exact distance matches are returned — the grid is purely an
    /// acceleration structure. `radius` may be at most the grid cell size;
    /// larger radii would require scanning more than the 3×3 neighborhood
    /// and are rejected with a panic to catch misuse early.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the grid cell size.
    pub fn neighbors_within(&self, query: Point, radius: f64) -> NeighborsWithin<'_> {
        assert!(
            radius <= self.cell,
            "query radius {radius} exceeds grid cell size {}",
            self.cell
        );
        let (cx, cy) = Self::key(self.cell, query);
        let mut candidates: Vec<usize> = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(v) = self.cells.get(&(cx + dx, cy + dy)) {
                    candidates.extend_from_slice(v);
                }
            }
        }
        candidates.sort_unstable();
        NeighborsWithin {
            grid: self,
            query,
            radius_sq: radius * radius,
            candidates,
            pos: 0,
        }
    }

    /// Collects indices of points within `radius` meters of `query`
    /// (inclusive) into `out` in ascending index order, clearing `out`
    /// first.
    ///
    /// The buffer-reusing variant of [`SpatialGrid::neighbors_within`]:
    /// query loops pass the same `Vec` every time, so the per-query
    /// candidate allocation disappears. Distance filtering happens before
    /// the sort, so only actual matches are sorted.
    ///
    /// # Panics
    ///
    /// Panics if `radius` exceeds the grid cell size.
    pub fn neighbors_within_into(&self, query: Point, radius: f64, out: &mut Vec<usize>) {
        assert!(
            radius <= self.cell,
            "query radius {radius} exceeds grid cell size {}",
            self.cell
        );
        out.clear();
        let radius_sq = radius * radius;
        let (cx, cy) = Self::key(self.cell, query);
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &idx in bucket {
                        if self.points[idx].distance_sq(query) <= radius_sq {
                            out.push(idx);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

/// Iterator over point indices within a radius of a query point.
///
/// Produced by [`SpatialGrid::neighbors_within`].
#[derive(Debug)]
pub struct NeighborsWithin<'a> {
    grid: &'a SpatialGrid,
    query: Point,
    radius_sq: f64,
    candidates: Vec<usize>,
    pos: usize,
}

impl Iterator for NeighborsWithin<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.pos < self.candidates.len() {
            let idx = self.candidates[self.pos];
            self.pos += 1;
            if self.grid.points[idx].distance_sq(self.query) <= self.radius_sq {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use rand::Rng;

    #[test]
    fn finds_exact_neighbors_like_brute_force() {
        let mut rng = seeded(99);
        let pts: Vec<Point> = (0..500)
            .map(|_| Point::new(rng.gen_range(-500.0..500.0), rng.gen_range(-500.0..500.0)))
            .collect();
        let grid = SpatialGrid::build(&pts, 50.0);
        for qi in (0..pts.len()).step_by(17) {
            let q = pts[qi];
            let fast: Vec<usize> = grid.neighbors_within(q, 50.0).collect();
            let brute: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].distance(q) <= 50.0)
                .collect();
            assert_eq!(fast, brute, "mismatch at query {qi}");
        }
    }

    #[test]
    fn includes_query_point_itself() {
        let pts = vec![Point::new(1.0, 1.0)];
        let grid = SpatialGrid::build(&pts, 10.0);
        let n: Vec<usize> = grid.neighbors_within(pts[0], 10.0).collect();
        assert_eq!(n, vec![0]);
    }

    #[test]
    fn radius_is_inclusive() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let grid = SpatialGrid::build(&pts, 50.0);
        let n: Vec<usize> = grid.neighbors_within(pts[0], 50.0).collect();
        assert_eq!(n, vec![0, 1]);
    }

    #[test]
    fn empty_grid() {
        let grid = SpatialGrid::build(&[], 50.0);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert_eq!(grid.neighbors_within(Point::ORIGIN, 50.0).count(), 0);
    }

    #[test]
    fn works_across_negative_cell_boundaries() {
        let pts = vec![Point::new(-1.0, -1.0), Point::new(1.0, 1.0)];
        let grid = SpatialGrid::build(&pts, 50.0);
        let n: Vec<usize> = grid.neighbors_within(Point::new(0.0, 0.0), 50.0).collect();
        assert_eq!(n, vec![0, 1]);
    }

    #[test]
    fn buffered_query_matches_iterator() {
        let mut rng = seeded(7);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(-400.0..400.0), rng.gen_range(-400.0..400.0)))
            .collect();
        let grid = SpatialGrid::build(&pts, 60.0);
        let mut buf = vec![123usize]; // stale content must be cleared
        for qi in (0..pts.len()).step_by(13) {
            let iter: Vec<usize> = grid.neighbors_within(pts[qi], 60.0).collect();
            grid.neighbors_within_into(pts[qi], 60.0, &mut buf);
            assert_eq!(buf, iter, "mismatch at query {qi}");
        }
    }

    #[test]
    fn rebuild_matches_fresh_build() {
        let mut rng = seeded(21);
        let first: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.gen_range(-300.0..300.0), rng.gen_range(-300.0..300.0)))
            .collect();
        let second: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.gen_range(500.0..900.0), rng.gen_range(500.0..900.0)))
            .collect();
        let mut grid = SpatialGrid::build(&first, 50.0);
        grid.rebuild(&second, 40.0);
        let fresh = SpatialGrid::build(&second, 40.0);
        assert_eq!(grid.len(), fresh.len());
        for qi in (0..second.len()).step_by(11) {
            let a: Vec<usize> = grid.neighbors_within(second[qi], 40.0).collect();
            let b: Vec<usize> = fresh.neighbors_within(second[qi], 40.0).collect();
            assert_eq!(a, b, "mismatch at query {qi}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds grid cell size")]
    fn rejects_oversized_query_radius() {
        let grid = SpatialGrid::build(&[Point::ORIGIN], 50.0);
        let _ = grid.neighbors_within(Point::ORIGIN, 51.0);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn rejects_bad_cell_size() {
        let _ = SpatialGrid::build(&[], 0.0);
    }
}
