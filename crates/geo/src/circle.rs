use std::f64::consts::PI;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{GeoError, Point};

/// A disc in the local plane: center plus radius in meters.
///
/// Circles model both the paper's *area of interest* (AOI, the disc of
/// targeting radius `R` around the user's true location) and the *area of
/// request* (AOR, the same disc shifted to an obfuscated location). The exact
/// intersection area ([`Circle::intersection_area`]) is the analytic form of
/// the utilization-rate metric for `n = 1`.
///
/// # Examples
///
/// ```
/// use privlocad_geo::{Circle, Point};
///
/// let aoi = Circle::new(Point::ORIGIN, 5_000.0)?;
/// let aor = Circle::new(Point::new(5_000.0, 0.0), 5_000.0)?;
/// let ur = aoi.intersection_area(&aor) / aoi.area();
/// assert!((ur - 0.391).abs() < 0.001); // classic two-circle lens
/// # Ok::<(), privlocad_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    center: Point,
    radius: f64,
}

impl Circle {
    /// Creates a circle with the given center and radius (meters).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLength`] if the radius is not positive and
    /// finite, or [`GeoError::NonFiniteCoordinate`] if the center is not
    /// finite.
    pub fn new(center: Point, radius: f64) -> Result<Self, GeoError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(GeoError::InvalidLength(radius));
        }
        if !center.is_finite() {
            return Err(GeoError::NonFiniteCoordinate(center.x));
        }
        Ok(Circle { center, radius })
    }

    /// The circle's center.
    #[inline]
    pub fn center(&self) -> Point {
        self.center
    }

    /// The circle's radius in meters.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The disc area `πr²` in m².
    #[inline]
    pub fn area(&self) -> f64 {
        PI * self.radius * self.radius
    }

    /// Returns `true` if `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Exact area of the intersection of two discs (the "lens"), in m².
    ///
    /// Handles the disjoint and fully-contained cases. This gives the
    /// closed-form utilization rate for a single obfuscated output:
    /// `UR = |AOI ∩ AOR| / |AOI|`.
    pub fn intersection_area(&self, other: &Circle) -> f64 {
        let d = self.center.distance(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d >= r1 + r2 {
            return 0.0;
        }
        if d <= (r1 - r2).abs() {
            let rmin = r1.min(r2);
            return PI * rmin * rmin;
        }
        // Standard circular-segment decomposition.
        let a1 = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
        let a2 = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
        let t1 = 2.0 * a1.acos();
        let t2 = 2.0 * a2.acos();
        0.5 * r1 * r1 * (t1 - t1.sin()) + 0.5 * r2 * r2 * (t2 - t2.sin())
    }

    /// Draws a point uniformly at random from the disc.
    ///
    /// Uses the standard `r = R√u` inverse-CDF transform so the density is
    /// uniform over area, not over radius. This sampler backs the
    /// naïve post-processing baseline and the efficacy metric's "random ads
    /// in AOR" workload.
    ///
    /// ```
    /// use privlocad_geo::{Circle, Point};
    /// use rand::SeedableRng;
    ///
    /// let c = Circle::new(Point::new(10.0, 10.0), 100.0)?;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// for _ in 0..100 {
    ///     assert!(c.contains(c.sample_uniform(&mut rng)));
    /// }
    /// # Ok::<(), privlocad_geo::GeoError>(())
    /// ```
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let theta = rng.gen::<f64>() * 2.0 * PI;
        let r = self.radius * rng.gen::<f64>().sqrt();
        self.center.offset_polar(r, theta)
    }

    /// Draws a point uniformly at random from the circle's boundary.
    pub fn sample_boundary<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let theta = rng.gen::<f64>() * 2.0 * PI;
        self.center.offset_polar(self.radius, theta)
    }

    /// Returns a circle with the same radius centered at `center`.
    ///
    /// This is exactly the AOI → AOR shift of Definition 4: the disc of
    /// targeting radius `R` is re-centered on the obfuscated location.
    #[inline]
    pub fn recenter(&self, center: Point) -> Circle {
        Circle { center, radius: self.radius }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(x: f64, y: f64, r: f64) -> Circle {
        Circle::new(Point::new(x, y), r).unwrap()
    }

    #[test]
    fn rejects_bad_radius() {
        assert!(Circle::new(Point::ORIGIN, 0.0).is_err());
        assert!(Circle::new(Point::ORIGIN, -5.0).is_err());
        assert!(Circle::new(Point::ORIGIN, f64::NAN).is_err());
        assert!(Circle::new(Point::new(f64::NAN, 0.0), 1.0).is_err());
    }

    #[test]
    fn identical_circles_intersect_fully() {
        let a = c(3.0, 4.0, 100.0);
        assert!((a.intersection_area(&a) - a.area()).abs() < 1e-6);
    }

    #[test]
    fn disjoint_circles_have_zero_intersection() {
        let a = c(0.0, 0.0, 10.0);
        let b = c(25.0, 0.0, 10.0);
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn tangent_circles_have_zero_intersection() {
        let a = c(0.0, 0.0, 10.0);
        let b = c(20.0, 0.0, 10.0);
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn contained_circle_intersection_is_smaller_area() {
        let big = c(0.0, 0.0, 100.0);
        let small = c(10.0, 0.0, 5.0);
        assert!((big.intersection_area(&small) - small.area()).abs() < 1e-9);
        // symmetric
        assert!((small.intersection_area(&big) - small.area()).abs() < 1e-9);
    }

    #[test]
    fn half_offset_lens_matches_known_value() {
        // Two unit circles at distance 1: area = 2π/3 − √3/2 ≈ 1.2284.
        let a = c(0.0, 0.0, 1.0);
        let b = c(1.0, 0.0, 1.0);
        let expected = 2.0 * PI / 3.0 - 3.0_f64.sqrt() / 2.0;
        assert!((a.intersection_area(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn intersection_is_symmetric_for_unequal_radii() {
        let a = c(0.0, 0.0, 30.0);
        let b = c(40.0, 10.0, 20.0);
        assert!((a.intersection_area(&b) - b.intersection_area(&a)).abs() < 1e-9);
    }

    #[test]
    fn intersection_monotone_in_distance() {
        let a = c(0.0, 0.0, 50.0);
        let mut prev = f64::INFINITY;
        for d in [0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 99.0, 101.0] {
            let area = a.intersection_area(&c(d, 0.0, 50.0));
            assert!(area <= prev + 1e-9, "not monotone at d={d}");
            prev = area;
        }
    }

    #[test]
    fn uniform_samples_land_inside_and_cover_quadrants() {
        let circle = c(100.0, -50.0, 30.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut quad = [0u32; 4];
        for _ in 0..4000 {
            let p = circle.sample_uniform(&mut rng);
            assert!(circle.contains(p));
            let dx = p.x - 100.0;
            let dy = p.y + 50.0;
            let q = match (dx >= 0.0, dy >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            };
            quad[q] += 1;
        }
        for q in quad {
            assert!(q > 800, "quadrant counts skewed: {quad:?}");
        }
    }

    #[test]
    fn uniform_samples_are_area_uniform_not_radius_uniform() {
        // Under area-uniform sampling P(r <= R/2) = 1/4.
        let circle = c(0.0, 0.0, 100.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let inner = (0..n)
            .filter(|_| circle.sample_uniform(&mut rng).norm() <= 50.0)
            .count() as f64;
        let frac = inner / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn boundary_samples_sit_on_the_boundary() {
        let circle = c(5.0, 5.0, 77.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = circle.sample_boundary(&mut rng);
            assert!((p.distance(circle.center()) - 77.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recenter_keeps_radius() {
        let a = c(0.0, 0.0, 12.0);
        let b = a.recenter(Point::new(9.0, 9.0));
        assert_eq!(b.radius(), 12.0);
        assert_eq!(b.center(), Point::new(9.0, 9.0));
    }
}
