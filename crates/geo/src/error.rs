use std::error::Error;
use std::fmt;

/// Error type for invalid geometric arguments.
///
/// Returned by constructors that validate their inputs, e.g.
/// [`GeoPoint::new`](crate::GeoPoint::new) rejects out-of-range latitudes and
/// [`Circle::new`](crate::Circle::new) rejects non-positive radii.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, 90]` degrees or not finite.
    InvalidLatitude(f64),
    /// Longitude outside `[-180, 180]` degrees or not finite.
    InvalidLongitude(f64),
    /// A radius or other length that must be positive and finite.
    InvalidLength(f64),
    /// A coordinate that must be finite.
    NonFiniteCoordinate(f64),
    /// A bounding box whose minimum exceeds its maximum.
    EmptyBoundingBox,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => {
                write!(f, "latitude {v} is outside [-90, 90] or not finite")
            }
            GeoError::InvalidLongitude(v) => {
                write!(f, "longitude {v} is outside [-180, 180] or not finite")
            }
            GeoError::InvalidLength(v) => {
                write!(f, "length {v} must be positive and finite")
            }
            GeoError::NonFiniteCoordinate(v) => write!(f, "coordinate {v} is not finite"),
            GeoError::EmptyBoundingBox => write!(f, "bounding box minimum exceeds maximum"),
        }
    }
}

impl Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            GeoError::InvalidLatitude(91.0),
            GeoError::InvalidLongitude(181.0),
            GeoError::InvalidLength(-1.0),
            GeoError::NonFiniteCoordinate(f64::NAN),
            GeoError::EmptyBoundingBox,
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeoError>();
    }
}
