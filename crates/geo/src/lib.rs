//! Planar geometry substrate for the Edge-PrivLocAd reproduction.
//!
//! Location privacy mechanisms (geo-indistinguishability, the n-fold Gaussian
//! mechanism) and the longitudinal de-obfuscation attack all operate on
//! *planar* Euclidean coordinates measured in meters, while the synthetic
//! dataset and the advertising substrate speak WGS-84 latitude/longitude.
//! This crate provides the shared vocabulary:
//!
//! - [`Point`]: a position in a local tangent plane, in meters.
//! - [`GeoPoint`]: a WGS-84 position in degrees.
//! - [`LocalProjection`]: an equirectangular projection between the two,
//!   accurate to well under a meter over a metropolitan-scale area such as
//!   the Shanghai bounding box used by the paper.
//! - [`Circle`]: disc geometry including the exact circle–circle
//!   intersection ("lens") area needed by the utilization-rate metric.
//! - [`BoundingBox`]: the dataset's geographic extent.
//! - [`grid::SpatialGrid`]: a uniform hash grid used to accelerate the
//!   connectivity-based clustering of the longitudinal attack.
//! - [`rng`]: seeded RNG construction and Gaussian sampling helpers (the
//!   allowed dependency set has no `rand_distr`, so normal deviates are
//!   produced with the Marsaglia polar method here).
//!
//! # Examples
//!
//! ```
//! use privlocad_geo::{GeoPoint, LocalProjection};
//!
//! let origin = GeoPoint::new(31.05, 121.5)?;
//! let proj = LocalProjection::new(origin);
//! let p = proj.to_local(GeoPoint::new(31.06, 121.51)?);
//! // ~1.11 km north, ~0.95 km east
//! assert!((p.y - 1_113.0).abs() < 5.0);
//! assert!((p.x - 953.0).abs() < 5.0);
//! # Ok::<(), privlocad_geo::GeoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod circle;
mod distance;
mod error;
pub mod grid;
mod point;
mod projection;
pub mod rng;

pub use bbox::BoundingBox;
pub use circle::Circle;
pub use distance::{haversine_m, EARTH_RADIUS_M};
pub use error::GeoError;
pub use point::{centroid, GeoPoint, Point};
pub use projection::LocalProjection;
