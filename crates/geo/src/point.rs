use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::GeoError;

/// A position in a local tangent plane, in meters.
///
/// `x` grows eastward, `y` grows northward. Points are produced from WGS-84
/// coordinates by [`LocalProjection`](crate::LocalProjection); all privacy
/// mechanisms and the de-obfuscation attack operate on this type because the
/// paper's formulas (planar Laplace, n-fold Gaussian, Euclidean clustering)
/// are stated in planar meters.
///
/// # Examples
///
/// ```
/// use privlocad_geo::Point;
///
/// let home = Point::new(0.0, 0.0);
/// let office = Point::new(3000.0, 4000.0);
/// assert_eq!(home.distance(office), 5000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Eastward offset from the projection origin, in meters.
    pub x: f64,
    /// Northward offset from the projection origin, in meters.
    pub y: f64,
}

impl Point {
    /// The origin of the local plane.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point at `(x, y)` meters.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    ///
    /// ```
    /// use privlocad_geo::Point;
    /// assert_eq!(Point::new(0.0, 0.0).distance(Point::new(0.0, 2.5)), 2.5);
    /// ```
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`, in m².
    ///
    /// Cheaper than [`Point::distance`]; preferred inside hot loops such as
    /// the clustering inner loop where only comparisons are needed.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm (distance from the origin), in meters.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// The midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Translates the point by a polar offset `(radius, angle)`.
    ///
    /// This is the geometric core of Algorithm 3 in the paper: an obfuscated
    /// location is `real + (r cos θ, r sin θ)`.
    ///
    /// ```
    /// use privlocad_geo::Point;
    /// let p = Point::ORIGIN.offset_polar(100.0, std::f64::consts::FRAC_PI_2);
    /// assert!(p.x.abs() < 1e-9);
    /// assert!((p.y - 100.0).abs() < 1e-9);
    /// ```
    #[inline]
    pub fn offset_polar(self, radius: f64, angle: f64) -> Point {
        Point::new(self.x + radius * angle.cos(), self.y + radius * angle.sin())
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2} m, {:.2} m)", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl Sum for Point {
    fn sum<I: Iterator<Item = Point>>(iter: I) -> Point {
        iter.fold(Point::ORIGIN, Add::add)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// Computes the centroid (arithmetic mean) of a set of points.
///
/// The centroid is the sufficient statistic of the n-fold Gaussian mechanism
/// (Section VI of the paper) and the cluster representative of the
/// de-obfuscation attack (Algorithm 1).
///
/// Returns `None` for an empty slice.
///
/// # Examples
///
/// ```
/// use privlocad_geo::{centroid, Point};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(2.0, 4.0)];
/// assert_eq!(centroid(&pts), Some(Point::new(1.0, 2.0)));
/// assert_eq!(centroid(&[]), None);
/// ```
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let sum: Point = points.iter().copied().sum();
    Some(sum / points.len() as f64)
}

/// A WGS-84 position in degrees.
///
/// The synthetic dataset and the advertising substrate express locations in
/// latitude/longitude; convert to planar [`Point`]s with
/// [`LocalProjection`](crate::LocalProjection) before running any mechanism.
///
/// # Examples
///
/// ```
/// use privlocad_geo::GeoPoint;
///
/// let sh = GeoPoint::new(31.23, 121.47)?; // central Shanghai
/// assert!(GeoPoint::new(95.0, 0.0).is_err());
/// # Ok::<(), privlocad_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a WGS-84 point after validating the coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::InvalidLatitude`] if `lat ∉ [-90, 90]` or is not
    /// finite, and [`GeoError::InvalidLongitude`] if `lon ∉ [-180, 180]` or
    /// is not finite.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoError::InvalidLongitude(lon));
        }
        Ok(GeoPoint { lat, lon })
    }

    /// Latitude in degrees, in `[-90, 90]`.
    #[inline]
    pub fn lat(self) -> f64 {
        self.lat
    }

    /// Longitude in degrees, in `[-180, 180]`.
    #[inline]
    pub fn lon(self) -> f64 {
        self.lon
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}°, {:.6}°)", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-3.5, 10.0);
        let b = Point::new(7.25, -2.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(4.0, 1.0));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn sum_of_points() {
        let pts = [Point::new(1.0, 0.0), Point::new(2.0, 5.0), Point::new(-1.0, 1.0)];
        let s: Point = pts.iter().copied().sum();
        assert_eq!(s, Point::new(2.0, 6.0));
    }

    #[test]
    fn centroid_of_symmetric_square_is_center() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn centroid_empty_is_none() {
        assert_eq!(centroid(&[]), None);
    }

    #[test]
    fn offset_polar_round_trip() {
        let p = Point::new(10.0, -4.0);
        let q = p.offset_polar(250.0, 1.1);
        assert!((p.distance(q) - 250.0).abs() < 1e-9);
    }

    #[test]
    fn geopoint_validation() {
        assert!(GeoPoint::new(31.0, 121.5).is_ok());
        assert!(matches!(GeoPoint::new(90.1, 0.0), Err(GeoError::InvalidLatitude(_))));
        assert!(matches!(GeoPoint::new(0.0, -180.5), Err(GeoError::InvalidLongitude(_))));
        assert!(matches!(GeoPoint::new(f64::NAN, 0.0), Err(GeoError::InvalidLatitude(_))));
        assert!(matches!(
            GeoPoint::new(0.0, f64::INFINITY),
            Err(GeoError::InvalidLongitude(_))
        ));
    }

    #[test]
    fn conversions_with_tuples() {
        let p: Point = (3.0, 4.0).into();
        assert_eq!(p, Point::new(3.0, 4.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (3.0, 4.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1.00 m, 2.00 m)");
        let g = GeoPoint::new(31.5, 121.25).unwrap();
        assert_eq!(g.to_string(), "(31.500000°, 121.250000°)");
    }
}
