use crate::GeoPoint;

/// Mean Earth radius in meters (IUGG mean radius R₁).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two WGS-84 points, in meters, by the
/// haversine formula.
///
/// Used to validate the planar [`LocalProjection`](crate::LocalProjection)
/// and to compute true ground distances for reporting; everything inside the
/// mechanisms uses planar [`Point::distance`](crate::Point::distance)
/// instead, which is what the paper's formulas assume.
///
/// # Examples
///
/// ```
/// use privlocad_geo::{haversine_m, GeoPoint};
///
/// let a = GeoPoint::new(31.0, 121.0)?;
/// let b = GeoPoint::new(31.0, 122.0)?;
/// let d = haversine_m(a, b);
/// assert!((d - 95_321.0).abs() < 200.0); // ~95.3 km along the 31°N parallel
/// # Ok::<(), privlocad_geo::GeoError>(())
/// ```
pub fn haversine_m(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat().to_radians(), a.lon().to_radians());
    let (lat2, lon2) = (b.lat().to_radians(), b.lon().to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gp(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn zero_distance_for_identical_points() {
        let p = gp(31.2, 121.5);
        assert_eq!(haversine_m(p, p), 0.0);
    }

    #[test]
    fn one_degree_of_latitude_is_about_111_km() {
        let d = haversine_m(gp(31.0, 121.0), gp(32.0, 121.0));
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn symmetric() {
        let a = gp(30.7, 121.0);
        let b = gp(31.4, 122.0);
        assert!((haversine_m(a, b) - haversine_m(b, a)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_on_sample_points() {
        let a = gp(30.8, 121.1);
        let b = gp(31.1, 121.6);
        let c = gp(31.3, 121.9);
        assert!(haversine_m(a, c) <= haversine_m(a, b) + haversine_m(b, c) + 1e-9);
    }
}
