//! Seeded randomness and Gaussian sampling helpers.
//!
//! The reproduction must be deterministic end-to-end so that experiment runs
//! are comparable; every stochastic component takes an explicit [`Rng`] and
//! top-level harnesses derive per-user / per-trial RNGs from a master seed
//! with [`derive_seed`]. The allowed dependency set has no `rand_distr`, so
//! normal deviates are produced locally with the Marsaglia polar method.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Point;

/// Constructs a deterministic [`StdRng`] from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use privlocad_geo::rng::seeded;
/// use rand::Rng;
///
/// let a: u32 = seeded(9).gen();
/// let b: u32 = seeded(9).gen();
/// assert_eq!(a, b);
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a master seed and a stream index.
///
/// Uses the SplitMix64 finalizer so adjacent indices yield statistically
/// independent streams; used to give every synthetic user, Monte-Carlo
/// trial, and parallel worker its own reproducible RNG.
///
/// ```
/// use privlocad_geo::rng::derive_seed;
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_eq!(derive_seed(1, 7), derive_seed(1, 7));
/// ```
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws one standard-normal deviate using the Marsaglia polar method.
///
/// The second deviate of each accepted pair is intentionally discarded to
/// keep the function stateless; mechanisms that need 2-D noise use
/// [`gaussian_2d`], which consumes the whole pair.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.gen::<f64>() - 1.0;
        let v = 2.0 * rng.gen::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal deviate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics in debug builds if `sigma` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    mean + sigma * standard_normal(rng)
}

/// Draws an isotropic 2-D Gaussian offset with per-axis deviation `sigma`.
///
/// Sampled in polar form — radius from the Rayleigh distribution, angle
/// uniform — exactly as Algorithm 3 of the paper prescribes for the n-fold
/// Gaussian mechanism. The resulting `x`/`y` components are i.i.d.
/// `N(0, sigma²)`.
///
/// ```
/// use privlocad_geo::rng::{gaussian_2d, seeded};
///
/// let mut rng = seeded(1);
/// let p = gaussian_2d(&mut rng, 100.0);
/// assert!(p.is_finite());
/// ```
pub fn gaussian_2d<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> Point {
    debug_assert!(sigma >= 0.0, "sigma must be non-negative");
    let theta = rng.gen::<f64>() * 2.0 * PI;
    let r = rayleigh(rng, sigma);
    Point::new(r * theta.cos(), r * theta.sin())
}

/// Draws from the Rayleigh distribution with scale `sigma`.
///
/// This is the radial law of an isotropic 2-D Gaussian: Equation 15 of the
/// paper gives the radial CDF `F_R(r) = 1 − exp(−r²/2σ²)`, inverted here as
/// `r = σ·sqrt(−2·ln(1 − s))` for uniform `s`.
pub fn rayleigh<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    let s: f64 = rng.gen();
    sigma * (-2.0 * (1.0 - s).ln()).sqrt()
}

/// Draws a uniform angle in `[0, 2π)`.
pub fn uniform_angle<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.gen::<f64>() * 2.0 * PI
}

/// Fills `out` with uniform variates in `[0, 1)`, one block of draws from a
/// single pass over the generator.
///
/// This is the batched counterpart of calling `rng.gen::<f64>()` once per
/// value: the `i`-th slot receives exactly the `i`-th draw of the stream, so
/// a block fill followed by a vectorized transform stays bit-for-bit
/// identical to the scalar draw-transform-draw loop it replaces. The win is
/// amortization — one tight fill loop the optimizer can keep in registers,
/// instead of interleaving generator stepping with downstream math at every
/// draw site.
///
/// ```
/// use privlocad_geo::rng::{fill_uniform, seeded};
/// use rand::Rng;
///
/// let mut block = [0.0_f64; 8];
/// fill_uniform(&mut seeded(3), &mut block);
/// let mut scalar = seeded(3);
/// for (i, &v) in block.iter().enumerate() {
///     assert_eq!(v, scalar.gen::<f64>(), "draw {i}");
/// }
/// ```
pub fn fill_uniform<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for slot in out.iter_mut() {
        *slot = rng.gen();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn seeded_is_reproducible() {
        let a: Vec<u64> = (0..10).map(|_| seeded(5).gen()).collect();
        let b: Vec<u64> = (0..10).map(|_| seeded(5).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_streams_differ() {
        let seeds: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(17);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var) = mean_and_var(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded(23);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let (mean, var) = mean_and_var(&xs);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn gaussian_2d_components_match_sigma() {
        let mut rng = seeded(31);
        let sigma = 250.0;
        let pts: Vec<Point> = (0..50_000).map(|_| gaussian_2d(&mut rng, sigma)).collect();
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let (mx, vx) = mean_and_var(&xs);
        let (my, vy) = mean_and_var(&ys);
        assert!(mx.abs() < 5.0 && my.abs() < 5.0, "means {mx} {my}");
        assert!((vx.sqrt() - sigma).abs() < 5.0, "sd_x {}", vx.sqrt());
        assert!((vy.sqrt() - sigma).abs() < 5.0, "sd_y {}", vy.sqrt());
    }

    #[test]
    fn gaussian_2d_x_y_uncorrelated() {
        let mut rng = seeded(37);
        let pts: Vec<Point> = (0..50_000).map(|_| gaussian_2d(&mut rng, 1.0)).collect();
        let cov = pts.iter().map(|p| p.x * p.y).sum::<f64>() / pts.len() as f64;
        assert!(cov.abs() < 0.02, "cov {cov}");
    }

    #[test]
    fn rayleigh_median_matches_theory() {
        // Median of Rayleigh(σ) is σ·sqrt(2 ln 2).
        let mut rng = seeded(41);
        let sigma = 100.0;
        let mut xs: Vec<f64> = (0..50_001).map(|_| rayleigh(&mut rng, sigma)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        let expected = sigma * (2.0 * 2.0_f64.ln()).sqrt();
        assert!((median - expected).abs() < 3.0, "median {median} vs {expected}");
    }

    #[test]
    fn rayleigh_cdf_quantile_check() {
        // P(R <= σ) = 1 − e^{−1/2} ≈ 0.3935.
        let mut rng = seeded(43);
        let n = 50_000;
        let hits = (0..n).filter(|_| rayleigh(&mut rng, 50.0) <= 50.0).count() as f64;
        let frac = hits / n as f64;
        assert!((frac - 0.3935).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fill_uniform_matches_per_call_draws() {
        let mut block = vec![0.0; 257];
        fill_uniform(&mut seeded(91), &mut block);
        let mut scalar = seeded(91);
        for (i, &v) in block.iter().enumerate() {
            assert_eq!(v, scalar.gen::<f64>(), "draw {i} diverged");
        }
        assert!(block.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn fill_uniform_advances_the_stream() {
        // Two consecutive fills must consume disjoint stretches of the
        // stream, exactly like two stretches of scalar draws.
        let mut rng = seeded(92);
        let mut first = [0.0; 16];
        let mut second = [0.0; 16];
        fill_uniform(&mut rng, &mut first);
        fill_uniform(&mut rng, &mut second);
        let mut scalar = seeded(92);
        let expected: Vec<f64> = (0..32).map(|_| scalar.gen::<f64>()).collect();
        assert_eq!(&first[..], &expected[..16]);
        assert_eq!(&second[..], &expected[16..]);
    }

    #[test]
    fn fill_uniform_empty_slice_is_a_no_op() {
        let mut rng = seeded(93);
        fill_uniform(&mut rng, &mut []);
        let next: f64 = rng.gen();
        assert_eq!(next, seeded(93).gen::<f64>());
    }

    #[test]
    fn uniform_angle_in_range() {
        let mut rng = seeded(47);
        for _ in 0..1000 {
            let a = uniform_angle(&mut rng);
            assert!((0.0..2.0 * PI).contains(&a));
        }
    }
}
