use serde::{Deserialize, Serialize};

use crate::{GeoError, GeoPoint, Point, EARTH_RADIUS_M};

/// An equirectangular projection between WGS-84 and a local tangent plane.
///
/// The projection is anchored at an `origin`; east–west distances are scaled
/// by `cos(origin latitude)`. Over a metropolitan area tens of kilometers
/// across (the paper's Shanghai bounding box spans ~78 km north–south) the
/// distortion relative to the true great-circle distance is far below the
/// 50 m clustering threshold and the 200 m attack-success threshold, so
/// planar Euclidean geometry is faithful to the paper's setting.
///
/// # Examples
///
/// ```
/// use privlocad_geo::{GeoPoint, LocalProjection};
///
/// let proj = LocalProjection::new(GeoPoint::new(31.05, 121.5)?);
/// let g = GeoPoint::new(31.2, 121.8)?;
/// let back = proj.to_geo(proj.to_local(g))?;
/// assert!((back.lat() - g.lat()).abs() < 1e-9);
/// assert!((back.lon() - g.lon()).abs() < 1e-9);
/// # Ok::<(), privlocad_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Creates a projection anchored at `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        LocalProjection {
            origin,
            cos_lat0: origin.lat().to_radians().cos(),
        }
    }

    /// The anchor point mapped to the planar origin.
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a WGS-84 point to local planar meters.
    #[inline]
    pub fn to_local(&self, g: GeoPoint) -> Point {
        let dlat = (g.lat() - self.origin.lat()).to_radians();
        let dlon = (g.lon() - self.origin.lon()).to_radians();
        Point::new(EARTH_RADIUS_M * dlon * self.cos_lat0, EARTH_RADIUS_M * dlat)
    }

    /// Inverse projection from local planar meters back to WGS-84.
    ///
    /// # Errors
    ///
    /// Returns an error if the point maps outside the valid WGS-84
    /// coordinate ranges (e.g. a planar point light-years away).
    pub fn to_geo(&self, p: Point) -> Result<GeoPoint, GeoError> {
        let lat = self.origin.lat() + (p.y / EARTH_RADIUS_M).to_degrees();
        let lon = self.origin.lon() + (p.x / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees();
        GeoPoint::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haversine_m;

    fn proj() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(31.05, 121.5).unwrap())
    }

    #[test]
    fn origin_maps_to_planar_origin() {
        let p = proj();
        let o = p.to_local(p.origin());
        assert!(o.norm() < 1e-9);
    }

    #[test]
    fn round_trip_is_exact_to_nanodegrees() {
        let p = proj();
        for (lat, lon) in [(30.7, 121.0), (31.4, 122.0), (31.0, 121.5), (30.95, 121.87)] {
            let g = GeoPoint::new(lat, lon).unwrap();
            let back = p.to_geo(p.to_local(g)).unwrap();
            assert!((back.lat() - lat).abs() < 1e-9);
            assert!((back.lon() - lon).abs() < 1e-9);
        }
    }

    #[test]
    fn planar_distance_close_to_haversine_within_city_scale() {
        let p = proj();
        let a = GeoPoint::new(31.0, 121.3).unwrap();
        let b = GeoPoint::new(31.2, 121.7).unwrap();
        let planar = p.to_local(a).distance(p.to_local(b));
        let sphere = haversine_m(a, b);
        // < 0.1% distortion over ~44 km
        assert!(
            (planar - sphere).abs() / sphere < 1e-3,
            "planar {planar} vs haversine {sphere}"
        );
    }

    #[test]
    fn north_is_positive_y_east_is_positive_x() {
        let p = proj();
        let north = p.to_local(GeoPoint::new(31.06, 121.5).unwrap());
        assert!(north.y > 0.0 && north.x.abs() < 1e-6);
        let east = p.to_local(GeoPoint::new(31.05, 121.51).unwrap());
        assert!(east.x > 0.0 && east.y.abs() < 1e-6);
    }

    #[test]
    fn to_geo_rejects_absurd_points() {
        let p = proj();
        assert!(p.to_geo(Point::new(0.0, 1e10)).is_err());
    }
}
