use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{GeoError, GeoPoint};

/// An axis-aligned latitude/longitude rectangle.
///
/// The paper's dataset covers Shanghai with latitude `∈ [30.7, 31.4]` and
/// longitude `∈ [121, 122]`; the synthetic generator places users uniformly
/// (or around hotspots) inside such a box.
///
/// # Examples
///
/// ```
/// use privlocad_geo::{BoundingBox, GeoPoint};
///
/// let bb = BoundingBox::new(30.7, 31.4, 121.0, 122.0)?;
/// assert!(bb.contains(GeoPoint::new(31.0, 121.5)?));
/// assert!(!bb.contains(GeoPoint::new(29.0, 121.5)?));
/// # Ok::<(), privlocad_geo::GeoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lon: f64,
    max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box from corner coordinates.
    ///
    /// # Errors
    ///
    /// Returns a [`GeoError`] if a coordinate is out of range or a minimum
    /// exceeds its maximum.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Result<Self, GeoError> {
        // Validate ranges by constructing the corners.
        GeoPoint::new(min_lat, min_lon)?;
        GeoPoint::new(max_lat, max_lon)?;
        if min_lat > max_lat || min_lon > max_lon {
            return Err(GeoError::EmptyBoundingBox);
        }
        Ok(BoundingBox { min_lat, max_lat, min_lon, max_lon })
    }

    /// Southernmost latitude.
    #[inline]
    pub fn min_lat(&self) -> f64 {
        self.min_lat
    }

    /// Northernmost latitude.
    #[inline]
    pub fn max_lat(&self) -> f64 {
        self.max_lat
    }

    /// Westernmost longitude.
    #[inline]
    pub fn min_lon(&self) -> f64 {
        self.min_lon
    }

    /// Easternmost longitude.
    #[inline]
    pub fn max_lon(&self) -> f64 {
        self.max_lon
    }

    /// The box's center point.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
        // lint:allow(panic-hygiene): provably infallible — the midpoint of an in-range coordinate pair stays in range
        .expect("center of a valid box is valid")
    }

    /// Returns `true` if `p` lies inside the box (inclusive).
    pub fn contains(&self, p: GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&p.lat())
            && (self.min_lon..=self.max_lon).contains(&p.lon())
    }

    /// Draws a point uniformly at random (in coordinate space) from the box.
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        let lat = rng.gen_range(self.min_lat..=self.max_lat);
        let lon = rng.gen_range(self.min_lon..=self.max_lon);
        // lint:allow(panic-hygiene): provably infallible — gen_range keeps both coordinates inside the validated box
        GeoPoint::new(lat, lon).expect("sample inside a valid box is valid")
    }

    /// Shrinks the box by `margin_deg` degrees on every side.
    ///
    /// Useful to keep synthetic top locations away from the dataset border so
    /// that obfuscation noise does not push check-ins outside the study area.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::EmptyBoundingBox`] if the margin consumes the box.
    pub fn shrink(&self, margin_deg: f64) -> Result<BoundingBox, GeoError> {
        BoundingBox::new(
            self.min_lat + margin_deg,
            self.max_lat - margin_deg,
            self.min_lon + margin_deg,
            self.max_lon - margin_deg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn shanghai() -> BoundingBox {
        BoundingBox::new(30.7, 31.4, 121.0, 122.0).unwrap()
    }

    #[test]
    fn rejects_inverted_bounds() {
        assert!(matches!(
            BoundingBox::new(31.4, 30.7, 121.0, 122.0),
            Err(GeoError::EmptyBoundingBox)
        ));
        assert!(matches!(
            BoundingBox::new(30.7, 31.4, 122.0, 121.0),
            Err(GeoError::EmptyBoundingBox)
        ));
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        assert!(BoundingBox::new(-91.0, 0.0, 0.0, 1.0).is_err());
        assert!(BoundingBox::new(0.0, 1.0, 0.0, 181.0).is_err());
    }

    #[test]
    fn center_is_inside() {
        let bb = shanghai();
        assert!(bb.contains(bb.center()));
        assert!((bb.center().lat() - 31.05).abs() < 1e-12);
        assert!((bb.center().lon() - 121.5).abs() < 1e-12);
    }

    #[test]
    fn contains_is_inclusive_at_edges() {
        let bb = shanghai();
        assert!(bb.contains(GeoPoint::new(30.7, 121.0).unwrap()));
        assert!(bb.contains(GeoPoint::new(31.4, 122.0).unwrap()));
    }

    #[test]
    fn samples_stay_inside() {
        let bb = shanghai();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(bb.contains(bb.sample_uniform(&mut rng)));
        }
    }

    #[test]
    fn shrink_reduces_extent() {
        let bb = shanghai().shrink(0.1).unwrap();
        assert!((bb.min_lat() - 30.8).abs() < 1e-12);
        assert!((bb.max_lat() - 31.3).abs() < 1e-12);
        assert!(shanghai().shrink(0.5).is_err()); // 30.7+0.5 > 31.4-0.5
    }

    #[test]
    fn degenerate_point_box_is_allowed() {
        let bb = BoundingBox::new(31.0, 31.0, 121.5, 121.5).unwrap();
        assert!(bb.contains(GeoPoint::new(31.0, 121.5).unwrap()));
        let mut rng = StdRng::seed_from_u64(1);
        let p = bb.sample_uniform(&mut rng);
        assert_eq!(p.lat(), 31.0);
        assert_eq!(p.lon(), 121.5);
    }
}
