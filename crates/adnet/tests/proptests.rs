//! Property-based tests for the advertising substrate.

use privlocad_adnet::{
    AdNetwork, BidRequest, Campaign, DeviceId, Targeting,
};
use privlocad_geo::Point;
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-50_000.0..50_000.0f64, -50_000.0..50_000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn campaign(id: u64) -> impl Strategy<Value = Campaign> {
    (point(), 500.0..25_000.0f64, 0.1..50.0f64).prop_map(move |(c, r, bid)| {
        Campaign::new(id, format!("c{id}"), Targeting::radius(c, r).unwrap(), bid).unwrap()
    })
}

fn inventory() -> impl Strategy<Value = Vec<Campaign>> {
    proptest::collection::vec(any::<u8>(), 0..12).prop_flat_map(|ids| {
        let strategies: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, _)| campaign(i as u64))
            .collect();
        strategies
    })
}

proptest! {
    #[test]
    fn wire_round_trip(device in any::<u64>(), x in -1e7..1e7f64, y in -1e7..1e7f64, t in 0i64..1_000_000_000) {
        let req = BidRequest {
            device: DeviceId::new(device),
            location: Point::new(x, y),
            timestamp: t,
        };
        prop_assert_eq!(BidRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn auction_winner_has_max_bid_among_matches(ads in inventory(), loc in point()) {
        let net = AdNetwork::new(ads);
        let req = BidRequest { device: DeviceId::new(1), location: loc, timestamp: 0 };
        let matched = net.matching(loc);
        match net.auction(&req) {
            None => prop_assert!(matched.is_empty()),
            Some(outcome) => {
                prop_assert!(outcome.winner.matches(loc, 0, 0));
                let max_bid = matched.iter().map(|c| c.bid_cpm()).fold(f64::MIN, f64::max);
                prop_assert!((outcome.winner.bid_cpm() - max_bid).abs() < 1e-12);
                // Second-price: clearing price never exceeds the winning bid
                // and is at least the lowest matching bid.
                prop_assert!(outcome.price <= outcome.winner.bid_cpm() + 1e-12);
                let min_bid = matched.iter().map(|c| c.bid_cpm()).fold(f64::MAX, f64::min);
                prop_assert!(outcome.price >= min_bid - 1e-12);
            }
        }
    }

    #[test]
    fn serve_always_logs(ads in inventory(), locs in proptest::collection::vec(point(), 1..20)) {
        let mut net = AdNetwork::new(ads);
        for (i, &loc) in locs.iter().enumerate() {
            net.serve(BidRequest { device: DeviceId::new(7), location: loc, timestamp: i as i64 });
        }
        prop_assert_eq!(net.log().len(), locs.len());
        prop_assert_eq!(net.log().locations_of(DeviceId::new(7)).len(), locs.len());
    }

    #[test]
    fn matching_is_consistent_with_campaign_matches(ads in inventory(), loc in point()) {
        let net = AdNetwork::new(ads.clone());
        let matched: Vec<u64> = net.matching(loc).iter().map(|c| c.id().raw()).collect();
        let expected: Vec<u64> = ads
            .iter()
            .filter(|c| c.matches(loc, 0, 0))
            .map(|c| c.id().raw())
            .collect();
        prop_assert_eq!(matched, expected);
    }
}
