use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

use crate::serving::{ServingLedger, ServingPolicy, ServingState};
use crate::{BidLog, BidLogEntry, BidRequest, Campaign, CampaignId};

/// The result of one second-price auction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuctionOutcome {
    /// The winning campaign, cloned out of the inventory.
    pub winner: Campaign,
    /// The clearing price: the second-highest bid, or the winner's own bid
    /// when it was the only matching campaign.
    pub price: f64,
}

/// The ad network: matches bid requests against the campaign inventory and
/// runs second-price auctions (Section II-A's "ads matching &
/// distribution" role).
///
/// # Examples
///
/// ```
/// use privlocad_adnet::{AdNetwork, BidRequest, Campaign, DeviceId, Targeting};
/// use privlocad_geo::Point;
///
/// let network = AdNetwork::new(vec![
///     Campaign::new(0, "high bidder", Targeting::radius(Point::ORIGIN, 5_000.0)?, 10.0)?,
///     Campaign::new(1, "low bidder", Targeting::radius(Point::ORIGIN, 5_000.0)?, 4.0)?,
/// ]);
/// let req = BidRequest { device: DeviceId::new(1), location: Point::ORIGIN, timestamp: 0 };
/// let outcome = network.auction(&req).unwrap();
/// assert_eq!(outcome.winner.name(), "high bidder");
/// assert_eq!(outcome.price, 4.0); // pays the second price
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdNetwork {
    campaigns: Vec<Campaign>,
    log: BidLog,
    ledger: ServingLedger,
    area_grid: Option<crate::AreaGrid>,
    country: u16,
}

impl AdNetwork {
    /// Creates a network serving the given inventory with unlimited
    /// serving policies. Area/country campaigns never match until
    /// [`AdNetwork::set_area_grid`] / [`AdNetwork::set_country`] configure
    /// the request-side resolution.
    pub fn new(campaigns: Vec<Campaign>) -> Self {
        AdNetwork {
            campaigns,
            log: BidLog::new(),
            ledger: ServingLedger::new(),
            area_grid: None,
            country: 0,
        }
    }

    /// Configures how reported locations resolve to administrative-area
    /// ids (enables `Targeting::Area` campaigns).
    pub fn set_area_grid(&mut self, grid: crate::AreaGrid) {
        self.area_grid = Some(grid);
    }

    /// Sets the country id carried by every request (enables
    /// `Targeting::Country` campaigns).
    pub fn set_country(&mut self, country: u16) {
        self.country = country;
    }

    /// Attaches a budget / frequency-cap policy to a campaign.
    pub fn set_policy(&mut self, campaign: CampaignId, policy: ServingPolicy) {
        self.ledger.set_policy(campaign, policy);
    }

    /// The delivery state (spend, impressions) of a campaign.
    pub fn serving_state(&self, campaign: CampaignId) -> ServingState {
        self.ledger.state(campaign)
    }

    /// The full campaign inventory.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// Adds a campaign to the inventory.
    pub fn register(&mut self, campaign: Campaign) {
        self.campaigns.push(campaign);
    }

    /// The campaigns whose targeting matches a request at `location`.
    /// Radius campaigns match geometrically; area campaigns through the
    /// configured [`AreaGrid`](crate::AreaGrid); country campaigns through
    /// the configured country id.
    pub fn matching(&self, location: Point) -> Vec<&Campaign> {
        let area = self.area_grid.map_or(0, |g| g.area_of(location));
        self.campaigns
            .iter()
            .filter(|c| c.matches(location, area, self.country))
            .collect()
    }

    /// Runs a second-price auction among matching campaigns without
    /// logging. Returns `None` when nothing matches.
    ///
    /// Campaigns over budget or over their per-device frequency cap for
    /// the requesting device do not participate.
    pub fn auction(&self, request: &BidRequest) -> Option<AuctionOutcome> {
        let mut matched: Vec<&Campaign> = self
            .matching(request.location)
            .into_iter()
            .filter(|c| self.ledger.eligible(c.id(), request.device))
            .collect();
        if matched.is_empty() {
            return None;
        }
        matched.sort_by(|a, b| {
            b.bid_cpm()
                .partial_cmp(&a.bid_cpm())
                .expect("bids are finite")
                .then(a.id().cmp(&b.id()))
        });
        let winner = matched[0].clone();
        let price = matched.get(1).map_or(winner.bid_cpm(), |c| c.bid_cpm());
        Some(AuctionOutcome { winner, price })
    }

    /// Serves a request end-to-end: runs the auction, appends the
    /// transaction to the bid log (the longitudinal attacker's feed), and
    /// returns the outcome.
    pub fn serve(&mut self, request: BidRequest) -> Option<AuctionOutcome> {
        let outcome = self.auction(&request);
        if let Some(o) = &outcome {
            self.ledger.record(o.winner.id(), request.device, o.price);
        }
        self.log.push(BidLogEntry {
            request,
            winner: outcome.as_ref().map(|o| o.winner.id()),
            price: outcome.as_ref().map_or(0.0, |o| o.price),
        });
        outcome
    }

    /// Serves one OpenRTB-lite request end-to-end: the auction runs at the
    /// request's reported geo with the requesting device's ledger
    /// eligibility, spend and frequency caps are recorded exactly as for
    /// [`AdNetwork::serve`], and the outcome comes back as a codec
    /// [`BidResponse`](privlocad_openrtb::BidResponse) echoing the request
    /// id.
    ///
    /// Prices cross the wire in integer micro-units
    /// (`round(cpm × 1e6)`), so exchange-log digests never depend on float
    /// formatting.
    pub fn serve_exchange(
        &mut self,
        request: &privlocad_openrtb::BidRequest,
    ) -> privlocad_openrtb::BidResponse {
        let legacy = BidRequest {
            device: request.device.id,
            location: request.device.geo.point(),
            // The codec carries a per-device sequence number instead of
            // wall time; reuse it as the log timestamp so per-device
            // ordering survives in the legacy transaction log.
            timestamp: request.seq as i64,
        };
        match self.serve(legacy) {
            None => privlocad_openrtb::BidResponse::no_bid(request.id),
            Some(o) => {
                let seat = o.winner.id().raw();
                let bid = privlocad_openrtb::Bid {
                    imp: request.imp.id,
                    price_micros: (o.price * 1e6).round() as u64,
                    adm: privlocad_openrtb::fnv1a64(&seat.to_be_bytes()),
                };
                privlocad_openrtb::BidResponse::win(
                    request.id,
                    privlocad_openrtb::SeatBid { seat, bid },
                )
            }
        }
    }

    /// The accumulated transaction log.
    pub fn log(&self) -> &BidLog {
        &self.log
    }

    /// Hands the log to a (simulated) longitudinal observer and clears it.
    pub fn take_log(&mut self) -> BidLog {
        std::mem::take(&mut self.log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceId, Targeting};

    fn radius_campaign(id: u64, x: f64, radius: f64, bid: f64) -> Campaign {
        Campaign::new(
            id,
            format!("c{id}"),
            Targeting::radius(Point::new(x, 0.0), radius).unwrap(),
            bid,
        )
        .unwrap()
    }

    fn req(x: f64) -> BidRequest {
        BidRequest { device: DeviceId::new(1), location: Point::new(x, 0.0), timestamp: 0 }
    }

    #[test]
    fn matching_respects_radius() {
        let net = AdNetwork::new(vec![
            radius_campaign(0, 0.0, 1_000.0, 1.0),
            radius_campaign(1, 10_000.0, 1_000.0, 1.0),
        ]);
        let m = net.matching(Point::new(500.0, 0.0));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].id().raw(), 0);
    }

    #[test]
    fn second_price_auction() {
        let net = AdNetwork::new(vec![
            radius_campaign(0, 0.0, 5_000.0, 2.0),
            radius_campaign(1, 0.0, 5_000.0, 8.0),
            radius_campaign(2, 0.0, 5_000.0, 5.0),
        ]);
        let o = net.auction(&req(0.0)).unwrap();
        assert_eq!(o.winner.id().raw(), 1);
        assert_eq!(o.price, 5.0);
    }

    #[test]
    fn single_bidder_pays_own_bid() {
        let net = AdNetwork::new(vec![radius_campaign(0, 0.0, 5_000.0, 3.5)]);
        let o = net.auction(&req(0.0)).unwrap();
        assert_eq!(o.price, 3.5);
    }

    #[test]
    fn tie_broken_by_campaign_id() {
        let net = AdNetwork::new(vec![
            radius_campaign(5, 0.0, 5_000.0, 4.0),
            radius_campaign(2, 0.0, 5_000.0, 4.0),
        ]);
        let o = net.auction(&req(0.0)).unwrap();
        assert_eq!(o.winner.id().raw(), 2);
        assert_eq!(o.price, 4.0);
    }

    #[test]
    fn no_match_no_outcome_but_logged() {
        let mut net = AdNetwork::new(vec![radius_campaign(0, 50_000.0, 100.0, 1.0)]);
        assert!(net.serve(req(0.0)).is_none());
        assert_eq!(net.log().len(), 1);
        assert_eq!(net.log().entries()[0].winner, None);
        assert_eq!(net.log().entries()[0].price, 0.0);
    }

    #[test]
    fn serve_logs_reported_location() {
        let mut net = AdNetwork::new(vec![radius_campaign(0, 0.0, 5_000.0, 1.0)]);
        net.serve(req(123.0));
        net.serve(req(456.0));
        let locs = net.log().locations_of(DeviceId::new(1));
        assert_eq!(locs, vec![Point::new(123.0, 0.0), Point::new(456.0, 0.0)]);
    }

    #[test]
    fn take_log_clears() {
        let mut net = AdNetwork::new(vec![radius_campaign(0, 0.0, 5_000.0, 1.0)]);
        net.serve(req(0.0));
        let log = net.take_log();
        assert_eq!(log.len(), 1);
        assert!(net.log().is_empty());
    }

    #[test]
    fn area_campaigns_match_through_the_grid() {
        use crate::{AreaGrid, Targeting};
        let grid = AreaGrid::new(10_000.0);
        let downtown = grid.area_of(Point::new(5_000.0, 5_000.0));
        let mut net = AdNetwork::new(vec![Campaign::new(
            0u64,
            "city-wide",
            Targeting::Area(downtown),
            3.0,
        )
        .unwrap()]);
        // Without a grid the area campaign never matches.
        assert!(net.matching(Point::new(5_000.0, 5_000.0)).is_empty());
        net.set_area_grid(grid);
        assert_eq!(net.matching(Point::new(5_000.0, 5_000.0)).len(), 1);
        assert_eq!(net.matching(Point::new(2_000.0, 8_000.0)).len(), 1); // same cell
        assert!(net.matching(Point::new(15_000.0, 5_000.0)).is_empty()); // next cell
    }

    #[test]
    fn country_campaigns_match_after_configuration() {
        use crate::Targeting;
        let mut net =
            AdNetwork::new(vec![Campaign::new(0u64, "national", Targeting::Country(86), 1.0)
                .unwrap()]);
        assert!(net.matching(Point::ORIGIN).is_empty());
        net.set_country(86);
        assert_eq!(net.matching(Point::ORIGIN).len(), 1);
        net.set_country(1);
        assert!(net.matching(Point::ORIGIN).is_empty());
    }

    #[test]
    fn budget_exhaustion_hands_wins_to_the_runner_up() {
        let mut net = AdNetwork::new(vec![
            radius_campaign(0, 0.0, 5_000.0, 10.0),
            radius_campaign(1, 0.0, 5_000.0, 4.0),
        ]);
        // The top bidder can afford exactly two second-price (4.0) wins.
        net.set_policy(CampaignId::new(0), ServingPolicy::unlimited().with_budget(8.0));
        for _ in 0..2 {
            let o = net.serve(req(0.0)).unwrap();
            assert_eq!(o.winner.id().raw(), 0);
            assert_eq!(o.price, 4.0);
        }
        // Budget exhausted: the runner-up now wins at its own bid.
        let o = net.serve(req(0.0)).unwrap();
        assert_eq!(o.winner.id().raw(), 1);
        assert_eq!(o.price, 4.0);
        assert!((net.serving_state(CampaignId::new(0)).spent() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_cap_applies_per_device() {
        let mut net = AdNetwork::new(vec![radius_campaign(0, 0.0, 5_000.0, 2.0)]);
        net.set_policy(CampaignId::new(0), ServingPolicy::unlimited().with_frequency_cap(1));
        assert!(net.serve(req(0.0)).is_some());
        assert!(net.serve(req(0.0)).is_none(), "device 1 is capped");
        let other = BidRequest {
            device: DeviceId::new(2),
            location: Point::ORIGIN,
            timestamp: 0,
        };
        assert!(net.serve(other).is_some(), "other devices still served");
        assert_eq!(net.serving_state(CampaignId::new(0)).total_impressions(), 2);
    }

    #[test]
    fn serve_exchange_mirrors_the_legacy_auction() {
        use privlocad_openrtb::{DeviceId as Did, Geo};
        let mut net = AdNetwork::new(vec![
            radius_campaign(0, 0.0, 5_000.0, 8.0),
            radius_campaign(1, 0.0, 5_000.0, 5.0),
        ]);
        let request =
            privlocad_openrtb::BidRequest::new(Did::new(1), 0, Geo { x: 100.0, y: 0.0 });
        let response = net.serve_exchange(&request);
        assert_eq!(response.id, request.id);
        let sb = response.seatbid.unwrap();
        assert_eq!(sb.seat, 0, "highest bidder wins");
        assert_eq!(sb.bid.price_micros, 5_000_000, "pays the second price in micros");
        assert_eq!(net.serving_state(CampaignId::new(0)).total_impressions(), 1);
        assert_eq!(net.log().len(), 1, "legacy transaction log still appended");
        let far =
            privlocad_openrtb::BidRequest::new(Did::new(1), 1, Geo { x: 50_000.0, y: 0.0 });
        assert!(!net.serve_exchange(&far).is_win(), "out of radius is a no-bid");
        assert_eq!(net.log().len(), 2);
    }

    #[test]
    fn register_extends_inventory() {
        let mut net = AdNetwork::default();
        assert!(net.matching(Point::ORIGIN).is_empty());
        net.register(radius_campaign(0, 0.0, 1_000.0, 1.0));
        assert_eq!(net.campaigns().len(), 1);
        assert_eq!(net.matching(Point::ORIGIN).len(), 1);
    }
}
