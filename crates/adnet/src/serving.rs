use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{CampaignId, DeviceId};

/// Delivery constraints an advertiser attaches to a campaign (the
/// "serving frequency" and budget attributes of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServingPolicy {
    /// Total spend budget in clearing-price units; `None` is unlimited.
    pub budget: Option<f64>,
    /// Maximum impressions per device; `None` is uncapped.
    pub frequency_cap: Option<u32>,
}

impl ServingPolicy {
    /// An unlimited policy (the default).
    pub fn unlimited() -> Self {
        ServingPolicy::default()
    }

    /// A policy with a total budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not positive and finite.
    pub fn with_budget(mut self, budget: f64) -> Self {
        assert!(budget.is_finite() && budget > 0.0, "budget must be positive and finite");
        self.budget = Some(budget);
        self
    }

    /// A policy with a per-device frequency cap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_frequency_cap(mut self, cap: u32) -> Self {
        assert!(cap > 0, "frequency cap must be at least 1");
        self.frequency_cap = Some(cap);
        self
    }
}

/// Mutable delivery state of one campaign under its policy.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServingState {
    spent: f64,
    impressions: BTreeMap<u64, u32>,
}

impl ServingState {
    /// Total spend so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Impressions served to one device.
    pub fn impressions_for(&self, device: DeviceId) -> u32 {
        self.impressions.get(&device.raw()).copied().unwrap_or(0)
    }

    /// Total impressions across devices.
    pub fn total_impressions(&self) -> u32 {
        self.impressions.values().sum()
    }
}

/// Tracks policies and delivery state for a campaign inventory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServingLedger {
    policies: BTreeMap<u64, ServingPolicy>,
    states: BTreeMap<u64, ServingState>,
}

impl ServingLedger {
    /// Creates an empty ledger (all campaigns unlimited).
    pub fn new() -> Self {
        ServingLedger::default()
    }

    /// Attaches a policy to a campaign (replacing any previous policy but
    /// keeping accumulated state).
    pub fn set_policy(&mut self, campaign: CampaignId, policy: ServingPolicy) {
        self.policies.insert(campaign.raw(), policy);
    }

    /// The policy of a campaign (unlimited if never set).
    pub fn policy(&self, campaign: CampaignId) -> ServingPolicy {
        self.policies.get(&campaign.raw()).copied().unwrap_or_default()
    }

    /// The delivery state of a campaign.
    pub fn state(&self, campaign: CampaignId) -> ServingState {
        self.states.get(&campaign.raw()).cloned().unwrap_or_default()
    }

    /// Whether the campaign may bid for another impression to `device`
    /// under its policy.
    ///
    /// Budget semantics follow RTB pacing practice: a campaign
    /// participates while *any* budget remains, so the final impression
    /// may overshoot slightly (the clearing price is unknown before the
    /// auction).
    pub fn eligible(&self, campaign: CampaignId, device: DeviceId) -> bool {
        let policy = self.policy(campaign);
        let state = self.states.get(&campaign.raw());
        if let Some(budget) = policy.budget {
            if state.map_or(0.0, |s| s.spent) >= budget {
                return false;
            }
        }
        if let Some(cap) = policy.frequency_cap {
            if state.map_or(0, |s| s.impressions_for(device)) >= cap {
                return false;
            }
        }
        true
    }

    /// Records a served impression.
    pub fn record(&mut self, campaign: CampaignId, device: DeviceId, price: f64) {
        let state = self.states.entry(campaign.raw()).or_default();
        state.spent += price;
        *state.impressions.entry(device.raw()).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: CampaignId = CampaignId::new(1);
    const D: DeviceId = DeviceId::new(9);

    #[test]
    fn unlimited_policy_always_eligible() {
        let mut ledger = ServingLedger::new();
        for _ in 0..1_000 {
            assert!(ledger.eligible(C, D));
            ledger.record(C, D, 10.0);
        }
        assert_eq!(ledger.state(C).total_impressions(), 1_000);
        assert!((ledger.state(C).spent() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn budget_exhausts() {
        let mut ledger = ServingLedger::new();
        ledger.set_policy(C, ServingPolicy::unlimited().with_budget(25.0));
        assert!(ledger.eligible(C, D));
        ledger.record(C, D, 10.0);
        assert!(ledger.eligible(C, D));
        ledger.record(C, D, 10.0);
        // 20 spent < 25: still eligible (pacing may overshoot once).
        assert!(ledger.eligible(C, D));
        ledger.record(C, D, 10.0);
        // 30 spent ≥ 25: out of the market.
        assert!(!ledger.eligible(C, D));
    }

    #[test]
    fn frequency_cap_is_per_device() {
        let mut ledger = ServingLedger::new();
        ledger.set_policy(C, ServingPolicy::unlimited().with_frequency_cap(2));
        let other = DeviceId::new(77);
        ledger.record(C, D, 1.0);
        ledger.record(C, D, 1.0);
        assert!(!ledger.eligible(C, D));
        assert!(ledger.eligible(C, other));
        assert_eq!(ledger.state(C).impressions_for(D), 2);
        assert_eq!(ledger.state(C).impressions_for(other), 0);
    }

    #[test]
    fn policy_replacement_keeps_state() {
        let mut ledger = ServingLedger::new();
        ledger.record(C, D, 30.0);
        ledger.set_policy(C, ServingPolicy::unlimited().with_budget(40.0));
        assert!(ledger.eligible(C, D));
        ledger.record(C, D, 15.0); // 45 ≥ 40
        assert!(!ledger.eligible(C, D));
    }

    #[test]
    fn combined_constraints() {
        let mut ledger = ServingLedger::new();
        ledger.set_policy(
            C,
            ServingPolicy::unlimited().with_budget(100.0).with_frequency_cap(1),
        );
        assert!(ledger.eligible(C, D));
        ledger.record(C, D, 1.0);
        assert!(!ledger.eligible(C, D), "capped even with budget left");
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn rejects_bad_budget() {
        let _ = ServingPolicy::unlimited().with_budget(0.0);
    }

    #[test]
    #[should_panic(expected = "frequency cap")]
    fn rejects_zero_cap() {
        let _ = ServingPolicy::unlimited().with_frequency_cap(0);
    }
}
