use bytes::{Buf, BufMut, Bytes, BytesMut};
use privlocad_geo::Point;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::CampaignId;

/// The advertising identifier of a device (Android ID / IDFA in the paper's
/// attack model) — the stable key that lets a longitudinal attacker link
/// bid requests of the same user over years.
///
/// The type itself lives in `privlocad-openrtb` (it is a wire concept shared
/// with the OpenRTB-lite codec); this re-export keeps every existing adnet
/// consumer compiling unchanged.
pub use privlocad_openrtb::DeviceId;

/// A real-time-bidding request as seen by the ad network: device id, the
/// *reported* (possibly obfuscated) location, and a timestamp in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BidRequest {
    /// The requesting device.
    pub device: DeviceId,
    /// Reported location — after Edge-PrivLocAd this is an obfuscated
    /// candidate, never the true position.
    pub location: Point,
    /// Request time in seconds since the study epoch.
    pub timestamp: i64,
}

/// Error decoding a wire-encoded bid request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    needed: usize,
    got: usize,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated bid request: need {} bytes, got {}", self.needed, self.got)
    }
}

impl std::error::Error for WireError {}

impl BidRequest {
    /// Size of the wire encoding in bytes.
    pub const WIRE_LEN: usize = 8 + 8 + 8 + 8;

    /// Encodes the request into the compact big-endian wire format used by
    /// the bid log: `device (u64) ‖ timestamp (i64) ‖ x (f64) ‖ y (f64)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use privlocad_adnet::{BidRequest, DeviceId};
    /// use privlocad_geo::Point;
    ///
    /// let req = BidRequest { device: DeviceId::new(7), location: Point::new(1.0, 2.0), timestamp: 99 };
    /// let bytes = req.encode();
    /// assert_eq!(BidRequest::decode(&bytes)?, req);
    /// # Ok::<(), privlocad_adnet::WireError>(())
    /// ```
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::WIRE_LEN);
        buf.put_u64(self.device.raw());
        buf.put_i64(self.timestamp);
        buf.put_f64(self.location.x);
        buf.put_f64(self.location.y);
        buf.freeze()
    }

    /// Decodes a request from its wire format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is shorter than
    /// [`BidRequest::WIRE_LEN`].
    pub fn decode(mut buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() < Self::WIRE_LEN {
            return Err(WireError { needed: Self::WIRE_LEN, got: buf.len() });
        }
        let device = DeviceId::new(buf.get_u64());
        let timestamp = buf.get_i64();
        let x = buf.get_f64();
        let y = buf.get_f64();
        Ok(BidRequest { device, location: Point::new(x, y), timestamp })
    }
}

/// One row of the ad network's transaction log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BidLogEntry {
    /// The request that triggered the auction.
    pub request: BidRequest,
    /// The winning campaign, if any matched.
    pub winner: Option<CampaignId>,
    /// The (second-price) clearing price, 0 when no auction happened.
    pub price: f64,
}

/// The accumulated transaction log — the longitudinal attacker's raw data.
///
/// Per Section III, "any advertisers or third-party traffic verification
/// companies can observe the location updating from the billions of ad
/// bidding logs per day". [`BidLog::locations_of`] extracts exactly what
/// Algorithm 1 consumes: one user's reported locations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BidLog {
    entries: Vec<BidLogEntry>,
    /// Entry ordinals per device, maintained on push — [`BidLog::
    /// locations_of`] and [`BidLog::devices`] answer from this index instead
    /// of rescanning the whole log per device.
    by_device: BTreeMap<u64, Vec<usize>>,
}

impl BidLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        BidLog::default()
    }

    /// Appends a transaction.
    pub fn push(&mut self, entry: BidLogEntry) {
        self.by_device
            .entry(entry.request.device.raw())
            .or_default()
            .push(self.entries.len());
        self.entries.push(entry);
    }

    /// All logged entries in arrival order.
    pub fn entries(&self) -> &[BidLogEntry] {
        &self.entries
    }

    /// Number of logged transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The reported locations of one device, in arrival order — the
    /// attacker's per-victim observation sequence.
    ///
    /// One index lookup plus one gather; the per-device ordinal lists are
    /// built on push, so this never rescans the whole log.
    pub fn locations_of(&self, device: DeviceId) -> Vec<Point> {
        self.by_device
            .get(&device.raw())
            .map(|ordinals| {
                ordinals.iter().map(|&i| self.entries[i].request.location).collect()
            })
            .unwrap_or_default()
    }

    /// The distinct devices seen in the log, ascending — the index key set.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.by_device.keys().map(|&raw| DeviceId::new(raw)).collect()
    }
}

impl Extend<BidLogEntry> for BidLog {
    fn extend<T: IntoIterator<Item = BidLogEntry>>(&mut self, iter: T) {
        for entry in iter {
            self.push(entry);
        }
    }
}

impl FromIterator<BidLogEntry> for BidLog {
    fn from_iter<T: IntoIterator<Item = BidLogEntry>>(iter: T) -> Self {
        let mut log = BidLog::new();
        log.extend(iter);
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(device: u64, x: f64, t: i64) -> BidLogEntry {
        BidLogEntry {
            request: BidRequest {
                device: DeviceId::new(device),
                location: Point::new(x, 0.0),
                timestamp: t,
            },
            winner: None,
            price: 0.0,
        }
    }

    #[test]
    fn wire_round_trip() {
        let req = BidRequest {
            device: DeviceId::new(0xDEADBEEF),
            location: Point::new(-1234.5, 6789.25),
            timestamp: 86_400 * 300 + 12_345,
        };
        let bytes = req.encode();
        assert_eq!(bytes.len(), BidRequest::WIRE_LEN);
        assert_eq!(BidRequest::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn wire_rejects_truncation() {
        let req = BidRequest { device: DeviceId::new(1), location: Point::ORIGIN, timestamp: 0 };
        let bytes = req.encode();
        let err = BidRequest::decode(&bytes[..10]).unwrap_err();
        assert_eq!(err.to_string(), "truncated bid request: need 32 bytes, got 10");
    }

    #[test]
    fn log_filters_by_device() {
        let mut log = BidLog::new();
        log.push(entry(1, 10.0, 0));
        log.push(entry(2, 20.0, 1));
        log.push(entry(1, 30.0, 2));
        assert_eq!(log.len(), 3);
        let locs = log.locations_of(DeviceId::new(1));
        assert_eq!(locs, vec![Point::new(10.0, 0.0), Point::new(30.0, 0.0)]);
        assert!(log.locations_of(DeviceId::new(9)).is_empty());
    }

    #[test]
    fn devices_are_deduped_and_sorted() {
        let log: BidLog = [entry(5, 0.0, 0), entry(1, 0.0, 1), entry(5, 0.0, 2)]
            .into_iter()
            .collect();
        assert_eq!(log.devices(), vec![DeviceId::new(1), DeviceId::new(5)]);
    }

    #[test]
    fn extend_and_collect() {
        let mut log = BidLog::new();
        assert!(log.is_empty());
        log.extend([entry(1, 0.0, 0), entry(2, 0.0, 1)]);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn device_display_is_hex() {
        assert_eq!(DeviceId::new(255).to_string(), "device-00000000000000ff");
    }

    #[test]
    fn index_tracks_every_construction_path() {
        // push, extend and collect must all maintain the per-device index;
        // arrival order within a device is what the attacker consumes.
        let mut pushed = BidLog::new();
        for e in [entry(2, 1.0, 0), entry(1, 2.0, 1), entry(2, 3.0, 2)] {
            pushed.push(e);
        }
        let mut extended = BidLog::new();
        extended.extend([entry(2, 1.0, 0), entry(1, 2.0, 1), entry(2, 3.0, 2)]);
        let collected: BidLog =
            [entry(2, 1.0, 0), entry(1, 2.0, 1), entry(2, 3.0, 2)].into_iter().collect();
        for log in [&pushed, &extended, &collected] {
            assert_eq!(log.devices(), vec![DeviceId::new(1), DeviceId::new(2)]);
            assert_eq!(
                log.locations_of(DeviceId::new(2)),
                vec![Point::new(1.0, 0.0), Point::new(3.0, 0.0)]
            );
        }
        assert_eq!(pushed, extended);
        assert_eq!(pushed, collected);
    }
}
