//! Location-based-advertising (LBA) ecosystem substrate.
//!
//! Section II of the Edge-PrivLocAd paper describes the business model this
//! crate implements: *advertisers* register campaigns with a business
//! location and a targeting radius; the *ad network* matches incoming bid
//! requests (carrying the user's reported location) against campaign
//! targeting, runs a second-price auction among matching bidders, and logs
//! every transaction — the bid log being exactly the observation channel of
//! the longitudinal attacker.
//!
//! Provided pieces:
//!
//! - [`platforms`]: the radius-targeting limits of the four platforms
//!   surveyed in Table I (Google, Microsoft, Facebook, Tencent).
//! - [`Campaign`] / [`Targeting`]: advertiser campaigns with radius, area,
//!   or country targeting.
//! - [`AdNetwork`]: matching and second-price auctions over an inventory.
//! - [`BidRequest`] / [`BidLog`]: the request stream and the transaction
//!   log an honest-but-curious observer accumulates, including a compact
//!   binary wire encoding.
//! - [`inventory`]: a synthetic campaign generator for the evaluation.
//!
//! # Examples
//!
//! ```
//! use privlocad_adnet::{AdNetwork, Campaign, Targeting};
//! use privlocad_geo::Point;
//!
//! let shop = Campaign::new(0, "coffee", Targeting::radius(Point::ORIGIN, 5_000.0)?, 2.5)?;
//! let far = Campaign::new(1, "gym", Targeting::radius(Point::new(50_000.0, 0.0), 5_000.0)?, 4.0)?;
//! let network = AdNetwork::new(vec![shop, far]);
//!
//! let matches = network.matching(Point::new(1_000.0, 0.0));
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].name(), "coffee");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod areas;
mod campaign;
mod error;
pub mod exchange;
pub mod inventory;
mod network;
pub mod platforms;
mod rtb;
mod serving;

pub use areas::AreaGrid;
pub use campaign::{Campaign, CampaignId, Targeting};
pub use error::AdError;
pub use exchange::BidExchange;
pub use network::{AdNetwork, AuctionOutcome};
pub use rtb::{BidLog, BidLogEntry, BidRequest, DeviceId, WireError};
pub use serving::{ServingLedger, ServingPolicy, ServingState};
