//! Radius-targeting limits of major LBA platforms (Table I of the paper).

use serde::{Deserialize, Serialize};

/// One mile in meters.
pub const MILE_M: f64 = 1_609.344;

/// A platform's allowed radius-targeting range, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiusLimits {
    /// Platform name as surveyed in Table I.
    pub name: &'static str,
    /// Minimal allowed targeting radius (meters).
    pub min_radius_m: f64,
    /// Maximal allowed targeting radius (meters).
    pub max_radius_m: f64,
}

impl RadiusLimits {
    /// Returns `true` if `radius_m` is allowed on this platform.
    pub fn allows(&self, radius_m: f64) -> bool {
        (self.min_radius_m..=self.max_radius_m).contains(&radius_m)
    }
}

/// Google Ads: 5 km – 65 km.
pub const GOOGLE: RadiusLimits =
    RadiusLimits { name: "Google", min_radius_m: 5_000.0, max_radius_m: 65_000.0 };

/// Microsoft Advertising: 1 km – 800 km (also quoted as 1–800 miles; the
/// paper lists both, we take the metric row).
pub const MICROSOFT: RadiusLimits =
    RadiusLimits { name: "Microsoft", min_radius_m: 1_000.0, max_radius_m: 800_000.0 };

/// Facebook (Meta): 1 mile – 50 miles.
pub const FACEBOOK: RadiusLimits =
    RadiusLimits { name: "Facebook", min_radius_m: MILE_M, max_radius_m: 50.0 * MILE_M };

/// Tencent: 500 m – 25 km.
pub const TENCENT: RadiusLimits =
    RadiusLimits { name: "Tencent", min_radius_m: 500.0, max_radius_m: 25_000.0 };

/// All surveyed platforms, in Table I order.
pub const ALL: [RadiusLimits; 4] = [GOOGLE, MICROSOFT, FACEBOOK, TENCENT];

/// The paper's chosen evaluation targeting radius `R = 5 km`: "the minimal
/// value of the common interval from 5 km to 25 km" across the four
/// platforms — i.e. the interval every platform supports.
pub const EVALUATION_TARGETING_RADIUS_M: f64 = 5_000.0;

/// The common radius interval supported by every surveyed platform,
/// `(max of minima, min of maxima)` = (5 km, 25 km).
pub fn common_interval() -> (f64, f64) {
    let lo = ALL.iter().map(|p| p.min_radius_m).fold(f64::MIN, f64::max);
    let hi = ALL.iter().map(|p| p.max_radius_m).fold(f64::MAX, f64::min);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values() {
        assert_eq!(GOOGLE.min_radius_m, 5_000.0);
        assert_eq!(GOOGLE.max_radius_m, 65_000.0);
        assert_eq!(MICROSOFT.min_radius_m, 1_000.0);
        assert_eq!(MICROSOFT.max_radius_m, 800_000.0);
        assert!((FACEBOOK.min_radius_m - 1_609.344).abs() < 1e-9);
        assert!((FACEBOOK.max_radius_m - 80_467.2).abs() < 1e-6);
        assert_eq!(TENCENT.min_radius_m, 500.0);
        assert_eq!(TENCENT.max_radius_m, 25_000.0);
    }

    #[test]
    fn common_interval_is_5_to_25_km() {
        let (lo, hi) = common_interval();
        assert_eq!(lo, 5_000.0);
        assert_eq!(hi, 25_000.0);
        assert_eq!(EVALUATION_TARGETING_RADIUS_M, lo);
    }

    #[test]
    fn allows_is_inclusive() {
        assert!(TENCENT.allows(500.0));
        assert!(TENCENT.allows(25_000.0));
        assert!(!TENCENT.allows(499.9));
        assert!(!TENCENT.allows(25_000.1));
    }

    #[test]
    fn evaluation_radius_allowed_everywhere() {
        for p in ALL {
            assert!(p.allows(EVALUATION_TARGETING_RADIUS_M), "{}", p.name);
        }
    }
}
