//! The live bid exchange: drains the fleet's [`BidSink`] through the ad
//! network's auction and appends every settled request to a deterministic
//! [`BidExchangeLog`].
//!
//! Determinism contract: [`BidSink::drain`] yields pending requests in
//! canonical `(device, seq)` order, and [`BidExchange::pump`] auctions them
//! in exactly that order — so ledger spend, frequency-cap state and the
//! exchange-log bytes are a pure function of the per-device request
//! sequences. Two fleets serving the same workload settle bit-identical
//! logs regardless of shard count or fault schedule, provided each pump
//! runs at a workload synchronization point (e.g. after the fleet drains).

use privlocad_openrtb::{
    BidExchangeLog, BidRequest, BidSink, DecodeError, ExchangeRecord, PendingBid,
};
use privlocad_telemetry::{Determinism, Telemetry};

use crate::AdNetwork;

/// Per-pump counters, flushed by [`BidExchange::drain_telemetry`].
#[derive(Debug, Clone, Copy, Default)]
struct ExchangeStats {
    bid_requests: u64,
    bids_won: u64,
    no_bids: u64,
    revenue_micros: u64,
}

/// An ad exchange bridging the serving fleet's bid sink to the
/// [`AdNetwork`] auction, accumulating the attacker-observable
/// [`BidExchangeLog`].
#[derive(Debug, Default)]
pub struct BidExchange {
    network: AdNetwork,
    log: BidExchangeLog,
    stats: ExchangeStats,
}

impl BidExchange {
    /// Creates an exchange auctioning through `network`.
    pub fn new(network: AdNetwork) -> Self {
        BidExchange { network, log: BidExchangeLog::new(), stats: ExchangeStats::default() }
    }

    /// Drains every pending request from `sink` and auctions them in
    /// canonical order, returning how many were settled.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] if a drained frame is malformed —
    /// impossible for frames the sink itself encoded, but kept typed so a
    /// corrupted hand-off fails loudly instead of panicking.
    pub fn pump(&mut self, sink: &BidSink) -> Result<usize, DecodeError> {
        let pending = sink.drain();
        self.pump_pending(&pending)
    }

    /// Auctions an already-drained batch in its given order. Split out from
    /// [`BidExchange::pump`] so benchmarks can re-run the same batch
    /// against fresh exchanges.
    pub fn pump_pending(&mut self, pending: &[PendingBid]) -> Result<usize, DecodeError> {
        for p in pending {
            let (request, _) = BidRequest::decode(&p.frame)?;
            let response = self.network.serve_exchange(&request);
            self.stats.bid_requests += 1;
            match &response.seatbid {
                Some(sb) => {
                    self.stats.bids_won += 1;
                    self.stats.revenue_micros += sb.bid.price_micros;
                }
                None => self.stats.no_bids += 1,
            }
            self.log.append(ExchangeRecord {
                request,
                response,
                request_frame: p.frame.clone(),
                response_frame: response.encode(),
            });
        }
        Ok(pending.len())
    }

    /// The settled-auction log — the longitudinal attacker's live feed.
    pub fn log(&self) -> &BidExchangeLog {
        &self.log
    }

    /// The underlying ad network (inventory, ledger state).
    pub fn network(&self) -> &AdNetwork {
        &self.network
    }

    /// Mutable access to the ad network, e.g. to attach serving policies.
    pub fn network_mut(&mut self) -> &mut AdNetwork {
        &mut self.network
    }

    /// Flushes the accumulated exchange counters into `telemetry`'s
    /// registry, resetting the local buffer. Every metric registers on
    /// every drain so the exported schema stays stable.
    pub fn drain_telemetry(&mut self, telemetry: &Telemetry) {
        let stats = std::mem::take(&mut self.stats);
        let registry = telemetry.registry();
        let class = Determinism::Deterministic;
        registry.counter("rtb.bid_requests", class).add(stats.bid_requests);
        registry.counter("rtb.bids_won", class).add(stats.bids_won);
        registry.counter("rtb.no_bids", class).add(stats.no_bids);
        registry.counter("rtb.revenue_micros", class).add(stats.revenue_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Campaign, Targeting};
    use privlocad_geo::Point;
    use privlocad_openrtb::{DeviceId, Geo};

    fn exchange() -> BidExchange {
        let campaigns = vec![
            Campaign::new(
                0u64,
                "near",
                Targeting::radius(Point::ORIGIN, 5_000.0).unwrap(),
                8.0,
            )
            .unwrap(),
            Campaign::new(
                1u64,
                "also-near",
                Targeting::radius(Point::ORIGIN, 5_000.0).unwrap(),
                5.0,
            )
            .unwrap(),
        ];
        BidExchange::new(AdNetwork::new(campaigns))
    }

    #[test]
    fn pump_settles_in_canonical_order() {
        let sink = BidSink::new();
        sink.submit(DeviceId::new(2), Geo { x: 100.0, y: 0.0 });
        sink.submit(DeviceId::new(1), Geo { x: 90_000.0, y: 0.0 });
        let mut ex = exchange();
        assert_eq!(ex.pump(&sink).unwrap(), 2);
        assert_eq!(sink.pending(), 0);
        let records: Vec<(u64, bool)> = ex
            .log()
            .records()
            .map(|r| (r.request.device.id.raw(), r.response.is_win()))
            .collect();
        assert_eq!(records, vec![(1, false), (2, true)]);
        assert_eq!(ex.log().revenue_micros(), 5_000_000);
    }

    #[test]
    fn pump_order_decides_spend_deterministically() {
        // Same submissions, two interleavings — the canonical drain order
        // must make ledger spend and log digests identical.
        let make_log = |first_device: u64| {
            let sink = BidSink::new();
            sink.submit(DeviceId::new(first_device), Geo::default());
            sink.submit(DeviceId::new(3 - first_device), Geo::default());
            let mut ex = exchange();
            ex.pump(&sink).unwrap();
            ex.log().digest()
        };
        assert_eq!(make_log(1), make_log(2));
    }

    #[test]
    fn telemetry_drain_flushes_counters() {
        use privlocad_telemetry::Telemetry;
        let sink = BidSink::new();
        sink.submit(DeviceId::new(1), Geo::default());
        sink.submit(DeviceId::new(1), Geo { x: 90_000.0, y: 0.0 });
        let mut ex = exchange();
        ex.pump(&sink).unwrap();
        let telemetry = Telemetry::new();
        ex.drain_telemetry(&telemetry);
        let snapshot = telemetry.registry().snapshot();
        assert_eq!(snapshot.counter("rtb.bid_requests"), Some(2));
        assert_eq!(snapshot.counter("rtb.bids_won"), Some(1));
        assert_eq!(snapshot.counter("rtb.no_bids"), Some(1));
        assert_eq!(snapshot.counter("rtb.revenue_micros"), Some(5_000_000));
        // The buffer reset: a second drain adds nothing.
        ex.drain_telemetry(&telemetry);
        assert_eq!(telemetry.registry().snapshot().counter("rtb.bid_requests"), Some(2));
    }
}
