use privlocad_geo::{Circle, Point};
use serde::{Deserialize, Serialize};

use crate::AdError;

/// Campaign identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CampaignId(u64);

impl CampaignId {
    /// Creates a campaign id.
    pub const fn new(id: u64) -> Self {
        CampaignId(id)
    }

    /// The raw numeric id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CampaignId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "campaign-{}", self.0)
    }
}

impl From<u64> for CampaignId {
    fn from(id: u64) -> Self {
        CampaignId(id)
    }
}

/// Geo-targeting of a campaign (Section II-A's three categories).
///
/// The paper's mechanisms and evaluation focus on radius targeting — the
/// most privacy-sensitive category — but the substrate models all three so
/// a mixed inventory behaves like a real platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Targeting {
    /// Show ads to users within `radius_m` of the business location.
    Radius {
        /// The advertiser's business location.
        center: Point,
        /// The targeting radius in meters.
        radius_m: f64,
    },
    /// Administrative-area targeting, matched by an opaque area id carried
    /// on the request side (cities/districts are out of scope of the
    /// geometry; the id stands in for a polygon lookup).
    Area(u32),
    /// Whole-country targeting.
    Country(u16),
}

impl Targeting {
    /// Creates validated radius targeting.
    ///
    /// # Errors
    ///
    /// Returns [`AdError::InvalidRadius`] for a non-positive or non-finite
    /// radius, or [`AdError::NonFiniteLocation`] for a non-finite center.
    pub fn radius(center: Point, radius_m: f64) -> Result<Self, AdError> {
        if !radius_m.is_finite() || radius_m <= 0.0 {
            return Err(AdError::InvalidRadius(radius_m));
        }
        if !center.is_finite() {
            return Err(AdError::NonFiniteLocation);
        }
        Ok(Targeting::Radius { center, radius_m })
    }

    /// Whether a user reporting `location` (and, for non-geometric
    /// targeting, `area`/`country` identifiers) matches this targeting.
    pub fn matches(&self, location: Point, area: u32, country: u16) -> bool {
        match *self {
            Targeting::Radius { center, radius_m } => {
                center.distance_sq(location) <= radius_m * radius_m
            }
            Targeting::Area(a) => a == area,
            Targeting::Country(c) => c == country,
        }
    }

    /// The targeting disc for radius campaigns, `None` otherwise.
    pub fn as_circle(&self) -> Option<Circle> {
        match *self {
            Targeting::Radius { center, radius_m } => {
                Some(Circle::new(center, radius_m).expect("validated at construction"))
            }
            _ => None,
        }
    }
}

/// An advertiser's campaign: targeting plus a fixed CPM bid.
///
/// # Examples
///
/// ```
/// use privlocad_adnet::{Campaign, Targeting};
/// use privlocad_geo::Point;
///
/// let c = Campaign::new(7, "noodle bar", Targeting::radius(Point::ORIGIN, 1_000.0)?, 3.2)?;
/// assert!(c.matches(Point::new(500.0, 0.0), 0, 0));
/// assert!(!c.matches(Point::new(2_000.0, 0.0), 0, 0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    id: CampaignId,
    name: String,
    targeting: Targeting,
    bid_cpm: f64,
}

impl Campaign {
    /// Creates a campaign.
    ///
    /// # Errors
    ///
    /// Returns [`AdError::InvalidBid`] for a non-positive or non-finite bid.
    pub fn new(
        id: impl Into<CampaignId>,
        name: impl Into<String>,
        targeting: Targeting,
        bid_cpm: f64,
    ) -> Result<Self, AdError> {
        if !bid_cpm.is_finite() || bid_cpm <= 0.0 {
            return Err(AdError::InvalidBid(bid_cpm));
        }
        Ok(Campaign { id: id.into(), name: name.into(), targeting, bid_cpm })
    }

    /// The campaign id.
    pub fn id(&self) -> CampaignId {
        self.id
    }

    /// The campaign's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The campaign's geo-targeting.
    pub fn targeting(&self) -> Targeting {
        self.targeting
    }

    /// The fixed CPM bid price.
    pub fn bid_cpm(&self) -> f64 {
        self.bid_cpm
    }

    /// The business location for radius campaigns (where the delivered ad
    /// "is"), `None` for area/country campaigns.
    pub fn business_location(&self) -> Option<Point> {
        match self.targeting {
            Targeting::Radius { center, .. } => Some(center),
            _ => None,
        }
    }

    /// Whether a request at `location` (with the given area/country ids)
    /// matches this campaign's targeting.
    pub fn matches(&self, location: Point, area: u32, country: u16) -> bool {
        self.targeting.matches(location, area, country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_targeting_validation() {
        assert!(Targeting::radius(Point::ORIGIN, 0.0).is_err());
        assert!(Targeting::radius(Point::ORIGIN, f64::NAN).is_err());
        assert!(Targeting::radius(Point::new(f64::NAN, 0.0), 10.0).is_err());
        assert!(Targeting::radius(Point::ORIGIN, 500.0).is_ok());
    }

    #[test]
    fn radius_matching_is_inclusive() {
        let t = Targeting::radius(Point::ORIGIN, 100.0).unwrap();
        assert!(t.matches(Point::new(100.0, 0.0), 0, 0));
        assert!(!t.matches(Point::new(100.1, 0.0), 0, 0));
    }

    #[test]
    fn area_and_country_matching() {
        let area = Targeting::Area(31);
        assert!(area.matches(Point::ORIGIN, 31, 0));
        assert!(!area.matches(Point::ORIGIN, 30, 0));
        let country = Targeting::Country(86);
        assert!(country.matches(Point::ORIGIN, 0, 86));
        assert!(!country.matches(Point::ORIGIN, 0, 1));
    }

    #[test]
    fn as_circle_only_for_radius() {
        let t = Targeting::radius(Point::new(1.0, 2.0), 500.0).unwrap();
        let c = t.as_circle().unwrap();
        assert_eq!(c.center(), Point::new(1.0, 2.0));
        assert_eq!(c.radius(), 500.0);
        assert!(Targeting::Area(1).as_circle().is_none());
        assert!(Targeting::Country(1).as_circle().is_none());
    }

    #[test]
    fn campaign_accessors() {
        let t = Targeting::radius(Point::new(10.0, 20.0), 800.0).unwrap();
        let c = Campaign::new(3u64, "bakery", t, 1.5).unwrap();
        assert_eq!(c.id(), CampaignId::new(3));
        assert_eq!(c.id().to_string(), "campaign-3");
        assert_eq!(c.name(), "bakery");
        assert_eq!(c.bid_cpm(), 1.5);
        assert_eq!(c.business_location(), Some(Point::new(10.0, 20.0)));
        assert_eq!(c.targeting(), t);
    }

    #[test]
    fn campaign_rejects_bad_bid() {
        let t = Targeting::radius(Point::ORIGIN, 100.0).unwrap();
        assert!(matches!(Campaign::new(1u64, "x", t, 0.0), Err(AdError::InvalidBid(_))));
        assert!(Campaign::new(1u64, "x", t, f64::INFINITY).is_err());
    }

    #[test]
    fn non_radius_campaign_has_no_business_location() {
        let c = Campaign::new(1u64, "nationwide", Targeting::Country(86), 2.0).unwrap();
        assert_eq!(c.business_location(), None);
    }
}
