use std::error::Error;
use std::fmt;

/// Error type for invalid advertising-substrate arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum AdError {
    /// A targeting radius outside the supported range.
    InvalidRadius(f64),
    /// A bid price that must be positive and finite.
    InvalidBid(f64),
    /// A non-finite coordinate.
    NonFiniteLocation,
}

impl fmt::Display for AdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdError::InvalidRadius(v) => write!(f, "targeting radius {v} must be positive and finite"),
            AdError::InvalidBid(v) => write!(f, "bid price {v} must be positive and finite"),
            AdError::NonFiniteLocation => write!(f, "location coordinates must be finite"),
        }
    }
}

impl Error for AdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            AdError::InvalidRadius(-1.0),
            AdError::InvalidBid(0.0),
            AdError::NonFiniteLocation,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
