//! Synthetic campaign inventory for the evaluation.
//!
//! The paper's experiments need an ad marketplace around every user; this
//! generator scatters radius-targeted campaigns over the study area with
//! platform-conformant radii and log-normally distributed CPM bids.

use privlocad_geo::rng::{normal, seeded};
use privlocad_geo::{BoundingBox, LocalProjection, Point};
use rand::Rng;

use crate::platforms::RadiusLimits;
use crate::{Campaign, Targeting};

/// Configuration for [`generate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InventoryConfig {
    /// Number of campaigns.
    pub count: usize,
    /// Platform whose radius limits constrain the campaigns.
    pub platform: RadiusLimits,
    /// Cap applied on top of the platform maximum (the evaluation keeps
    /// radii in the cross-platform common interval; `f64::INFINITY`
    /// disables the cap).
    pub max_radius_m: f64,
    /// Log-normal parameters of the CPM bids.
    pub bid_log_mean: f64,
    /// Log-normal σ of the CPM bids.
    pub bid_log_sigma: f64,
}

impl Default for InventoryConfig {
    fn default() -> Self {
        InventoryConfig {
            count: 1_000,
            platform: crate::platforms::TENCENT,
            max_radius_m: 25_000.0,
            bid_log_mean: 1.0,
            bid_log_sigma: 0.5,
        }
    }
}

/// Generates a deterministic synthetic inventory inside `bbox`, projected
/// through `proj`.
///
/// # Panics
///
/// Panics if the configured radius range is empty after applying the cap.
///
/// # Examples
///
/// ```
/// use privlocad_adnet::inventory::{generate, InventoryConfig};
/// use privlocad_mobility::shanghai;
///
/// let ads = generate(&InventoryConfig::default(), shanghai::bounding_box(), &shanghai::projection(), 7);
/// assert_eq!(ads.len(), 1_000);
/// ```
pub fn generate(
    config: &InventoryConfig,
    bbox: BoundingBox,
    proj: &LocalProjection,
    seed: u64,
) -> Vec<Campaign> {
    let lo = config.platform.min_radius_m;
    let hi = config.platform.max_radius_m.min(config.max_radius_m);
    assert!(lo <= hi, "empty radius range [{lo}, {hi}]");
    let mut rng = seeded(seed);
    (0..config.count)
        .map(|i| {
            let center: Point = proj.to_local(bbox.sample_uniform(&mut rng));
            let radius = rng.gen_range(lo..=hi);
            let bid = normal(&mut rng, config.bid_log_mean, config.bid_log_sigma).exp();
            Campaign::new(
                i as u64,
                format!("campaign-{i}"),
                Targeting::radius(center, radius).expect("generated radius is valid"),
                bid,
            )
            .expect("generated bid is positive")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    fn shanghai_box() -> BoundingBox {
        BoundingBox::new(30.7, 31.4, 121.0, 122.0).unwrap()
    }

    fn proj() -> LocalProjection {
        LocalProjection::new(shanghai_box().center())
    }

    #[test]
    fn generates_requested_count_deterministically() {
        let cfg = InventoryConfig { count: 50, ..InventoryConfig::default() };
        let a = generate(&cfg, shanghai_box(), &proj(), 3);
        let b = generate(&cfg, shanghai_box(), &proj(), 3);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn radii_respect_platform_limits_and_cap() {
        let cfg = InventoryConfig {
            count: 200,
            platform: platforms::TENCENT,
            max_radius_m: 10_000.0,
            ..InventoryConfig::default()
        };
        for c in generate(&cfg, shanghai_box(), &proj(), 1) {
            match c.targeting() {
                Targeting::Radius { radius_m, .. } => {
                    assert!((500.0..=10_000.0).contains(&radius_m), "radius {radius_m}");
                }
                _ => panic!("inventory generates radius campaigns only"),
            }
        }
    }

    #[test]
    fn bids_positive_and_varied() {
        let cfg = InventoryConfig { count: 100, ..InventoryConfig::default() };
        let bids: Vec<f64> = generate(&cfg, shanghai_box(), &proj(), 2)
            .iter()
            .map(|c| c.bid_cpm())
            .collect();
        assert!(bids.iter().all(|&b| b > 0.0));
        let distinct = {
            let mut b = bids.clone();
            b.sort_by(|a, c| a.partial_cmp(c).unwrap());
            b.dedup();
            b.len()
        };
        assert!(distinct > 90);
    }

    #[test]
    fn centers_inside_study_area() {
        let cfg = InventoryConfig { count: 100, ..InventoryConfig::default() };
        let p = proj();
        for c in generate(&cfg, shanghai_box(), &p, 4) {
            let g = p.to_geo(c.business_location().unwrap()).unwrap();
            assert!(shanghai_box().contains(g));
        }
    }

    #[test]
    fn seeds_differ() {
        let cfg = InventoryConfig { count: 10, ..InventoryConfig::default() };
        assert_ne!(
            generate(&cfg, shanghai_box(), &proj(), 1),
            generate(&cfg, shanghai_box(), &proj(), 2)
        );
    }

    #[test]
    #[should_panic(expected = "empty radius range")]
    fn rejects_empty_radius_range() {
        let cfg = InventoryConfig {
            platform: platforms::GOOGLE, // min 5 km
            max_radius_m: 1_000.0,       // cap below the platform minimum
            ..InventoryConfig::default()
        };
        let _ = generate(&cfg, shanghai_box(), &proj(), 0);
    }
}
