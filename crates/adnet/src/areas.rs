use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

/// A deterministic administrative-area model: the plane is divided into
/// square cells and each cell is an "area" with a stable 32-bit id.
///
/// Real platforms resolve area targeting against city/district polygons;
/// a uniform grid preserves what matters for the privacy analysis — a
/// coarse, many-to-one mapping from coordinates to a targeting key — while
/// staying fully deterministic. Cells of 10 km side approximate district
/// granularity in the study area.
///
/// # Examples
///
/// ```
/// use privlocad_adnet::AreaGrid;
/// use privlocad_geo::Point;
///
/// let grid = AreaGrid::new(10_000.0);
/// let a = grid.area_of(Point::new(1_000.0, 1_000.0));
/// let b = grid.area_of(Point::new(9_000.0, 9_000.0));
/// let c = grid.area_of(Point::new(11_000.0, 1_000.0));
/// assert_eq!(a, b); // same 10 km cell
/// assert_ne!(a, c); // next cell east
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaGrid {
    cell_size_m: f64,
}

impl AreaGrid {
    /// Creates a grid with square cells of the given side length.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size_m` is not positive and finite.
    pub fn new(cell_size_m: f64) -> Self {
        assert!(
            cell_size_m.is_finite() && cell_size_m > 0.0,
            "cell size must be positive and finite"
        );
        AreaGrid { cell_size_m }
    }

    /// The cell side length in meters.
    pub fn cell_size_m(&self) -> f64 {
        self.cell_size_m
    }

    /// The area id containing `p`.
    ///
    /// Ids are collision-free for cell coordinates within ±32,767 of the
    /// origin — over 300,000 km at 10 km cells, far beyond any study area.
    pub fn area_of(&self, p: Point) -> u32 {
        let cx = (p.x / self.cell_size_m).floor() as i64 + 0x8000;
        let cy = (p.y / self.cell_size_m).floor() as i64 + 0x8000;
        ((cx as u32 & 0xFFFF) << 16) | (cy as u32 & 0xFFFF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_in_one_cell_share_an_id() {
        let g = AreaGrid::new(1_000.0);
        let base = g.area_of(Point::new(0.0, 0.0));
        assert_eq!(g.area_of(Point::new(999.0, 999.0)), base);
        assert_eq!(g.area_of(Point::new(0.0, 500.0)), base);
    }

    #[test]
    fn adjacent_cells_differ() {
        let g = AreaGrid::new(1_000.0);
        let base = g.area_of(Point::new(500.0, 500.0));
        assert_ne!(g.area_of(Point::new(1_500.0, 500.0)), base);
        assert_ne!(g.area_of(Point::new(500.0, 1_500.0)), base);
        assert_ne!(g.area_of(Point::new(-500.0, 500.0)), base);
    }

    #[test]
    fn ids_stable_across_calls() {
        let g = AreaGrid::new(10_000.0);
        let p = Point::new(-123_456.0, 78_910.0);
        assert_eq!(g.area_of(p), g.area_of(p));
    }

    #[test]
    fn city_scale_ids_are_distinct() {
        // Every cell of a 100 km × 100 km city grid gets its own id.
        let g = AreaGrid::new(10_000.0);
        let mut ids = std::collections::HashSet::new();
        for i in -5..5 {
            for j in -5..5 {
                ids.insert(g.area_of(Point::new(
                    i as f64 * 10_000.0 + 5_000.0,
                    j as f64 * 10_000.0 + 5_000.0,
                )));
            }
        }
        assert_eq!(ids.len(), 100);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn rejects_bad_cell_size() {
        let _ = AreaGrid::new(0.0);
    }
}
