//! Logical-clock span tracing.
//!
//! A [`Tracer`] belongs to one worker (one serving loop). Its clock is a
//! monotonic *event sequence number* — advanced explicitly by the worker
//! as it processes envelopes/requests — never a wall clock, so traces from
//! a fixed seed are reproducible and the workspace's determinism lint
//! rules hold. Completed spans land in a bounded ring buffer (oldest
//! evicted first).
//!
//! With the `trace` feature disabled (the `--no-default-features` build)
//! the entire module is replaced by signature-identical no-ops: no
//! allocation, no locking, nothing to optimize away.
//!
//! The `wallclock` feature additionally stamps spans with elapsed
//! nanosecond ticks for interactive profiling. It is never part of the
//! default feature set and must stay out of test/CI builds.

/// A completed span: a name plus the logical-clock interval it covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (e.g. `"server.decode"`).
    pub name: &'static str,
    /// Logical clock when the span opened.
    pub seq_start: u64,
    /// Logical clock when the span closed.
    pub seq_end: u64,
    /// Elapsed wall-clock nanoseconds; always `0` unless the `wallclock`
    /// feature is enabled.
    pub ticks: u64,
}

#[cfg(feature = "trace")]
mod enabled {
    use super::SpanRecord;
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[derive(Debug)]
    struct Ring {
        seq: u64,
        recorded: u64,
        capacity: usize,
        spans: VecDeque<SpanRecord>,
    }

    /// A per-worker span tracer with a bounded ring buffer.
    #[derive(Debug, Clone)]
    pub struct Tracer {
        inner: Arc<Mutex<Ring>>,
    }

    impl Default for Tracer {
        fn default() -> Self {
            Tracer::new(256)
        }
    }

    impl Tracer {
        /// Creates a tracer retaining at most `capacity` completed spans.
        pub fn new(capacity: usize) -> Self {
            Tracer {
                inner: Arc::new(Mutex::new(Ring {
                    seq: 0,
                    recorded: 0,
                    capacity: capacity.max(1),
                    spans: VecDeque::new(),
                })),
            }
        }

        /// Whether tracing is compiled in.
        pub fn enabled() -> bool {
            true
        }

        /// Advances the logical clock by `events` processed events and
        /// returns the new clock value.
        pub fn advance(&self, events: u64) -> u64 {
            let mut ring = self.inner.lock();
            ring.seq += events;
            ring.seq
        }

        /// Opens a span at the current logical clock; the span records
        /// itself into the ring when dropped.
        pub fn span(&self, name: &'static str) -> Span {
            let seq_start = self.inner.lock().seq;
            Span {
                inner: Arc::clone(&self.inner),
                name,
                seq_start,
                // Wall-clock ticks are the whole point of the opt-in
                // `wallclock` profiling feature, which is banned from
                // test/CI builds.
                #[cfg(feature = "wallclock")]
                // lint:allow(determinism-time): opt-in wallclock profiling feature only
                started: std::time::Instant::now(),
            }
        }

        /// Completed spans, oldest first (at most the ring capacity).
        pub fn records(&self) -> Vec<SpanRecord> {
            self.inner.lock().spans.iter().cloned().collect()
        }

        /// Total spans ever recorded, including ones evicted from the ring.
        pub fn span_count(&self) -> u64 {
            self.inner.lock().recorded
        }
    }

    /// An open span; records itself on drop.
    #[derive(Debug)]
    pub struct Span {
        inner: Arc<Mutex<Ring>>,
        name: &'static str,
        seq_start: u64,
        #[cfg(feature = "wallclock")]
        started: std::time::Instant,
    }

    impl Drop for Span {
        fn drop(&mut self) {
            #[cfg(feature = "wallclock")]
            let ticks = self.started.elapsed().as_nanos() as u64;
            #[cfg(not(feature = "wallclock"))]
            let ticks = 0;
            let mut ring = self.inner.lock();
            let record = SpanRecord {
                name: self.name,
                seq_start: self.seq_start,
                seq_end: ring.seq,
                ticks,
            };
            if ring.spans.len() == ring.capacity {
                ring.spans.pop_front();
            }
            ring.spans.push_back(record);
            ring.recorded += 1;
        }
    }
}

#[cfg(not(feature = "trace"))]
mod enabled {
    use super::SpanRecord;

    /// No-op tracer (the `trace` feature is disabled).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Tracer;

    impl Tracer {
        /// Creates a no-op tracer.
        pub fn new(_capacity: usize) -> Self {
            Tracer
        }

        /// Whether tracing is compiled in.
        pub fn enabled() -> bool {
            false
        }

        /// No-op; always returns 0.
        pub fn advance(&self, _events: u64) -> u64 {
            0
        }

        /// Returns an inert span.
        pub fn span(&self, _name: &'static str) -> Span {
            Span
        }

        /// Always empty.
        pub fn records(&self) -> Vec<SpanRecord> {
            Vec::new()
        }

        /// Always 0.
        pub fn span_count(&self) -> u64 {
            0
        }
    }

    /// Inert span (the `trace` feature is disabled).
    #[derive(Debug, Clone, Copy)]
    pub struct Span;
}

pub use enabled::{Span, Tracer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "trace")]
    fn spans_cover_logical_clock_intervals() {
        let tracer = Tracer::new(8);
        {
            let _span = tracer.span("decode");
            tracer.advance(3);
        }
        {
            let _span = tracer.span("serve");
            tracer.advance(2);
        }
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "decode");
        assert_eq!((records[0].seq_start, records[0].seq_end), (0, 3));
        assert_eq!((records[1].seq_start, records[1].seq_end), (3, 5));
        assert_eq!(tracer.span_count(), 2);
        #[cfg(not(feature = "wallclock"))]
        assert!(records.iter().all(|r| r.ticks == 0));
    }

    #[test]
    #[cfg(feature = "trace")]
    fn ring_evicts_oldest_spans() {
        let tracer = Tracer::new(2);
        for name in ["a", "b", "c"] {
            let _span = tracer.span(name);
            tracer.advance(1);
        }
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "b");
        assert_eq!(records[1].name, "c");
        assert_eq!(tracer.span_count(), 3);
    }

    #[test]
    #[cfg(not(feature = "trace"))]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::new(8);
        let _span = tracer.span("decode");
        assert_eq!(tracer.advance(3), 0);
        assert!(tracer.records().is_empty());
        assert_eq!(tracer.span_count(), 0);
        assert!(!Tracer::enabled());
    }
}
