//! Deterministic JSON rendering of a [`Telemetry`] hub.
//!
//! Hand-rolled on purpose: the workspace is offline and dependency-free,
//! and the output shape is small and fully controlled. Keys appear in
//! sorted order (the registry snapshot and ledger totals are already
//! sorted), so two hubs with equal state render byte-identical strings.

use crate::registry::Determinism;
use crate::Telemetry;

/// Renders the hub as a single JSON object. With `deterministic_only`,
/// metrics whose class is [`Determinism::Scheduling`] are omitted so the
/// output is a pure function of seed + workload.
pub(crate) fn render(telemetry: &Telemetry, deterministic_only: bool) -> String {
    let snap = telemetry.registry().snapshot();
    let keep = |class: Determinism| !deterministic_only || class == Determinism::Deterministic;
    let mut out = String::from("{");

    out.push_str("\"counters\": {");
    let mut first = true;
    for (name, value, class) in &snap.counters {
        if keep(*class) {
            push_entry(&mut out, &mut first, name, &value.to_string());
        }
    }
    out.push_str("}, \"gauges\": {");
    first = true;
    for (name, value, class) in &snap.gauges {
        if keep(*class) {
            push_entry(&mut out, &mut first, name, &value.to_string());
        }
    }
    out.push_str("}, \"histograms\": {");
    first = true;
    for (name, cumulative, class) in &snap.histograms {
        if keep(*class) {
            let buckets: Vec<String> = cumulative.iter().map(u64::to_string).collect();
            push_entry(&mut out, &mut first, name, &format!("[{}]", buckets.join(", ")));
        }
    }

    out.push_str("}, \"ledger\": ");
    render_ledger(telemetry, &mut out, deterministic_only);
    out.push('}');
    out
}

/// The ledger section. Budget spends (ε/δ totals, candidate sets, window
/// closes) are pure functions of the workload and ship in both modes;
/// restore events and the raw event count depend on where crashes landed
/// relative to checkpoint boundaries, so the deterministic export omits
/// them.
fn render_ledger(telemetry: &Telemetry, out: &mut String, deterministic_only: bool) {
    let totals = telemetry.ledger().totals();
    out.push('{');
    if !deterministic_only {
        out.push_str(&format!("\"events\": {}, ", totals.events));
    }
    out.push_str(&format!(
        "\"users\": {}, \"epsilon_total\": {}, \"delta_total\": {}, \
         \"candidate_sets\": {}, \"window_closes\": {}, ",
        totals.users,
        num(totals.epsilon),
        num(totals.delta),
        totals.candidate_sets,
        totals.window_closes,
    ));
    if !deterministic_only {
        out.push_str(&format!("\"restores\": {}, ", totals.restores));
    }
    out.push_str("\"per_user\": {");
    let mut first = true;
    for (user, t) in telemetry.ledger().user_totals() {
        let mut body = format!(
            "{{\"epsilon\": {}, \"delta\": {}, \"candidate_sets\": {}, \"window_closes\": {}",
            num(t.epsilon),
            num(t.delta),
            t.candidate_sets,
            t.window_closes,
        );
        if !deterministic_only {
            body.push_str(&format!(", \"restores\": {}", t.restores));
        }
        body.push('}');
        push_entry(out, &mut first, &user.to_string(), &body);
    }
    out.push_str("}}");
}

fn push_entry(out: &mut String, first: &mut bool, key: &str, value: &str) {
    if !*first {
        out.push_str(", ");
    }
    *first = false;
    out.push('"');
    out.push_str(&escape(key));
    out.push_str("\": ");
    out.push_str(value);
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip decimal rendering of an f64 (Rust's `{:?}`), which
/// is stable across runs and platforms.
fn num(value: f64) -> String {
    format!("{value:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{top_key, Telemetry};

    fn sample_hub() -> Telemetry {
        let telemetry = Telemetry::new();
        let registry = telemetry.registry();
        registry.counter("edge.requests", Determinism::Deterministic).add(12);
        registry.counter("server.wakeups", Determinism::Scheduling).add(3);
        registry.gauge("server.queue_depth", Determinism::Scheduling).add(2);
        registry.histogram("server.batch_size", Determinism::Scheduling).observe(4);
        telemetry.ledger().record_candidate_set(1, top_key(10.0, 20.0), 1.0, 1e-4, 10);
        telemetry.ledger().record_window_close(1);
        telemetry
    }

    #[test]
    fn full_export_includes_every_section() {
        let json = sample_hub().to_json();
        for key in
            ["\"counters\"", "\"gauges\"", "\"histograms\"", "\"ledger\"", "\"per_user\"", "\"1\""]
        {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"edge.requests\": 12"));
        assert!(json.contains("\"server.wakeups\": 3"));
        assert!(json.contains("\"epsilon_total\": 1.0"));
    }

    #[test]
    fn deterministic_export_drops_scheduling_metrics() {
        let json = sample_hub().deterministic_json();
        assert!(json.contains("edge.requests"));
        assert!(!json.contains("server.wakeups"));
        assert!(!json.contains("server.queue_depth"));
        assert!(!json.contains("server.batch_size"));
        // The budget ledger always ships…
        assert!(json.contains("\"candidate_sets\": 1"));
        // …minus its scheduling-dependent restore/event bookkeeping.
        assert!(!json.contains("\"restores\""));
        assert!(!json.contains("\"events\""));
        assert!(sample_hub().to_json().contains("\"restores\": 0"));
    }

    #[test]
    fn equal_state_renders_byte_identical_json() {
        assert_eq!(sample_hub().to_json(), sample_hub().to_json());
        assert_eq!(sample_hub().deterministic_json(), sample_hub().deterministic_json());
    }
}
