//! Lock-sharded metrics registry with deterministic merge.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are assigned a shard
//! round-robin at creation; every update locks only that shard, so
//! unrelated workers never contend. A [`Registry::snapshot`] locks the
//! shards in shard order and merges them with commutative sums — the
//! merged value is therefore independent of which thread (and which
//! shard) performed each update, which is what makes snapshots
//! thread-count-invariant for workloads whose *totals* are deterministic.
//!
//! Metrics additionally carry a [`Determinism`] class: `Deterministic`
//! metrics are pure functions of seed + workload (request counts, fault
//! injections), `Scheduling` metrics depend on wakeup interleaving (batch
//! sizes, queue transients). Only the former participate in the
//! byte-identical export surface.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of log-scale histogram buckets.
///
/// Bucket 0 counts zero-valued observations; bucket `b >= 1` counts values
/// in `[2^(b-1), 2^b)`, with the final bucket absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Default shard count for [`Registry::default`].
const DEFAULT_SHARDS: usize = 8;

/// Whether a metric's merged total is reproducible across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Determinism {
    /// A pure function of seed and workload: identical totals for any
    /// thread/shard count. Part of the byte-identical export surface.
    Deterministic,
    /// Depends on scheduler interleaving (wakeup batching, queue
    /// transients, restart timing); excluded from determinism checks.
    Scheduling,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug, Clone, Copy)]
struct MetricMeta {
    kind: MetricKind,
    class: Determinism,
    index: usize,
}

#[derive(Debug, Default)]
struct Shard {
    counters: Vec<u64>,
    gauges: Vec<i64>,
    histograms: Vec<[u64; HISTOGRAM_BUCKETS]>,
}

#[derive(Debug, Default)]
struct Directory {
    metrics: BTreeMap<String, MetricMeta>,
    counters: usize,
    gauges: usize,
    histograms: usize,
}

#[derive(Debug)]
struct Inner {
    directory: Mutex<Directory>,
    shards: Vec<Mutex<Shard>>,
    next_shard: AtomicUsize,
}

/// The sharded registry; a cheaply cloneable handle to shared state.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_shards(DEFAULT_SHARDS)
    }
}

impl Registry {
    /// Creates a registry with the default shard count.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates a registry with exactly `shards` accumulator shards
    /// (clamped to at least one).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Registry {
            inner: Arc::new(Inner {
                directory: Mutex::new(Directory::default()),
                shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
                next_shard: AtomicUsize::new(0),
            }),
        }
    }

    /// Number of accumulator shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn register(&self, name: &str, kind: MetricKind, class: Determinism) -> usize {
        let mut dir = self.inner.directory.lock();
        if let Some(meta) = dir.metrics.get(name) {
            assert!(
                meta.kind == kind,
                "metric `{name}` already registered with a different kind"
            );
            return meta.index;
        }
        let index = match kind {
            MetricKind::Counter => {
                dir.counters += 1;
                dir.counters - 1
            }
            MetricKind::Gauge => {
                dir.gauges += 1;
                dir.gauges - 1
            }
            MetricKind::Histogram => {
                dir.histograms += 1;
                dir.histograms - 1
            }
        };
        dir.metrics.insert(name.to_owned(), MetricMeta { kind, class, index });
        index
    }

    fn pick_shard(&self) -> usize {
        self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % self.inner.shards.len()
    }

    /// Registers (or re-opens) a monotonic counter.
    ///
    /// Each returned handle writes to its own shard; handles for the same
    /// name merge into one total at snapshot time. Re-registering an
    /// existing name with a different metric kind panics.
    pub fn counter(&self, name: &str, class: Determinism) -> Counter {
        Counter {
            inner: Arc::clone(&self.inner),
            index: self.register(name, MetricKind::Counter, class),
            shard: self.pick_shard(),
        }
    }

    /// Registers (or re-opens) an additive gauge (a signed up/down
    /// counter; the merged value is the sum of all deltas).
    pub fn gauge(&self, name: &str, class: Determinism) -> Gauge {
        Gauge {
            inner: Arc::clone(&self.inner),
            index: self.register(name, MetricKind::Gauge, class),
            shard: self.pick_shard(),
        }
    }

    /// Registers (or re-opens) a fixed-bucket log-scale histogram.
    pub fn histogram(&self, name: &str, class: Determinism) -> Histogram {
        Histogram {
            inner: Arc::clone(&self.inner),
            index: self.register(name, MetricKind::Histogram, class),
            shard: self.pick_shard(),
        }
    }

    /// Merges every shard (in shard order) into a point-in-time snapshot.
    ///
    /// All merges are commutative sums, so for metrics whose total is
    /// workload-determined the snapshot does not depend on the shard or
    /// thread count that produced it. Entries are sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let dir = self.inner.directory.lock();
        let mut counters = vec![0u64; dir.counters];
        let mut gauges = vec![0i64; dir.gauges];
        let mut histograms = vec![[0u64; HISTOGRAM_BUCKETS]; dir.histograms];
        for shard in &self.inner.shards {
            let shard = shard.lock();
            for (i, v) in shard.counters.iter().enumerate() {
                counters[i] += v;
            }
            for (i, v) in shard.gauges.iter().enumerate() {
                gauges[i] += v;
            }
            for (i, h) in shard.histograms.iter().enumerate() {
                for (b, v) in h.iter().enumerate() {
                    histograms[i][b] += v;
                }
            }
        }
        let mut snap = MetricsSnapshot::default();
        for (name, meta) in &dir.metrics {
            match meta.kind {
                MetricKind::Counter => {
                    snap.counters.push((name.clone(), counters[meta.index], meta.class));
                }
                MetricKind::Gauge => {
                    snap.gauges.push((name.clone(), gauges[meta.index], meta.class));
                }
                MetricKind::Histogram => {
                    let mut cumulative = histograms[meta.index];
                    for b in 1..HISTOGRAM_BUCKETS {
                        cumulative[b] += cumulative[b - 1];
                    }
                    snap.histograms.push((name.clone(), cumulative, meta.class));
                }
            }
        }
        snap
    }
}

/// A merged, point-in-time view of every registered metric, sorted by
/// name. Histograms are exported as *cumulative* bucket counts (bucket `b`
/// holds the number of observations `< 2^b`), so each array is
/// monotonically non-decreasing by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, total, class)` per counter.
    pub counters: Vec<(String, u64, Determinism)>,
    /// `(name, summed deltas, class)` per gauge.
    pub gauges: Vec<(String, i64, Determinism)>,
    /// `(name, cumulative bucket counts, class)` per histogram.
    pub histograms: Vec<(String, [u64; HISTOGRAM_BUCKETS], Determinism)>,
}

impl MetricsSnapshot {
    /// Looks up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _, _)| n == name).map(|&(_, v, _)| v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _, _)| n == name).map(|&(_, v, _)| v)
    }

    /// Looks up a histogram's cumulative buckets by name.
    pub fn histogram(&self, name: &str) -> Option<&[u64; HISTOGRAM_BUCKETS]> {
        self.histograms.iter().find(|(n, _, _)| n == name).map(|(_, h, _)| h)
    }
}

fn grow<T: Default + Clone>(v: &mut Vec<T>, index: usize) {
    if v.len() <= index {
        v.resize(index + 1, T::default());
    }
}

/// A monotonic counter handle bound to one shard.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Arc<Inner>,
    index: usize,
    shard: usize,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        let mut shard = self.inner.shards[self.shard].lock();
        grow(&mut shard.counters, self.index);
        shard.counters[self.index] += n;
    }

    /// The current merged total across all shards.
    pub fn value(&self) -> u64 {
        let mut total = 0;
        for shard in &self.inner.shards {
            total += shard.lock().counters.get(self.index).copied().unwrap_or(0);
        }
        total
    }
}

/// An additive gauge handle bound to one shard.
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Arc<Inner>,
    index: usize,
    shard: usize,
}

impl Gauge {
    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        let mut shard = self.inner.shards[self.shard].lock();
        grow(&mut shard.gauges, self.index);
        shard.gauges[self.index] += delta;
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// The current merged value (sum of all deltas) across all shards.
    pub fn value(&self) -> i64 {
        let mut total = 0;
        for shard in &self.inner.shards {
            total += shard.lock().gauges.get(self.index).copied().unwrap_or(0);
        }
        total
    }
}

/// A log-scale histogram handle bound to one shard.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
    index: usize,
    shard: usize,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let bucket = Histogram::bucket(value);
        let mut shard = self.inner.shards[self.shard].lock();
        grow(&mut shard.histograms, self.index);
        shard.histograms[self.index][bucket] += 1;
    }

    /// The bucket index an observation of `value` lands in.
    pub fn bucket(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_merge_across_handles_and_shards() {
        let registry = Registry::with_shards(4);
        let handles: Vec<Counter> =
            (0..6).map(|_| registry.counter("x", Determinism::Deterministic)).collect();
        for (i, h) in handles.iter().enumerate() {
            h.add(i as u64 + 1);
        }
        assert_eq!(handles[0].value(), 21);
        assert_eq!(registry.snapshot().counter("x"), Some(21));
    }

    #[test]
    fn gauges_sum_signed_deltas() {
        let registry = Registry::new();
        let up = registry.gauge("depth", Determinism::Scheduling);
        let down = registry.gauge("depth", Determinism::Scheduling);
        up.add(10);
        down.sub(3);
        assert_eq!(up.value(), 7);
        assert_eq!(registry.snapshot().gauge("depth"), Some(7));
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_snapshot_is_cumulative_and_monotone() {
        let registry = Registry::new();
        let h = registry.histogram("sizes", Determinism::Scheduling);
        for v in [0, 1, 1, 2, 7, 1024] {
            h.observe(v);
        }
        let snap = registry.snapshot();
        let buckets = snap.histogram("sizes").unwrap();
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 6);
        for b in 1..HISTOGRAM_BUCKETS {
            assert!(buckets[b] >= buckets[b - 1]);
        }
        // 0 → bucket 0; the three 1s and 2 land below 4; 7 below 8.
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[2], 4);
        assert_eq!(buckets[3], 5);
    }

    #[test]
    fn snapshot_is_shard_count_invariant() {
        let totals = |shards: usize| {
            let registry = Registry::with_shards(shards);
            let handles: Vec<Counter> =
                (0..8).map(|_| registry.counter("work", Determinism::Deterministic)).collect();
            thread::scope(|scope| {
                for (i, h) in handles.iter().enumerate() {
                    scope.spawn(move || h.add(100 + i as u64));
                }
            });
            registry.snapshot()
        };
        assert_eq!(totals(1), totals(7));
    }

    #[test]
    fn reopening_a_name_shares_the_metric() {
        let registry = Registry::new();
        registry.counter("n", Determinism::Deterministic).inc();
        registry.counter("n", Determinism::Deterministic).inc();
        assert_eq!(registry.snapshot().counter("n"), Some(2));
        assert_eq!(registry.snapshot().counters.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("m", Determinism::Deterministic);
        registry.gauge("m", Determinism::Deterministic);
    }
}
