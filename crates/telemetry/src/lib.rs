//! Deterministic observability for the Edge-PrivLocAd workspace.
//!
//! Production visibility into an edge fleet normally leans on wall clocks
//! and free-running atomics — both banned here, because the workspace's
//! core contract is bit-for-bit reproducibility across thread counts. This
//! crate provides the three observability primitives the serving stack
//! needs, each designed around that contract:
//!
//! * [`Registry`] — a lock-sharded metrics registry (monotonic counters,
//!   additive gauges, fixed-bucket log-scale histograms). Updates land in
//!   per-handle shards; snapshots merge the shards in shard order, and
//!   every merge is a commutative sum, so a snapshot is invariant to how
//!   work was spread over threads.
//! * [`Tracer`] — logical-clock span tracing. Spans are stamped with a
//!   per-device monotonic event sequence number (never wall clock) and
//!   ring-buffered per worker. With the `trace` feature off the whole API
//!   compiles to zero-cost no-ops; the optional `wallclock` feature adds
//!   real tick timings for interactive profiling and is banned from
//!   test/CI builds.
//! * [`Ledger`] — an append-only per-user record of every privacy-budget
//!   spend (candidate-set draws, window closes, checkpoint restores) with
//!   composed running totals and a double-spend audit that cross-checks
//!   the recovery layer's `candidate_redraws == 0` invariant.
//!
//! [`Telemetry`] bundles a registry and a ledger into the hub the serving
//! stack threads through its layers; [`TelemetrySink`] + [`JsonSink`]
//! export it. Two export shapes exist: [`Telemetry::to_json`] (everything,
//! including scheduling-dependent metrics) and
//! [`Telemetry::deterministic_json`] (only [`Determinism::Deterministic`]
//! metrics plus the ledger — the byte-identical-across-thread-counts
//! surface that determinism tests pin).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod ledger;
mod registry;
mod trace;

pub use ledger::{
    top_key, Ledger, LedgerError, LedgerTotals, SpendEvent, SpendKind, TopKey, UserTotals,
};
pub use registry::{
    Counter, Determinism, Gauge, Histogram, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS,
};
pub use trace::{Span, SpanRecord, Tracer};

/// The observability hub threaded through the serving stack: one metrics
/// registry plus one privacy-budget ledger, both cheaply cloneable handles
/// to shared state.
///
/// # Examples
///
/// ```
/// use privlocad_telemetry::{Determinism, Telemetry};
///
/// let telemetry = Telemetry::new();
/// let served = telemetry
///     .registry()
///     .counter("server.requests", Determinism::Deterministic);
/// served.add(3);
/// assert_eq!(served.value(), 3);
/// assert!(telemetry.to_json().contains("server.requests"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Registry,
    ledger: Ledger,
}

impl Telemetry {
    /// Creates a fresh hub with an empty registry and ledger.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The privacy-budget ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Full JSON export: every metric (both determinism classes) plus the
    /// ledger section. Keys are sorted, so the rendering itself is
    /// deterministic, but [`Determinism::Scheduling`] values may differ
    /// between runs with different thread interleavings.
    pub fn to_json(&self) -> String {
        export::render(self, false)
    }

    /// Determinism-restricted JSON export: only
    /// [`Determinism::Deterministic`] metrics plus the ledger. For a fixed
    /// seed and workload this string is byte-identical regardless of
    /// thread or shard count — the surface the determinism tests pin.
    pub fn deterministic_json(&self) -> String {
        export::render(self, true)
    }
}

/// A destination for telemetry exports.
pub trait TelemetrySink {
    /// Renders the hub's current state.
    fn export(&self, telemetry: &Telemetry) -> String;
}

/// The built-in JSON sink.
///
/// `deterministic_only` selects between [`Telemetry::deterministic_json`]
/// and the full [`Telemetry::to_json`] export.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSink {
    /// Restrict the export to the thread-count-invariant surface.
    pub deterministic_only: bool,
}

impl TelemetrySink for JsonSink {
    fn export(&self, telemetry: &Telemetry) -> String {
        if self.deterministic_only {
            telemetry.deterministic_json()
        } else {
            telemetry.to_json()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_selects_the_export_surface() {
        let telemetry = Telemetry::new();
        telemetry
            .registry()
            .counter("a.deterministic", Determinism::Deterministic)
            .inc();
        telemetry
            .registry()
            .counter("a.scheduling", Determinism::Scheduling)
            .inc();
        let full = JsonSink { deterministic_only: false }.export(&telemetry);
        let det = JsonSink { deterministic_only: true }.export(&telemetry);
        assert!(full.contains("a.scheduling"));
        assert!(!det.contains("a.scheduling"));
        assert!(det.contains("a.deterministic"));
    }
}
