//! The privacy-budget ledger.
//!
//! The paper's longitudinal guarantee (Theorem 2) rests on spending the
//! `(r, ε, δ, n)` budget of the n-fold Gaussian mechanism *exactly once*
//! per permanent candidate set: the set is drawn when a top location first
//! enters a user's profile and then replayed forever, and posterior output
//! selection is free post-processing. The ledger turns that invariant into
//! an auditable record: every spend (candidate-set draw, window close,
//! checkpoint restore) is appended as a [`SpendEvent`], running per-user
//! totals are composed with basic composition (k draws at `(ε, δ)` cost
//! `(kε, kδ)`), and [`Ledger::assert_no_double_spend`] cross-checks the
//! recovery layer's `candidate_redraws == 0` invariant from the other
//! side: a candidate set that exists on a device but was never (or more
//! than once) paid for in the ledger is an audit failure.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// A total-order key for a top location: the IEEE-754 bit patterns of its
/// coordinates. Exact candidate-set identity (not proximity) is what the
/// ledger tracks, so bit equality is the right notion here.
pub type TopKey = (u64, u64);

/// Builds a [`TopKey`] from a top location's coordinates.
pub fn top_key(x: f64, y: f64) -> TopKey {
    (x.to_bits(), y.to_bits())
}

fn key_point(key: TopKey) -> (f64, f64) {
    (f64::from_bits(key.0), f64::from_bits(key.1))
}

/// What a ledger entry paid for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpendKind {
    /// A fresh permanent candidate set was drawn for `top`, spending one
    /// `(ε, δ)` unit of the n-fold Gaussian budget for `n` released
    /// points.
    CandidateSet {
        /// The top location the set protects.
        top: TopKey,
        /// Per-set privacy level ε.
        epsilon: f64,
        /// Per-set failure probability δ.
        delta: f64,
        /// Number of simultaneously released points.
        n: u32,
    },
    /// A profile window closed (free unless it drew fresh sets, which are
    /// recorded separately).
    WindowClose,
    /// Device state was rebuilt from a checkpoint (must never re-spend).
    Restore,
}

/// One append-only ledger entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpendEvent {
    /// The user whose budget the event touches.
    pub user: u64,
    /// What was spent.
    pub kind: SpendKind,
}

/// Composed running totals for one user.
#[derive(Debug, Clone, Copy, Default)]
pub struct UserTotals {
    /// Summed ε across candidate-set draws (basic composition).
    pub epsilon: f64,
    /// Summed δ across candidate-set draws (basic composition).
    pub delta: f64,
    /// Number of candidate sets paid for.
    pub candidate_sets: u64,
    /// Number of window-close events.
    pub window_closes: u64,
    /// Number of checkpoint restores observed.
    pub restores: u64,
}

/// Ledger-wide aggregate totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct LedgerTotals {
    /// Users with at least one event.
    pub users: u64,
    /// Total events appended.
    pub events: u64,
    /// Summed ε across all users.
    pub epsilon: f64,
    /// Summed δ across all users.
    pub delta: f64,
    /// Total candidate sets paid for.
    pub candidate_sets: u64,
    /// Total window-close events.
    pub window_closes: u64,
    /// Total restore events.
    pub restores: u64,
}

/// Audit failures from [`Ledger::assert_no_double_spend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LedgerError {
    /// The same `(user, top)` candidate set was paid for more than once —
    /// the budget theorem no longer covers the release.
    DoubleSpend {
        /// Offending user.
        user: u64,
        /// Offending top location.
        top: TopKey,
        /// How many times the set was paid for.
        count: u64,
    },
    /// A candidate set live on a device has no ledger entry — state was
    /// forged, restored from outside the ledger's view, or instrumentation
    /// missed a draw.
    Unrecorded {
        /// Offending user.
        user: u64,
        /// Offending top location.
        top: TopKey,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LedgerError::DoubleSpend { user, top, count } => {
                let (x, y) = key_point(top);
                write!(
                    f,
                    "privacy budget double-spend: user {user} paid {count} times for the candidate set at ({x}, {y})"
                )
            }
            LedgerError::Unrecorded { user, top } => {
                let (x, y) = key_point(top);
                write!(
                    f,
                    "unrecorded candidate set: user {user} holds a set at ({x}, {y}) with no ledger entry"
                )
            }
        }
    }
}

impl std::error::Error for LedgerError {}

#[derive(Debug, Default)]
struct LedgerInner {
    events: Vec<SpendEvent>,
    spends: BTreeMap<(u64, TopKey), u64>,
    totals: BTreeMap<u64, UserTotals>,
}

/// The append-only privacy-budget ledger; a cheaply cloneable handle to
/// shared state.
///
/// # Examples
///
/// ```
/// use privlocad_telemetry::{top_key, Ledger};
///
/// let ledger = Ledger::new();
/// ledger.record_candidate_set(7, top_key(100.0, 200.0), 1.0, 1e-4, 10);
/// ledger.record_window_close(7);
/// let totals = ledger.totals();
/// assert_eq!(totals.candidate_sets, 1);
/// assert!(ledger.assert_no_double_spend([(7, top_key(100.0, 200.0))]).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    inner: Arc<Mutex<LedgerInner>>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Appends one event and folds it into the running totals.
    pub fn record(&self, event: SpendEvent) {
        let mut inner = self.inner.lock();
        let totals = inner.totals.entry(event.user).or_default();
        match event.kind {
            SpendKind::CandidateSet { top, epsilon, delta, .. } => {
                totals.epsilon += epsilon;
                totals.delta += delta;
                totals.candidate_sets += 1;
                *inner.spends.entry((event.user, top)).or_insert(0) += 1;
            }
            SpendKind::WindowClose => totals.window_closes += 1,
            SpendKind::Restore => totals.restores += 1,
        }
        inner.events.push(event);
    }

    /// Records a fresh candidate-set draw.
    pub fn record_candidate_set(&self, user: u64, top: TopKey, epsilon: f64, delta: f64, n: u32) {
        self.record(SpendEvent { user, kind: SpendKind::CandidateSet { top, epsilon, delta, n } });
    }

    /// Records a window close.
    pub fn record_window_close(&self, user: u64) {
        self.record(SpendEvent { user, kind: SpendKind::WindowClose });
    }

    /// Records a checkpoint restore.
    pub fn record_restore(&self, user: u64) {
        self.record(SpendEvent { user, kind: SpendKind::Restore });
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the append-only event log, in append order.
    pub fn events(&self) -> Vec<SpendEvent> {
        self.inner.lock().events.clone()
    }

    /// Composed per-user totals, sorted by user id.
    pub fn user_totals(&self) -> Vec<(u64, UserTotals)> {
        self.inner.lock().totals.iter().map(|(&u, &t)| (u, t)).collect()
    }

    /// Ledger-wide aggregate totals.
    pub fn totals(&self) -> LedgerTotals {
        let inner = self.inner.lock();
        let mut out = LedgerTotals { events: inner.events.len() as u64, ..LedgerTotals::default() };
        for totals in inner.totals.values() {
            out.users += 1;
            out.epsilon += totals.epsilon;
            out.delta += totals.delta;
            out.candidate_sets += totals.candidate_sets;
            out.window_closes += totals.window_closes;
            out.restores += totals.restores;
        }
        out
    }

    /// Audits the exactly-once spend invariant against the candidate sets
    /// actually live on devices (`live` is every `(user, top)` with a
    /// released permanent set, e.g. decoded from final checkpoints).
    ///
    /// # Errors
    ///
    /// [`LedgerError::DoubleSpend`] if any `(user, top)` set was paid for
    /// more than once; [`LedgerError::Unrecorded`] if a live set has no
    /// ledger entry at all. The first failure in `(user, top)` order wins.
    pub fn assert_no_double_spend(
        &self,
        live: impl IntoIterator<Item = (u64, TopKey)>,
    ) -> Result<(), LedgerError> {
        let inner = self.inner.lock();
        for (&(user, top), &count) in &inner.spends {
            if count > 1 {
                return Err(LedgerError::DoubleSpend { user, top, count });
            }
        }
        let mut missing: Vec<(u64, TopKey)> = live
            .into_iter()
            .filter(|&(user, top)| !inner.spends.contains_key(&(user, top)))
            .collect();
        missing.sort_unstable();
        match missing.first() {
            Some(&(user, top)) => Err(LedgerError::Unrecorded { user, top }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_totals_are_k_fold() {
        // k draws at (ε, δ) compose to (kε, kδ) under basic composition.
        let ledger = Ledger::new();
        let (eps, delta, k) = (0.4, 1e-3, 7u64);
        for i in 0..k {
            ledger.record_candidate_set(3, top_key(i as f64, 0.0), eps, delta, 10);
        }
        let totals = ledger.totals();
        assert_eq!(totals.candidate_sets, k);
        assert!((totals.epsilon - eps * k as f64).abs() < 1e-12);
        assert!((totals.delta - delta * k as f64).abs() < 1e-15);
        assert_eq!(totals.users, 1);
    }

    #[test]
    fn per_user_totals_stay_separate() {
        let ledger = Ledger::new();
        ledger.record_candidate_set(1, top_key(0.0, 0.0), 1.0, 1e-4, 10);
        ledger.record_candidate_set(2, top_key(0.0, 0.0), 2.0, 2e-4, 10);
        ledger.record_window_close(1);
        ledger.record_restore(2);
        let users = ledger.user_totals();
        assert_eq!(users.len(), 2);
        assert!((users[0].1.epsilon - 1.0).abs() < 1e-12);
        assert_eq!(users[0].1.window_closes, 1);
        assert_eq!(users[0].1.restores, 0);
        assert!((users[1].1.epsilon - 2.0).abs() < 1e-12);
        assert_eq!(users[1].1.restores, 1);
    }

    #[test]
    fn audit_accepts_exactly_once_spends() {
        let ledger = Ledger::new();
        let tops = [top_key(1.0, 2.0), top_key(3.0, 4.0)];
        for &top in &tops {
            ledger.record_candidate_set(9, top, 1.0, 1e-4, 10);
        }
        ledger.record_restore(9);
        let live: Vec<_> = tops.iter().map(|&t| (9, t)).collect();
        assert!(ledger.assert_no_double_spend(live).is_ok());
    }

    #[test]
    fn audit_trips_on_a_double_spend() {
        let ledger = Ledger::new();
        let top = top_key(5.0, 5.0);
        ledger.record_candidate_set(4, top, 1.0, 1e-4, 10);
        ledger.record_candidate_set(4, top, 1.0, 1e-4, 10);
        assert_eq!(
            ledger.assert_no_double_spend([(4, top)]),
            Err(LedgerError::DoubleSpend { user: 4, top, count: 2 })
        );
    }

    #[test]
    fn audit_trips_on_a_forged_live_set() {
        // A candidate set present on a device but absent from the ledger
        // is exactly what a forged or out-of-band-restored snapshot looks
        // like.
        let ledger = Ledger::new();
        ledger.record_candidate_set(4, top_key(5.0, 5.0), 1.0, 1e-4, 10);
        let forged = top_key(99.0, 99.0);
        assert_eq!(
            ledger.assert_no_double_spend([(4, top_key(5.0, 5.0)), (4, forged)]),
            Err(LedgerError::Unrecorded { user: 4, top: forged })
        );
    }

    #[test]
    fn event_log_preserves_append_order() {
        let ledger = Ledger::new();
        ledger.record_window_close(2);
        ledger.record_candidate_set(1, top_key(0.0, 0.0), 1.0, 1e-4, 10);
        let events = ledger.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].user, 2);
        assert!(matches!(events[1].kind, SpendKind::CandidateSet { .. }));
    }
}
