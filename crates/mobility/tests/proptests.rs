//! Property-based tests for the synthetic population generator.

use privlocad_geo::LocalProjection;
use privlocad_mobility::{shanghai, PopulationConfig, DAYS_IN_STUDY};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_user_is_well_formed(seed in 0u64..500, index in 0u32..20) {
        let config = PopulationConfig::builder().num_users(20).seed(seed).build();
        let u = config.generate_user(index);
        // Count bounds.
        prop_assert!((20..=11_435).contains(&u.checkins.len()));
        // Ranked, normalized ground truth.
        prop_assert!((2..=6).contains(&u.truth.top_locations.len()));
        prop_assert_eq!(u.truth.top_locations.len(), u.truth.shares.len());
        let total: f64 = u.truth.shares.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for w in u.truth.shares.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        // Time-sorted, in-window check-ins inside the study area.
        let proj: LocalProjection = shanghai::projection();
        let bbox = shanghai::bounding_box();
        for w in u.checkins.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for c in &u.checkins {
            prop_assert!((0..DAYS_IN_STUDY).contains(&c.time.day()));
            let geo = proj.to_geo(c.location).expect("check-in re-projects");
            prop_assert!(bbox.contains(geo), "check-in escaped the study area: {geo}");
        }
    }

    #[test]
    fn top_locations_pairwise_distinct(seed in 0u64..200) {
        let config = PopulationConfig::builder().num_users(4).seed(seed).build();
        let u = config.generate_user(0);
        let tops = &u.truth.top_locations;
        for i in 0..tops.len() {
            for j in (i + 1)..tops.len() {
                prop_assert!(
                    tops[i].distance(tops[j]) >= 2_000.0 - 1e-6,
                    "tops {i} and {j} are {} m apart",
                    tops[i].distance(tops[j])
                );
            }
        }
    }

    #[test]
    fn custom_checkin_range_respected(
        seed in 0u64..100,
        min in 20usize..60,
        extra in 1usize..200,
    ) {
        let config = PopulationConfig::builder()
            .num_users(3)
            .seed(seed)
            .checkin_range(min, min + extra)
            .build();
        let u = config.generate_user(1);
        prop_assert!((min..=min + extra).contains(&u.checkins.len()));
    }
}
