//! Synthetic location-based-advertising mobility dataset.
//!
//! The paper evaluates on a proprietary RTB transaction log: 37,262 mobile
//! users in Shanghai (lat ∈ [30.7, 31.4], lon ∈ [121, 122]) observed from
//! June 1 2019 to May 31 2021, with 20 to 11,435 spatiotemporal points per
//! user. That log is not available, so this crate generates a population
//! with the same statistical structure the attack exploits:
//!
//! - every user has a small set of **top locations** (home, workplace, …)
//!   that dominate their check-ins, plus a tail of **nomadic** one-off
//!   locations;
//! - per-user check-in counts follow a clipped log-normal spanning the
//!   paper's range;
//! - heavier users are *more* routine-bound, reproducing Fig. 3's negative
//!   correlation between check-in count and location entropy and its
//!   "88.8 % of users below entropy 2" statistic;
//! - raw check-ins carry small GPS jitter around the true place, so the
//!   50 m connectivity profiling of Section III-B behaves as in the paper;
//! - timestamps follow a diurnal home/work pattern across the 2-year span.
//!
//! # Examples
//!
//! ```
//! use privlocad_mobility::{PopulationConfig, UserId};
//!
//! let config = PopulationConfig::builder().num_users(10).seed(7).build();
//! let user = config.generate_user(3);
//! assert_eq!(user.user, UserId::new(3));
//! assert!(user.checkins.len() >= 20);
//! assert!(!user.truth.top_locations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod io;
pub mod shanghai;
mod temporal;
mod trace;

pub use generator::{
    Dataset, GroundTruth, PopulationConfig, PopulationConfigBuilder, Relocation, UserTrace,
};
pub use temporal::{Timestamp, DAYS_IN_STUDY, SECONDS_PER_DAY};
pub use trace::{CheckIn, UserId};
