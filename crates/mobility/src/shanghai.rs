//! Constants describing the paper's study area.

use privlocad_geo::{BoundingBox, GeoPoint, LocalProjection};

/// The Shanghai study bounding box of Section VII-A:
/// latitude ∈ [30.7, 31.4], longitude ∈ [121, 122].
pub fn bounding_box() -> BoundingBox {
    BoundingBox::new(30.7, 31.4, 121.0, 122.0).expect("constants are valid")
}

/// The default local projection anchored at the study-area center.
pub fn projection() -> LocalProjection {
    LocalProjection::new(center())
}

/// The center of the study area.
pub fn center() -> GeoPoint {
    bounding_box().center()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_matches_paper() {
        let bb = bounding_box();
        assert_eq!(bb.min_lat(), 30.7);
        assert_eq!(bb.max_lat(), 31.4);
        assert_eq!(bb.min_lon(), 121.0);
        assert_eq!(bb.max_lon(), 122.0);
    }

    #[test]
    fn projection_is_centered() {
        let p = projection();
        assert!(p.to_local(center()).norm() < 1e-9);
    }

    #[test]
    fn study_area_is_metropolitan_scale() {
        let p = projection();
        let sw = p.to_local(GeoPoint::new(30.7, 121.0).unwrap());
        let ne = p.to_local(GeoPoint::new(31.4, 122.0).unwrap());
        let diag_km = sw.distance(ne) / 1_000.0;
        assert!((120.0..130.0).contains(&diag_km), "diagonal {diag_km} km");
    }
}
