use privlocad_geo::Point;
use serde::{Deserialize, Serialize};

use crate::Timestamp;

/// A synthetic user's identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id.
    #[inline]
    pub const fn new(id: u32) -> Self {
        UserId(id)
    }

    /// The raw numeric id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user-{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(id: u32) -> Self {
        UserId(id)
    }
}

/// One raw spatiotemporal data point — what the paper calls a *check-in*.
///
/// The location is the user's **true** position (with GPS jitter); the
/// obfuscated version observed by the ad network is produced downstream by
/// an LPPM or by the Edge-PrivLocAd pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckIn {
    /// The user who triggered the check-in.
    pub user: UserId,
    /// When the check-in happened.
    pub time: Timestamp,
    /// True planar location (meters in the study projection).
    pub location: Point,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_round_trip() {
        let id = UserId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(UserId::from(42u32), id);
        assert_eq!(id.to_string(), "user-42");
    }

    #[test]
    fn user_ids_order() {
        assert!(UserId::new(1) < UserId::new(2));
    }

    #[test]
    fn checkin_is_copy_and_comparable() {
        let c = CheckIn {
            user: UserId::new(1),
            time: Timestamp::new(100),
            location: Point::new(1.0, 2.0),
        };
        let d = c;
        assert_eq!(c, d);
    }
}
