//! Dataset import/export in a simple CSV format.
//!
//! The synthetic generator stands in for the paper's proprietary RTB log,
//! but a downstream user with *real* check-in data should be able to run
//! the attack and the system on it. The format is one check-in per line:
//!
//! ```csv
//! user,seconds,x,y
//! 0,3600,12.5,-340.0
//! ```
//!
//! `seconds` counts from the study epoch; `x`/`y` are planar meters in the
//! study projection. Ground truth is generator-only and is not part of the
//! interchange format.

use std::io::{self, BufRead, Write};

use privlocad_geo::Point;

use crate::{CheckIn, Timestamp, UserId};

/// A trace without generator ground truth — what an imported dataset
/// provides.
#[derive(Debug, Clone, PartialEq)]
pub struct RawTrace {
    /// The user.
    pub user: UserId,
    /// Check-ins in timestamp order.
    pub checkins: Vec<CheckIn>,
}

/// Error importing a CSV dataset.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and description).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes check-ins as CSV (with header).
///
/// Accepts a `&mut` writer per the usual `W: Write` convention.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_checkins<'a, W, I>(writer: W, checkins: I) -> io::Result<()>
where
    W: Write,
    I: IntoIterator<Item = &'a CheckIn>,
{
    let mut w = writer;
    writeln!(w, "user,seconds,x,y")?;
    for c in checkins {
        writeln!(
            w,
            "{},{},{},{}",
            c.user.raw(),
            c.time.seconds(),
            c.location.x,
            c.location.y
        )?;
    }
    Ok(())
}

/// Reads check-ins from CSV (header required), grouping them into
/// per-user time-sorted traces ordered by user id.
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failure or any malformed line.
pub fn read_traces<R: BufRead>(reader: R) -> Result<Vec<RawTrace>, CsvError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::Parse { line: 1, message: "missing header".into() })??;
    if header.trim() != "user,seconds,x,y" {
        return Err(CsvError::Parse {
            line: 1,
            message: format!("unexpected header {header:?}"),
        });
    }
    let mut by_user: std::collections::BTreeMap<u32, Vec<CheckIn>> =
        std::collections::BTreeMap::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |name: &str| {
            fields.next().ok_or_else(|| CsvError::Parse {
                line: line_no,
                message: format!("missing field {name}"),
            })
        };
        let user: u32 = next("user")?.trim().parse().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad user id: {e}"),
        })?;
        let seconds: i64 = next("seconds")?.trim().parse().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad timestamp: {e}"),
        })?;
        if seconds < 0 {
            return Err(CsvError::Parse {
                line: line_no,
                message: "timestamp precedes the study epoch".into(),
            });
        }
        let x: f64 = next("x")?.trim().parse().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad x: {e}"),
        })?;
        let y: f64 = next("y")?.trim().parse().map_err(|e| CsvError::Parse {
            line: line_no,
            message: format!("bad y: {e}"),
        })?;
        if !x.is_finite() || !y.is_finite() {
            return Err(CsvError::Parse {
                line: line_no,
                message: "coordinates must be finite".into(),
            });
        }
        by_user.entry(user).or_default().push(CheckIn {
            user: UserId::new(user),
            time: Timestamp::new(seconds),
            location: Point::new(x, y),
        });
    }
    Ok(by_user
        .into_iter()
        .map(|(user, mut checkins)| {
            checkins.sort_by_key(|c| c.time);
            RawTrace { user: UserId::new(user), checkins }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PopulationConfig;

    #[test]
    fn round_trip_preserves_traces() {
        let config = PopulationConfig::builder()
            .num_users(3)
            .seed(4)
            .checkin_range(20, 60)
            .build();
        let users: Vec<_> = (0..3u32).map(|i| config.generate_user(i)).collect();
        let all: Vec<CheckIn> = users.iter().flat_map(|u| u.checkins.iter().copied()).collect();

        let mut buf = Vec::new();
        write_checkins(&mut buf, all.iter()).unwrap();
        let traces = read_traces(buf.as_slice()).unwrap();

        assert_eq!(traces.len(), 3);
        for (trace, user) in traces.iter().zip(&users) {
            assert_eq!(trace.user, user.user);
            assert_eq!(trace.checkins.len(), user.checkins.len());
            for (a, b) in trace.checkins.iter().zip(&user.checkins) {
                assert_eq!(a.user, b.user);
                assert_eq!(a.time, b.time);
                assert!(a.location.distance(b.location) < 1e-9);
            }
        }
    }

    #[test]
    fn header_is_required() {
        let err = read_traces("1,2,3,4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unexpected header"));
        let err = read_traces("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing header"));
    }

    #[test]
    fn malformed_lines_are_located() {
        let data = "user,seconds,x,y\n0,100,1.0,2.0\nbroken\n";
        let err = read_traces(data.as_bytes()).unwrap_err();
        assert!(err.to_string().starts_with("line 3"), "{err}");
    }

    #[test]
    fn rejects_invalid_values() {
        for bad in [
            "user,seconds,x,y\n0,-5,1.0,2.0\n",
            "user,seconds,x,y\n0,5,NaN,2.0\n",
            "user,seconds,x,y\n0,5,1.0\n",
            "user,seconds,x,y\nx,5,1.0,2.0\n",
        ] {
            assert!(read_traces(bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_lines_are_skipped_and_output_sorted() {
        let data = "user,seconds,x,y\n1,200,0.0,0.0\n\n0,100,5.0,5.0\n1,100,1.0,1.0\n";
        let traces = read_traces(data.as_bytes()).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].user, UserId::new(0));
        assert_eq!(traces[1].user, UserId::new(1));
        // Within-user sort by time.
        assert_eq!(traces[1].checkins[0].time.seconds(), 100);
        assert_eq!(traces[1].checkins[1].time.seconds(), 200);
    }

    #[test]
    fn imported_traces_feed_the_attack() {
        // The interop story: CSV in → profile out.
        let config = PopulationConfig::builder()
            .num_users(1)
            .seed(6)
            .checkin_range(100, 200)
            .build();
        let user = config.generate_user(0);
        let mut buf = Vec::new();
        write_checkins(&mut buf, user.checkins.iter()).unwrap();
        let traces = read_traces(buf.as_slice()).unwrap();
        let pts: Vec<Point> = traces[0].checkins.iter().map(|c| c.location).collect();
        let profile = privlocad_attack::LocationProfile::from_checkins(&pts, 50.0);
        assert!(profile
            .top(0)
            .unwrap()
            .location
            .distance(user.truth.top_locations[0])
            < 30.0);
    }
}
