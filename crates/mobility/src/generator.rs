use privlocad_geo::rng::{derive_seed, gaussian_2d, normal, seeded, uniform_angle};
use privlocad_geo::{BoundingBox, Point};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::shanghai;
use crate::{CheckIn, Timestamp, UserId, DAYS_IN_STUDY};

/// A mid-study home move (enabled via
/// [`PopulationConfigBuilder::relocation_probability`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Relocation {
    /// First study day at the new home.
    pub day: i64,
    /// The home location before the move (also `top_locations[0]`).
    pub old_home: Point,
    /// The home location from `day` onward.
    pub new_home: Point,
}

/// Ground truth about one synthetic user, used to score attacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The user's top locations, rank order (index 0 = top-1 = home).
    pub top_locations: Vec<Point>,
    /// The check-in share of each top location (same order); the remainder
    /// of the probability mass goes to nomadic one-off locations.
    pub shares: Vec<f64>,
    /// A mid-study home move, when the population is configured with a
    /// non-zero relocation probability. The paper's location-management
    /// module recomputes the η-frequent set every window precisely because
    /// "users will possibly (although not frequently) change their top
    /// locations in real life".
    pub relocation: Option<Relocation>,
}

/// One synthetic user's full 2-year trace plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserTrace {
    /// The user's identifier (equal to the generation index).
    pub user: UserId,
    /// Check-ins sorted by timestamp.
    pub checkins: Vec<CheckIn>,
    /// The generating ground truth.
    pub truth: GroundTruth,
}

impl UserTrace {
    /// The raw check-in locations, in timestamp order.
    pub fn locations(&self) -> Vec<Point> {
        self.checkins.iter().map(|c| c.location).collect()
    }
}

/// Configuration of the synthetic population generator.
///
/// Defaults reproduce the dataset statistics of Section VII-A; see the
/// crate docs for the calibration targets. Construct via
/// [`PopulationConfig::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    num_users: usize,
    seed: u64,
    min_checkins: usize,
    max_checkins: usize,
    log_mean: f64,
    log_sigma: f64,
    gps_sigma_m: f64,
    diverse_fraction: f64,
    relocation_probability: f64,
    hotspots: usize,
    hotspot_sigma_m: f64,
    bbox: BoundingBox,
}

impl PopulationConfig {
    /// Starts building a configuration from the paper-calibrated defaults.
    pub fn builder() -> PopulationConfigBuilder {
        PopulationConfigBuilder::default()
    }

    /// The full paper-scale population: 37,262 users.
    ///
    /// Generating every trace of this population yields tens of millions of
    /// check-ins; prefer [`PopulationConfig::generate_user`] streaming over
    /// materializing the whole [`Dataset`] at this scale.
    pub fn paper_scale(seed: u64) -> Self {
        Self::builder().num_users(37_262).seed(seed).build()
    }

    /// Number of users in the population.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The study-area bounding box.
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// Generates the trace of user `index` deterministically: the same
    /// `(seed, index)` pair always yields the identical trace, independent
    /// of the order users are generated in.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ num_users`.
    pub fn generate_user(&self, index: u32) -> UserTrace {
        assert!(
            (index as usize) < self.num_users,
            "user index {index} out of range (population of {})",
            self.num_users
        );
        let mut rng = seeded(derive_seed(self.seed, index as u64));
        let proj = shanghai::projection();
        let inner = self.bbox.shrink(0.03).expect("default margins fit the study box");

        // 1. Check-in volume: clipped log-normal over the paper's range.
        let count = normal(&mut rng, self.log_mean, self.log_sigma)
            .exp()
            .round()
            .clamp(self.min_checkins as f64, self.max_checkins as f64) as usize;

        // 2. Routineness grows with volume (Fig. 3's negative entropy
        //    correlation): heavy users concentrate on their top locations.
        //    A minority of "diverse" users (couriers, field workers, …)
        //    spread activity over many places — they form the paper's
        //    11.2 % tail above entropy 2.
        let t = ((count as f64).ln() - (self.min_checkins as f64).ln())
            / ((self.max_checkins as f64).ln() - (self.min_checkins as f64).ln());
        let diverse = rng.gen::<f64>() < self.diverse_fraction;
        let (nomadic_share, num_tops, decay, top1_base) = if diverse {
            (
                (0.22 + 0.13 * rng.gen::<f64>()).min(0.35),
                rng.gen_range(4..=6usize),
                0.8f64,
                0.28 + 0.10 * rng.gen::<f64>(),
            )
        } else {
            (
                (0.16 * (1.0 - t) + 0.03).clamp(0.02, 0.20),
                rng.gen_range(2..=6usize),
                0.45f64,
                0.40 + 0.38 * t + normal(&mut rng, 0.0, 0.07),
            )
        };
        // Top-1 must dominate every other top location. The runner-up
        // receives rest/weight_sum of the non-nomadic mass, so requiring
        // top1 ≥ (1 − nomadic)/(1 + weight_sum) keeps the ranks ordered
        // for any decay profile.
        let weight_sum: f64 = (0..num_tops - 1).map(|i| decay.powi(i as i32)).sum();
        let top1_floor = (1.0 - nomadic_share) / (1.0 + weight_sum) + 1e-9;
        let top1_share = top1_base.clamp(top1_floor, 0.92).min(1.0 - nomadic_share);
        // Homes either spread uniformly over the study area or cluster
        // around urban hotspots (population density is far from uniform in
        // a real city; hotspot centers are derived deterministically from
        // the population seed so all users share them).
        let home = if self.hotspots == 0 {
            proj.to_local(inner.sample_uniform(&mut rng))
        } else {
            let mut hotspot_rng = seeded(derive_seed(self.seed, u64::MAX));
            let centers: Vec<Point> = (0..self.hotspots)
                .map(|_| proj.to_local(inner.sample_uniform(&mut hotspot_rng)))
                .collect();
            loop {
                let center = centers[rng.gen_range(0..centers.len())];
                let candidate = center + gaussian_2d(&mut rng, self.hotspot_sigma_m);
                if proj.to_geo(candidate).map(|g| inner.contains(g)).unwrap_or(false) {
                    break candidate;
                }
            }
        };
        let mut tops = vec![home];
        while tops.len() < num_tops {
            let dist = rng.gen_range(2_000.0..15_000.0);
            let candidate = home.offset_polar(dist, uniform_angle(&mut rng));
            let separated = tops.iter().all(|t| t.distance(candidate) >= 2_000.0);
            match proj.to_geo(candidate) {
                Ok(g) if inner.contains(g) && separated => tops.push(candidate),
                _ => continue,
            }
        }

        // 4. Shares: top-1 fixed, the rest geometric decay over ranks 2..M.
        let rest = 1.0 - top1_share - nomadic_share;
        let mut shares = vec![top1_share];
        shares.extend((0..num_tops - 1).map(|i| rest * decay.powi(i as i32) / weight_sum));

        // 5. Integer counts per top location (largest-remainder rounding).
        let counts: Vec<usize> = shares.iter().map(|s| (s * count as f64) as usize).collect();
        let assigned: usize = counts.iter().sum();
        let nomadic_count = count - assigned;

        // 6. Nomadic one-off locations: 1–3 visits each, within 20 km of home.
        let mut checkins: Vec<CheckIn> = Vec::with_capacity(count);
        let user = UserId::new(index);
        let mut remaining = nomadic_count;
        while remaining > 0 {
            let visits = rng.gen_range(1..=3usize).min(remaining);
            let spot = loop {
                let d = rng.gen_range(500.0..20_000.0);
                let p = home.offset_polar(d, uniform_angle(&mut rng));
                if proj.to_geo(p).map(|g| inner.contains(g)).unwrap_or(false) {
                    break p;
                }
            };
            for _ in 0..visits {
                checkins.push(self.checkin_at(user, spot, LocationKind::Nomadic, &mut rng));
            }
            remaining -= visits;
        }

        // 7. Top-location check-ins with diurnal structure and GPS jitter.
        for (rank, (&top, &n)) in tops.iter().zip(counts.iter()).enumerate() {
            let kind = match rank {
                0 => LocationKind::Home,
                1 => LocationKind::Work,
                _ => LocationKind::OtherTop,
            };
            for _ in 0..n {
                checkins.push(self.checkin_at(user, top, kind, &mut rng));
            }
        }

        checkins.sort_by_key(|c| c.time);

        // 8. Optional mid-study relocation: home check-ins after the move
        //    day shift to a fresh home location.
        let mut relocation = None;
        if rng.gen::<f64>() < self.relocation_probability {
            let day = rng.gen_range(DAYS_IN_STUDY / 4..3 * DAYS_IN_STUDY / 4);
            let new_home = loop {
                let d = rng.gen_range(3_000.0..20_000.0);
                let p = home.offset_polar(d, uniform_angle(&mut rng));
                if proj.to_geo(p).map(|g| inner.contains(g)).unwrap_or(false)
                    && tops.iter().all(|t| t.distance(p) >= 2_000.0)
                {
                    break p;
                }
            };
            for c in &mut checkins {
                if c.time.day() >= day && c.location.distance(home) < 200.0 {
                    c.location = new_home + (c.location - home);
                }
            }
            relocation = Some(Relocation { day, old_home: home, new_home });
        }

        UserTrace { user, checkins, truth: GroundTruth { top_locations: tops, shares, relocation } }
    }

    fn checkin_at(
        &self,
        user: UserId,
        place: Point,
        kind: LocationKind,
        rng: &mut StdRng,
    ) -> CheckIn {
        let time = sample_time(kind, rng);
        let location = place + gaussian_2d(rng, self.gps_sigma_m);
        CheckIn { user, time, location }
    }

    /// Materializes the whole population.
    ///
    /// Fine for evaluation-scale populations (thousands of users); for the
    /// full 37k-user paper scale prefer streaming with
    /// [`PopulationConfig::generate_user`].
    pub fn generate(&self) -> Dataset {
        let users = (0..self.num_users as u32).map(|i| self.generate_user(i)).collect();
        Dataset { users }
    }
}

#[derive(Clone, Copy)]
enum LocationKind {
    Home,
    Work,
    OtherTop,
    Nomadic,
}

/// Draws a study timestamp with the diurnal pattern of the location kind:
/// home check-ins happen evenings/nights/weekends, work check-ins during
/// weekday working hours, the rest during general waking hours.
fn sample_time(kind: LocationKind, rng: &mut StdRng) -> Timestamp {
    let minute = rng.gen_range(0..60u8);
    let second = rng.gen_range(0..60u8);
    match kind {
        LocationKind::Home => {
            let day = rng.gen_range(0..DAYS_IN_STUDY);
            // Evening through early morning.
            let hours = [19, 20, 21, 22, 23, 0, 1, 2, 3, 4, 5, 6, 7, 8];
            let hour = hours[rng.gen_range(0..hours.len())];
            Timestamp::from_day_time(day, hour, minute, second)
        }
        LocationKind::Work => {
            // Resample until a weekday; 5 of 7 days qualify.
            loop {
                let day = rng.gen_range(0..DAYS_IN_STUDY);
                let hour = rng.gen_range(9..19u8);
                let t = Timestamp::from_day_time(day, hour, minute, second);
                if t.is_weekday() {
                    return t;
                }
            }
        }
        LocationKind::OtherTop | LocationKind::Nomadic => {
            let day = rng.gen_range(0..DAYS_IN_STUDY);
            let hour = rng.gen_range(8..23u8);
            Timestamp::from_day_time(day, hour, minute, second)
        }
    }
}

/// Builder for [`PopulationConfig`].
#[derive(Debug, Clone)]
pub struct PopulationConfigBuilder {
    config: PopulationConfig,
}

impl Default for PopulationConfigBuilder {
    fn default() -> Self {
        PopulationConfigBuilder {
            config: PopulationConfig {
                num_users: 1_000,
                seed: 0,
                min_checkins: 20,
                max_checkins: 11_435,
                // exp(5.9 + 1.1²/2) ≈ 670 mean check-ins — "near 1k on
                // average" once the heavy tail is included.
                log_mean: 5.9,
                log_sigma: 1.1,
                gps_sigma_m: 15.0,
                diverse_fraction: 0.12,
                relocation_probability: 0.0,
                hotspots: 0,
                hotspot_sigma_m: 4_000.0,
                bbox: shanghai::bounding_box(),
            },
        }
    }
}

impl PopulationConfigBuilder {
    /// Sets the number of users (default 1,000; the paper uses 37,262).
    pub fn num_users(mut self, n: usize) -> Self {
        self.config.num_users = n;
        self
    }

    /// Sets the master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the per-user check-in count range (default 20..=11,435, the
    /// paper's observed extremes).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ min ≤ max`.
    pub fn checkin_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid check-in range");
        self.config.min_checkins = min;
        self.config.max_checkins = max;
        self
    }

    /// Sets the log-normal parameters of the check-in count distribution.
    pub fn checkin_log_normal(mut self, log_mean: f64, log_sigma: f64) -> Self {
        assert!(log_sigma >= 0.0, "log sigma must be non-negative");
        self.config.log_mean = log_mean;
        self.config.log_sigma = log_sigma;
        self
    }

    /// Sets the GPS jitter deviation in meters (default 15 m, so the 50 m
    /// profiling threshold groups same-place check-ins as in the paper).
    pub fn gps_sigma_m(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "gps sigma must be non-negative");
        self.config.gps_sigma_m = sigma;
        self
    }

    /// Sets the fraction of "diverse" users with flat, many-place activity
    /// (default 0.12, calibrated so ~88–90 % of users stay below entropy 2
    /// as in the paper's Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics unless the fraction is in `[0, 1]`.
    pub fn diverse_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.config.diverse_fraction = fraction;
        self
    }

    /// Clusters homes around `count` urban hotspot centers with the given
    /// Gaussian spread (default: 0 hotspots, i.e. uniform homes).
    ///
    /// # Panics
    ///
    /// Panics if `sigma_m` is not positive and finite.
    pub fn hotspots(mut self, count: usize, sigma_m: f64) -> Self {
        assert!(sigma_m.is_finite() && sigma_m > 0.0, "hotspot sigma must be positive");
        self.config.hotspots = count;
        self.config.hotspot_sigma_m = sigma_m;
        self
    }

    /// Sets the probability that a user moves home mid-study (default 0,
    /// i.e. disabled; the paper notes such moves are possible but
    /// infrequent).
    ///
    /// # Panics
    ///
    /// Panics unless the probability is in `[0, 1]`.
    pub fn relocation_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.config.relocation_probability = p;
        self
    }

    /// Sets the study bounding box (default: the paper's Shanghai box).
    pub fn bounding_box(mut self, bbox: BoundingBox) -> Self {
        self.config.bbox = bbox;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> PopulationConfig {
        self.config
    }
}

/// A fully materialized synthetic population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    users: Vec<UserTrace>,
}

impl Dataset {
    /// The user traces, ordered by user id.
    pub fn users(&self) -> &[UserTrace] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Returns `true` if the dataset has no users.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Total number of check-ins across all users.
    pub fn total_checkins(&self) -> usize {
        self.users.iter().map(|u| u.checkins.len()).sum()
    }

    /// Iterates over user traces.
    pub fn iter(&self) -> std::slice::Iter<'_, UserTrace> {
        self.users.iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a UserTrace;
    type IntoIter = std::slice::Iter<'a, UserTrace>;

    fn into_iter(self) -> Self::IntoIter {
        self.users.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privlocad_attack::LocationProfile;

    fn small_config() -> PopulationConfig {
        PopulationConfig::builder().num_users(50).seed(42).build()
    }

    #[test]
    fn generation_is_deterministic() {
        let c = small_config();
        assert_eq!(c.generate_user(7), c.generate_user(7));
    }

    #[test]
    fn users_are_independent_of_generation_order() {
        let c = small_config();
        let early = c.generate_user(3);
        let _ = c.generate_user(10);
        assert_eq!(early, c.generate_user(3));
    }

    #[test]
    fn counts_within_paper_range() {
        let c = small_config();
        for i in 0..50u32 {
            let u = c.generate_user(i);
            assert!(
                (20..=11_435).contains(&u.checkins.len()),
                "user {i}: {} check-ins",
                u.checkins.len()
            );
        }
    }

    #[test]
    fn checkins_are_time_sorted_and_in_study_window() {
        let c = small_config();
        let u = c.generate_user(0);
        for w in u.checkins.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for ck in &u.checkins {
            assert!(ck.time.day() < DAYS_IN_STUDY);
            assert_eq!(ck.user, UserId::new(0));
        }
    }

    #[test]
    fn ground_truth_has_2_to_6_ranked_tops() {
        let c = small_config();
        for i in 0..50u32 {
            let u = c.generate_user(i);
            let m = u.truth.top_locations.len();
            assert!((2..=6).contains(&m), "user {i}: {m} tops");
            assert_eq!(u.truth.shares.len(), m);
            for w in u.truth.shares.windows(2) {
                assert!(w[0] >= w[1], "shares not rank-ordered: {:?}", u.truth.shares);
            }
            assert!(u.truth.shares.iter().sum::<f64>() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn top1_dominates_the_trace() {
        let c = small_config();
        let u = c.generate_user(1);
        let home = u.truth.top_locations[0];
        let near_home = u
            .checkins
            .iter()
            .filter(|ck| ck.location.distance(home) < 100.0)
            .count();
        let share = near_home as f64 / u.checkins.len() as f64;
        assert!(share >= 0.3, "top-1 share {share}");
    }

    #[test]
    fn gps_jitter_keeps_checkins_near_their_place() {
        let c = small_config();
        let u = c.generate_user(2);
        // Every check-in should be within ~6σ of *some* known place.
        let mut places = u.truth.top_locations.clone();
        // Nomadic spots are unknown here, so only verify top check-ins: at
        // least the top-1 cluster must be tight.
        let home = places.remove(0);
        let near: Vec<f64> = u
            .checkins
            .iter()
            .map(|ck| ck.location.distance(home))
            .filter(|d| *d < 200.0)
            .collect();
        assert!(!near.is_empty());
        assert!(near.iter().cloned().fold(0.0, f64::max) < 120.0);
    }

    #[test]
    fn profiling_recovers_the_generated_structure() {
        let c = small_config();
        let u = c.generate_user(4);
        let profile = LocationProfile::from_checkins(&u.locations(), 50.0);
        // The profile's top-1 centroid matches the generated home.
        let inferred = profile.top(0).unwrap().location;
        assert!(
            inferred.distance(u.truth.top_locations[0]) < 30.0,
            "profiled top-1 off by {} m",
            inferred.distance(u.truth.top_locations[0])
        );
    }

    #[test]
    fn entropy_calibration_mostly_below_two() {
        let n = 120u32;
        let c = PopulationConfig::builder().num_users(n as usize).seed(9).build();
        let mut below = 0;
        for i in 0..n {
            let u = c.generate_user(i);
            let profile = LocationProfile::from_checkins(&u.locations(), 50.0);
            if profile.entropy() < 2.0 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        // Paper: 88.8 %. Allow a generous band around it.
        assert!((0.75..=1.0).contains(&frac), "entropy<2 fraction {frac}");
    }

    #[test]
    fn diurnal_structure_home_at_night_work_by_day() {
        let c = small_config();
        let u = c.generate_user(5);
        let home = u.truth.top_locations[0];
        let work = u.truth.top_locations[1];
        let home_checkins: Vec<_> = u
            .checkins
            .iter()
            .filter(|ck| ck.location.distance(home) < 100.0)
            .collect();
        let work_checkins: Vec<_> = u
            .checkins
            .iter()
            .filter(|ck| ck.location.distance(work) < 100.0)
            .collect();
        assert!(home_checkins.iter().all(|ck| {
            let h = ck.time.hour();
            h >= 19 || h <= 8
        }));
        assert!(work_checkins.iter().all(|ck| ck.time.is_working_hours()));
    }

    #[test]
    fn dataset_aggregates() {
        let c = PopulationConfig::builder().num_users(5).seed(1).build();
        let ds = c.generate();
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
        assert_eq!(
            ds.total_checkins(),
            ds.iter().map(|u| u.checkins.len()).sum::<usize>()
        );
        let ids: Vec<u32> = (&ds).into_iter().map(|u| u.user.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        let c = PopulationConfig::builder().num_users(3).seed(0).build();
        let _ = c.generate_user(3);
    }

    #[test]
    fn builder_setters_apply() {
        let bbox = BoundingBox::new(31.0, 31.2, 121.2, 121.6).unwrap();
        let c = PopulationConfig::builder()
            .num_users(12)
            .seed(99)
            .checkin_range(30, 100)
            .checkin_log_normal(4.0, 0.5)
            .gps_sigma_m(5.0)
            .bounding_box(bbox)
            .build();
        assert_eq!(c.num_users(), 12);
        assert_eq!(c.seed(), 99);
        assert_eq!(c.bounding_box(), bbox);
        let u = c.generate_user(0);
        assert!((30..=100).contains(&u.checkins.len()));
    }

    #[test]
    fn relocation_moves_late_home_checkins() {
        let c = PopulationConfig::builder()
            .num_users(40)
            .seed(77)
            .relocation_probability(1.0)
            .build();
        let mut saw_relocation = false;
        for i in 0..40u32 {
            let u = c.generate_user(i);
            let Some(rel) = u.truth.relocation else { continue };
            saw_relocation = true;
            assert!(rel.old_home.distance(rel.new_home) >= 2_000.0);
            for ck in &u.checkins {
                if ck.time.day() >= rel.day {
                    assert!(
                        ck.location.distance(rel.old_home) > 150.0,
                        "user {i}: post-move check-in still at the old home"
                    );
                } else {
                    assert!(
                        ck.location.distance(rel.new_home) > 150.0,
                        "user {i}: pre-move check-in already at the new home"
                    );
                }
            }
            // Both homes carry real mass.
            let old = u.checkins.iter().filter(|c| c.location.distance(rel.old_home) < 100.0).count();
            let new = u.checkins.iter().filter(|c| c.location.distance(rel.new_home) < 100.0).count();
            assert!(old > 0 && new > 0, "user {i}: old {old} new {new}");
        }
        assert!(saw_relocation);
    }

    #[test]
    fn hotspots_concentrate_homes() {
        let uniform = PopulationConfig::builder().num_users(60).seed(3).build();
        let clustered = PopulationConfig::builder()
            .num_users(60)
            .seed(3)
            .hotspots(3, 2_000.0)
            .build();
        // Mean pairwise home distance shrinks under clustering.
        let spread = |c: &PopulationConfig| {
            let homes: Vec<_> = (0..60u32)
                .map(|i| c.generate_user(i).truth.top_locations[0])
                .collect();
            let mut total = 0.0;
            let mut pairs = 0usize;
            for i in 0..homes.len() {
                for j in (i + 1)..homes.len() {
                    total += homes[i].distance(homes[j]);
                    pairs += 1;
                }
            }
            total / pairs as f64
        };
        let u = spread(&uniform);
        let c = spread(&clustered);
        assert!(c < u * 0.8, "clustered spread {c} vs uniform {u}");
    }

    #[test]
    fn hotspot_centers_shared_across_users() {
        // With one hotspot and tight spread, all homes huddle together.
        let c = PopulationConfig::builder()
            .num_users(20)
            .seed(8)
            .hotspots(1, 1_000.0)
            .build();
        let homes: Vec<_> = (0..20u32)
            .map(|i| c.generate_user(i).truth.top_locations[0])
            .collect();
        let centroid = privlocad_geo::centroid(&homes).unwrap();
        for h in &homes {
            assert!(h.distance(centroid) < 6_000.0, "home {h} strayed from the hotspot");
        }
    }

    #[test]
    fn relocation_disabled_by_default() {
        let c = PopulationConfig::builder().num_users(10).seed(5).build();
        for i in 0..10u32 {
            assert!(c.generate_user(i).truth.relocation.is_none());
        }
    }

    #[test]
    fn paper_scale_population_size() {
        let c = PopulationConfig::paper_scale(1);
        assert_eq!(c.num_users(), 37_262);
        // Still cheap to generate any single user.
        let u = c.generate_user(37_261);
        assert!(u.checkins.len() >= 20);
    }
}
