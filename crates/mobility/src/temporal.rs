use serde::{Deserialize, Serialize};

/// Seconds per day.
pub const SECONDS_PER_DAY: i64 = 86_400;

/// Length of the paper's observation window: June 1 2019 to May 31 2021,
/// 731 days (2020 was a leap year).
pub const DAYS_IN_STUDY: i64 = 731;

/// A timestamp measured in seconds since the study epoch
/// (June 1 2019 00:00 local time — a Saturday).
///
/// # Examples
///
/// ```
/// use privlocad_mobility::{Timestamp, SECONDS_PER_DAY};
///
/// let t = Timestamp::new(2 * SECONDS_PER_DAY + 9 * 3600);
/// assert_eq!(t.day(), 2);      // June 3 2019
/// assert_eq!(t.hour(), 9);
/// assert!(t.is_weekday());     // a Monday
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(i64);

/// Day-of-week offset of the study epoch: June 1 2019 was a Saturday
/// (0 = Monday … 6 = Sunday).
const EPOCH_DOW: i64 = 5;

impl Timestamp {
    /// Creates a timestamp from seconds since the study epoch.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative.
    pub fn new(seconds: i64) -> Self {
        assert!(seconds >= 0, "timestamp must not precede the study epoch");
        Timestamp(seconds)
    }

    /// Builds a timestamp from a study day and a time of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour ≥ 24`, `minute ≥ 60` or `second ≥ 60`.
    pub fn from_day_time(day: i64, hour: u8, minute: u8, second: u8) -> Self {
        assert!(hour < 24 && minute < 60 && second < 60, "invalid time of day");
        Timestamp::new(
            day * SECONDS_PER_DAY + hour as i64 * 3_600 + minute as i64 * 60 + second as i64,
        )
    }

    /// Seconds since the study epoch.
    #[inline]
    pub fn seconds(self) -> i64 {
        self.0
    }

    /// Zero-based study day (day 0 = June 1 2019).
    #[inline]
    pub fn day(self) -> i64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Hour of day, 0–23.
    #[inline]
    pub fn hour(self) -> u8 {
        ((self.0 % SECONDS_PER_DAY) / 3_600) as u8
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    #[inline]
    pub fn day_of_week(self) -> u8 {
        ((self.day() + EPOCH_DOW) % 7) as u8
    }

    /// Returns `true` Monday through Friday.
    #[inline]
    pub fn is_weekday(self) -> bool {
        self.day_of_week() < 5
    }

    /// Returns `true` during typical working hours (09:00–18:59) on a
    /// weekday — the window the generator assigns to workplace check-ins.
    pub fn is_working_hours(self) -> bool {
        self.is_weekday() && (9..19).contains(&self.hour())
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "day {} {:02}:{:02}", self.day(), self.hour(), (self.0 % 3_600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero_saturday() {
        let t = Timestamp::new(0);
        assert_eq!(t.day(), 0);
        assert_eq!(t.hour(), 0);
        assert_eq!(t.day_of_week(), 5);
        assert!(!t.is_weekday());
    }

    #[test]
    fn weekday_cycle() {
        // Days 0..6 = Sat, Sun, Mon, Tue, Wed, Thu, Fri.
        let dows: Vec<u8> = (0..7)
            .map(|d| Timestamp::from_day_time(d, 12, 0, 0).day_of_week())
            .collect();
        assert_eq!(dows, vec![5, 6, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn working_hours_window() {
        let monday_10am = Timestamp::from_day_time(2, 10, 0, 0);
        assert!(monday_10am.is_working_hours());
        let monday_8am = Timestamp::from_day_time(2, 8, 0, 0);
        assert!(!monday_8am.is_working_hours());
        let saturday_noon = Timestamp::from_day_time(0, 12, 0, 0);
        assert!(!saturday_noon.is_working_hours());
        let monday_7pm = Timestamp::from_day_time(2, 19, 0, 0);
        assert!(!monday_7pm.is_working_hours());
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::from_day_time(1, 0, 0, 0);
        let b = Timestamp::from_day_time(1, 0, 0, 1);
        assert!(a < b);
    }

    #[test]
    fn from_day_time_round_trip() {
        let t = Timestamp::from_day_time(100, 23, 59, 59);
        assert_eq!(t.day(), 100);
        assert_eq!(t.hour(), 23);
        assert_eq!(t.seconds(), 100 * SECONDS_PER_DAY + 86_399);
    }

    #[test]
    #[should_panic(expected = "invalid time of day")]
    fn rejects_bad_hour() {
        let _ = Timestamp::from_day_time(0, 24, 0, 0);
    }

    #[test]
    #[should_panic(expected = "must not precede")]
    fn rejects_negative_seconds() {
        let _ = Timestamp::new(-1);
    }

    #[test]
    fn study_window_is_two_years() {
        assert_eq!(DAYS_IN_STUDY, 731);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_day_time(3, 7, 5, 0);
        assert_eq!(t.to_string(), "day 3 07:05");
    }
}
