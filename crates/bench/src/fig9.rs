//! Fig. 9: advertising efficacy versus the number of obfuscated outputs.
//!
//! Efficacy (Definition 5) measures how relevant the fetched ads are. The
//! n-fold mechanism's noise grows with √n, yet the posterior-based output
//! selection (Algorithm 4) keeps efficacy from collapsing — the paper's
//! Observation 4. The uniform-selection ablation quantifies how much the
//! posterior weighting contributes.

use privlocad_mechanisms::{
    GeoIndParams, NFoldGaussian, PosteriorSelector, SelectionStrategy, UniformSelector,
};
use privlocad_metrics::efficacy;
use privlocad_metrics::montecarlo::Fanout;
use serde::{Deserialize, Serialize};

use crate::report::{f3, Table};

/// Configuration for the Fig. 9 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Monte-Carlo trials per cell (paper: 100,000).
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Privacy level ε (paper: 1).
    pub epsilon: f64,
    /// Radii r in meters (paper: 500–800).
    pub rs_m: Vec<f64>,
    /// Failure probability δ (paper: 0.01).
    pub delta: f64,
    /// Targeting radius R in meters (paper: 5,000).
    pub targeting_radius_m: f64,
    /// Fold counts (paper: 1..=10).
    pub ns: Vec<usize>,
    /// Also evaluate the uniform-selection ablation.
    pub include_uniform_ablation: bool,
    /// Worker threads for the Monte-Carlo fan-out (0 = auto). Results are
    /// identical for any value.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            trials: 20_000,
            seed: 0,
            epsilon: 1.0,
            rs_m: vec![500.0, 600.0, 700.0, 800.0],
            delta: 0.01,
            targeting_radius_m: 5_000.0,
            ns: (1..=10).collect(),
            include_uniform_ablation: true,
            threads: 0,
        }
    }
}

/// One (r, n) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Radius r in meters.
    pub r_m: f64,
    /// Fold count.
    pub n: usize,
    /// Mean efficacy with posterior selection (the paper's curve).
    pub posterior: f64,
    /// Mean efficacy with uniform selection (ablation), if evaluated.
    pub uniform: Option<f64>,
}

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// One cell per (r, n).
    pub cells: Vec<Cell>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Outcome {
    let mut cells = Vec::new();
    for &r_m in &config.rs_m {
        for &n in &config.ns {
            let params = GeoIndParams::new(r_m, config.epsilon, config.delta, n)
                .expect("valid sweep parameters");
            let mech = NFoldGaussian::new(params);
            let seed = config.seed ^ ((r_m as u64) << 20) ^ n as u64;
            let fan = Fanout::with_threads(seed, config.threads);
            let posterior_sel = PosteriorSelector::new(mech.sigma());
            let posterior = mean(&efficacy::measure_fanout(
                &mech,
                &posterior_sel,
                config.targeting_radius_m,
                config.trials,
                fan,
            ));
            let uniform = config.include_uniform_ablation.then(|| {
                let sel = UniformSelector::new();
                mean(&efficacy::measure_fanout(
                    &mech,
                    &sel as &dyn SelectionStrategy,
                    config.targeting_radius_m,
                    config.trials,
                    fan.reseeded(seed.wrapping_add(1)),
                ))
            });
            cells.push(Cell { r_m, n, posterior, uniform });
        }
    }
    Outcome { cells }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

impl Outcome {
    /// Looks up one cell.
    pub fn cell(&self, r_m: f64, n: usize) -> Option<&Cell> {
        self.cells.iter().find(|c| c.r_m == r_m && c.n == n)
    }

    /// Renders the paper-style summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 9 — advertising efficacy vs n (eps = 1)",
            &["r (m)", "n", "efficacy (posterior)", "efficacy (uniform)"],
        );
        for c in &self.cells {
            t.push_row(vec![
                format!("{:.0}", c.r_m),
                c.n.to_string(),
                f3(c.posterior),
                c.uniform.map_or("-".into(), f3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config { trials: 3_000, rs_m: vec![500.0, 800.0], ns: vec![1, 5, 10], ..Config::default() }
    }

    #[test]
    fn efficacy_does_not_collapse_with_n() {
        // Observation 4: with posterior selection the efficacy at n = 10
        // stays within a modest factor of n = 1 (a graceful decline, not
        // the ∝1/√n collapse the added noise alone would suggest), and
        // remains clearly useful in absolute terms.
        let out = run(&small());
        for &r in &[500.0, 800.0] {
            let e1 = out.cell(r, 1).unwrap().posterior;
            let e10 = out.cell(r, 10).unwrap().posterior;
            assert!(
                e10 > 0.35 * e1,
                "r={r}: efficacy fell from {e1} to {e10}"
            );
            assert!(e10 > 0.15, "r={r}: absolute efficacy {e10}");
        }
    }

    #[test]
    fn posterior_beats_uniform_for_large_n() {
        let out = run(&small());
        let c = out.cell(500.0, 10).unwrap();
        assert!(
            c.posterior > c.uniform.unwrap(),
            "posterior {} vs uniform {:?}",
            c.posterior,
            c.uniform
        );
    }

    #[test]
    fn ablation_can_be_disabled() {
        let out = run(&Config { include_uniform_ablation: false, trials: 500, rs_m: vec![500.0], ns: vec![1], ..Config::default() });
        assert!(out.cells[0].uniform.is_none());
        assert_eq!(out.table().len(), 1);
    }

    #[test]
    fn smaller_r_gives_higher_efficacy() {
        let out = run(&small());
        for &n in &[1usize, 10] {
            let small_r = out.cell(500.0, n).unwrap().posterior;
            let large_r = out.cell(800.0, n).unwrap().posterior;
            assert!(large_r <= small_r + 0.02, "n={n}: r500 {small_r} r800 {large_r}");
        }
    }
}
