//! Fig. 6: population-scale attack success, with and without the defense.
//!
//! For every user the longitudinal attacker observes the reported (and
//! obfuscated) check-in stream and infers the top-1/top-2 locations with
//! Algorithm 1. Under one-time geo-IND (planar Laplace, `r = 200 m`,
//! `l ∈ {ln 2, ln 4, ln 6}`) the paper recovers 75–93 % of top-1 locations
//! within 200 m; under Edge-PrivLocAd's permanent 10-fold Gaussian
//! obfuscation (`r = 500 m`, `ε ∈ {1, 1.5}`) less than 1 % within 200 m
//! and ~5–7 % within 500 m.

use privlocad::{LbaSimulation, SystemConfig};
use privlocad_attack::evaluation::{rank_distances, AttackStats};
use privlocad_attack::DeobfuscationAttack;
use privlocad_geo::rng::derive_seed;
use privlocad_mechanisms::{NFoldGaussian, PlanarLaplace, PlanarLaplaceParams};
use privlocad_metrics::montecarlo::run_trials;
use privlocad_mobility::PopulationConfig;
use serde::{Deserialize, Serialize};

use crate::report::{pct, Table};

/// Configuration for the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Number of users (paper: 37,262).
    pub users: usize,
    /// Master seed.
    pub seed: u64,
    /// Success-distance thresholds in meters.
    pub thresholds_m: Vec<f64>,
    /// One-time geo-IND privacy levels `l` at 200 m (paper: ln 2/4/6).
    pub one_time_levels: Vec<f64>,
    /// Defense privacy levels ε at r = 500 m, n = 10 (paper: 1 and 1.5).
    pub defense_epsilons: Vec<f64>,
    /// Trimming confidence (paper: α = 0.05).
    pub alpha: f64,
    /// Disable the trimming stage (ablation).
    pub no_trimming: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            users: 500,
            seed: 0,
            thresholds_m: vec![50.0, 100.0, 200.0, 300.0, 500.0, 1_000.0],
            one_time_levels: vec![2f64.ln(), 4f64.ln(), 6f64.ln()],
            defense_epsilons: vec![1.0, 1.5],
            alpha: 0.05,
            no_trimming: false,
        }
    }
}

/// One evaluated configuration (an attack arm).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arm {
    /// Display label.
    pub label: String,
    /// Success rate at each threshold for the top-1 location.
    pub top1: Vec<f64>,
    /// Success rate at each threshold for the top-2 location.
    pub top2: Vec<f64>,
}

/// Result of the Fig. 6 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Users evaluated.
    pub users: usize,
    /// The thresholds the curves are sampled at.
    pub thresholds_m: Vec<f64>,
    /// One arm per attacked configuration, one-time arms first.
    pub arms: Vec<Arm>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Outcome {
    let population = PopulationConfig::builder()
        .num_users(config.users)
        .seed(config.seed)
        .build();

    // Pre-build the attacked mechanisms and their attack configurations.
    let one_time: Vec<PlanarLaplace> = config
        .one_time_levels
        .iter()
        .map(|&l| {
            PlanarLaplace::new(
                PlanarLaplaceParams::from_level(l, 200.0).expect("valid level"),
            )
        })
        .collect();
    let defenses: Vec<SystemConfig> = config
        .defense_epsilons
        .iter()
        .map(|&eps| {
            SystemConfig::builder()
                .epsilon(eps)
                .build()
                .expect("valid defense epsilon")
        })
        .collect();

    let alpha = config.alpha;
    let no_trim = config.no_trimming;
    let arm_count = one_time.len() + defenses.len();

    // distances[user][arm] = [top1, top2]
    let per_user: Vec<Vec<[Option<f64>; 2]>> =
        run_trials(config.users, config.seed, |i, rng| {
            let user = population.generate_user(i as u32);
            let truth = [user.truth.top_locations[0], user.truth.top_locations[1]];
            let mut rows: Vec<[Option<f64>; 2]> = Vec::with_capacity(arm_count);

            for mech in &one_time {
                let observed: Vec<_> = user
                    .checkins
                    .iter()
                    .map(|c| mech.sample(c.location, rng))
                    .collect();
                let mut attack_cfg = DeobfuscationAttack::for_planar_laplace(mech, alpha)
                    .expect("valid alpha")
                    .config();
                if no_trim {
                    attack_cfg = attack_cfg.without_trimming();
                }
                let inferred =
                    DeobfuscationAttack::new(attack_cfg).infer_top_locations(&observed, 2);
                let d = rank_distances(&inferred, &truth);
                rows.push([d[0], d[1]]);
            }

            for (k, sys) in defenses.iter().enumerate() {
                let mut sim = LbaSimulation::new(
                    *sys,
                    Vec::new(),
                    derive_seed(config.seed, (i * 31 + k + 1) as u64),
                );
                sim.run_user(&user);
                let observed = sim.observed_locations(user.user.raw());
                let gaussian = NFoldGaussian::new(sys.geo_ind());
                let mut attack_cfg = DeobfuscationAttack::for_gaussian(&gaussian, alpha)
                    .expect("valid alpha")
                    .config();
                if no_trim {
                    attack_cfg = attack_cfg.without_trimming();
                }
                let inferred =
                    DeobfuscationAttack::new(attack_cfg).infer_top_locations(&observed, 2);
                let d = rank_distances(&inferred, &truth);
                rows.push([d[0], d[1]]);
            }
            rows
        });

    // Aggregate per arm.
    let labels: Vec<String> = config
        .one_time_levels
        .iter()
        .map(|l| format!("one-time geo-IND l=ln({:.0})", l.exp()))
        .chain(
            config
                .defense_epsilons
                .iter()
                .map(|e| format!("Edge-PrivLocAd eps={e}")),
        )
        .collect();
    let arms = labels
        .into_iter()
        .enumerate()
        .map(|(a, label)| {
            let mut stats = AttackStats::new(2);
            for user_rows in &per_user {
                stats.record(&user_rows[a]);
            }
            Arm {
                label,
                top1: stats.success_curve(0, &config.thresholds_m),
                top2: stats.success_curve(1, &config.thresholds_m),
            }
        })
        .collect();

    Outcome { users: config.users, thresholds_m: config.thresholds_m.clone(), arms }
}

impl Outcome {
    /// Renders the paper-style summary table (success rates per arm and
    /// threshold).
    pub fn table(&self) -> Table {
        let mut header: Vec<String> = vec!["configuration".into(), "rank".into()];
        header.extend(self.thresholds_m.iter().map(|t| format!("<= {t:.0} m")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!("Fig. 6 — attack success over {} users", self.users),
            &header_refs,
        );
        for arm in &self.arms {
            let mut row1 = vec![arm.label.clone(), "top-1".into()];
            row1.extend(arm.top1.iter().map(|&v| pct(v)));
            t.push_row(row1);
            let mut row2 = vec![arm.label.clone(), "top-2".into()];
            row2.extend(arm.top2.iter().map(|&v| pct(v)));
            t.push_row(row2);
        }
        t
    }

    /// The arm whose label contains `needle`, if any.
    pub fn arm(&self, needle: &str) -> Option<&Arm> {
        self.arms.iter().find(|a| a.label.contains(needle))
    }

    /// A 95 % Wilson confidence-interval table for the top-1 success rate
    /// at one threshold — the headline Fig. 6 numbers with error bars.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_m` was not part of the sweep.
    pub fn interval_table(&self, threshold_m: f64) -> Table {
        let idx = self
            .thresholds_m
            .iter()
            .position(|&t| t == threshold_m)
            .expect("threshold must be one of the swept values");
        let mut t = Table::new(
            format!("Fig. 6 — top-1 success within {threshold_m:.0} m (95% Wilson CI)"),
            &["configuration", "rate", "95% CI low", "95% CI high"],
        );
        for arm in &self.arms {
            let successes = (arm.top1[idx] * self.users as f64).round() as usize;
            let (lo, hi) =
                privlocad_metrics::stats::wilson_interval(successes, self.users, 0.95);
            t.push_row(vec![arm.label.clone(), pct(arm.top1[idx]), pct(lo), pct(hi)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config {
            users: 25,
            one_time_levels: vec![4f64.ln()],
            defense_epsilons: vec![1.0],
            ..Config::default()
        }
    }

    #[test]
    fn one_time_leaks_and_defense_holds() {
        let out = run(&small());
        assert_eq!(out.arms.len(), 2);
        let idx_200 = out.thresholds_m.iter().position(|&t| t == 200.0).unwrap();
        let attack = &out.arms[0];
        let defense = &out.arms[1];
        assert!(
            attack.top1[idx_200] > 0.6,
            "one-time top-1@200m {}",
            attack.top1[idx_200]
        );
        assert!(
            defense.top1[idx_200] < 0.1,
            "defense top-1@200m {}",
            defense.top1[idx_200]
        );
        // Defense strictly better (lower recovery) than the attacked
        // baseline at every threshold.
        for k in 0..out.thresholds_m.len() {
            assert!(defense.top1[k] <= attack.top1[k] + 1e-9);
        }
    }

    #[test]
    fn curves_are_monotone_in_threshold() {
        let out = run(&small());
        for arm in &out.arms {
            for w in arm.top1.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            for w in arm.top2.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn table_and_lookup() {
        let out = run(&Config { users: 10, ..small() });
        assert!(out.arm("Edge-PrivLocAd").is_some());
        assert!(out.arm("nonexistent").is_none());
        assert_eq!(out.table().len(), out.arms.len() * 2);
    }

    #[test]
    fn interval_table_brackets_the_rates() {
        let out = run(&Config { users: 20, ..small() });
        let t = out.interval_table(200.0);
        assert_eq!(t.len(), out.arms.len());
        assert!(t.render().contains("Wilson"));
    }

    #[test]
    #[should_panic(expected = "threshold must be one of the swept values")]
    fn interval_table_rejects_unknown_threshold() {
        let out = run(&Config { users: 5, ..small() });
        let _ = out.interval_table(123.0);
    }
}
