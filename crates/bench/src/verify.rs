//! Section VI reproduction: verify the privacy calibration of Theorem 2
//! across the paper's whole parameter grid.
//!
//! For each `(r, ε, δ, n)` the harness computes σ from Theorem 2, the
//! *exact* δ the resulting Gaussian release achieves at ε (Balle–Wang
//! privacy curve applied to the sufficient statistic), and the calibration
//! slack — confirming both that the guarantee holds and that the
//! sufficient-statistics analysis is what makes it n-invariant.

use privlocad_mechanisms::verifier::verify_nfold_gaussian;
use privlocad_mechanisms::GeoIndParams;
use privlocad_metrics::montecarlo::Fanout;
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// Configuration for the verification sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Privacy levels ε (paper: 1 and 1.5).
    pub epsilons: Vec<f64>,
    /// Radii r in meters (paper: 500–800).
    pub rs_m: Vec<f64>,
    /// Failure probability δ (paper: 0.01).
    pub delta: f64,
    /// Fold counts.
    pub ns: Vec<usize>,
    /// Worker threads for the grid sweep (0 = auto). Results are identical
    /// for any value.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            epsilons: vec![1.0, 1.5],
            rs_m: vec![500.0, 600.0, 700.0, 800.0],
            delta: 0.01,
            ns: vec![1, 2, 5, 10],
            threads: 0,
        }
    }
}

/// One verified configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Privacy level.
    pub epsilon: f64,
    /// Radius in meters.
    pub r_m: f64,
    /// Fold count.
    pub n: usize,
    /// Theorem 2's σ.
    pub sigma: f64,
    /// Exact δ achieved at ε.
    pub achieved_delta: f64,
    /// Whether achieved ≤ claimed.
    pub holds: bool,
}

/// Result of the verification sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// The claimed δ.
    pub delta: f64,
    /// One row per configuration.
    pub rows: Vec<Row>,
}

/// Runs the sweep.
///
/// The exact Balle–Wang curve evaluation is pure per-cell work, so the
/// grid is spread over the fan-out's worker threads; row order matches
/// the nested (ε, r, n) loop regardless of the thread count.
pub fn run(config: &Config) -> Outcome {
    let mut grid = Vec::new();
    for &epsilon in &config.epsilons {
        for &r_m in &config.rs_m {
            for &n in &config.ns {
                grid.push((epsilon, r_m, n));
            }
        }
    }
    let rows = Fanout::with_threads(0, config.threads).map(&grid, |_, &(epsilon, r_m, n)| {
        let params = GeoIndParams::new(r_m, epsilon, config.delta, n)
            .expect("valid sweep parameters");
        let v = verify_nfold_gaussian(params);
        Row {
            epsilon,
            r_m,
            n,
            sigma: params.sigma(),
            achieved_delta: v.achieved_delta,
            holds: v.holds(),
        }
    });
    Outcome { delta: config.delta, rows }
}

impl Outcome {
    /// `true` iff every configuration satisfies its claim.
    pub fn all_hold(&self) -> bool {
        self.rows.iter().all(|r| r.holds)
    }

    /// Renders the verification table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Theorem 2 verification (claimed delta = {})", self.delta),
            &["epsilon", "r (m)", "n", "sigma (m)", "achieved delta", "holds"],
        );
        for r in &self.rows {
            t.push_row(vec![
                format!("{}", r.epsilon),
                format!("{:.0}", r.r_m),
                r.n.to_string(),
                format!("{:.0}", r.sigma),
                format!("{:.2e}", r.achieved_delta),
                if r.holds { "yes" } else { "NO" }.to_string(),
            ]);
        }
        t.push_row(vec![
            "all configurations hold".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            if self.all_hold() { "yes" } else { "NO" }.to_string(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_all_hold() {
        let out = run(&Config::default());
        assert!(out.all_hold());
        assert_eq!(out.rows.len(), 2 * 4 * 4);
    }

    #[test]
    fn achieved_delta_is_n_invariant() {
        // The heart of the sufficient-statistics argument.
        let out = run(&Config::default());
        for &eps in &[1.0, 1.5] {
            let base = out
                .rows
                .iter()
                .find(|r| r.epsilon == eps && r.r_m == 500.0 && r.n == 1)
                .unwrap()
                .achieved_delta;
            for r in out.rows.iter().filter(|r| r.epsilon == eps && r.r_m == 500.0) {
                assert!((r.achieved_delta - base).abs() < 1e-15, "n = {}", r.n);
            }
        }
    }

    #[test]
    fn table_flags_summary_row(/* the last row is the verdict */) {
        let out = run(&Config { ns: vec![1], rs_m: vec![500.0], ..Config::default() });
        let t = out.table();
        assert_eq!(t.len(), 2 + 1);
        assert!(t.render().contains("all configurations hold"));
    }

}
