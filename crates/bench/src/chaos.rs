//! The `bench chaos` harness: seeded fault schedules driven through the
//! supervised [`EdgeServer`] serving path, with the surviving outputs
//! checked bit-for-bit against a fault-free run.
//!
//! Four fault families, each run at every shard count (1 and `threads`
//! serving loops, users partitioned round-robin across them):
//!
//! 1. `chaos/corruption/{T}` — seeded malformed frames (truncations, tag
//!    bit flips, trailing garbage) interleaved with the valid workload,
//!    plus one vandal client driven past the consecutive-malformed limit
//!    to exercise the ban path.
//! 2. `chaos/worker_kill/{T}` — seeded worker crashes at random request
//!    ordinals; every crash is caught by the supervisor, the device is
//!    restored from its last committed checkpoint, and the interrupted
//!    batch is retried.
//! 3. `chaos/mid_window_restart/{T}` — crashes placed *inside* open
//!    profile windows (between check-ins, before the window close), the
//!    schedule most likely to tempt an implementation into re-drawing
//!    candidates.
//! 4. `chaos/flood/{T}` — a tiny request queue under a concurrent client
//!    burst; requests are either served or shed with a structured
//!    [`TransportError::Overloaded`], never hung.
//!
//! For the three replayable families the harness replays the exact valid
//! request stream against a fresh fault-free server with the same seed
//! and asserts (a) every surviving response frame is byte-identical, (b)
//! the final device snapshots are byte-identical, and (c)
//! [`candidate_redraws`] between the two final snapshots is **zero** — a
//! crash never re-draws a released candidate set, which is the privacy
//! property the recovery log exists to protect (DESIGN.md §12).

use std::sync::Once;
use std::time::Instant;

use privlocad::protocol::{ClientRequest, EdgeResponse};
use privlocad::{
    candidate_redraws, BreakerConfig, BreakerEvent, ChannelFaultPlan, EdgeDevice, EdgeHandle,
    EdgeServer, FabricError, FabricOptions, FabricRouter, FaultPlan, LaneOutage, RetryPolicy,
    ServedLocation, ServerOptions, SystemConfig, TransportError,
};
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use privlocad_telemetry::{top_key, Telemetry, TopKey};
use rand::rngs::StdRng;
use rand::Rng;

use crate::report::Table;

/// Chaos-harness parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fleet size, partitioned round-robin across the shard servers.
    pub users: usize,
    /// Check-ins per user before its window close.
    pub checkins: usize,
    /// Ad requests per user after its window close.
    pub requests: usize,
    /// Injected worker crashes per shard in the kill scenarios.
    pub kills: usize,
    /// Corrupted frames injected per shard in the corruption scenario.
    pub corruptions: usize,
    /// Master seed; every schedule and device RNG is derived from it.
    pub seed: u64,
    /// Upper shard count; scenarios run at 1 and `threads` serving loops.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            users: 8,
            checkins: 12,
            requests: 16,
            kills: 3,
            corruptions: 8,
            seed: 0,
            threads: 2,
        }
    }
}

/// One chaos scenario's outcome.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario label, `chaos/...`.
    pub name: String,
    /// Wall-clock for the whole scenario (drive + replay + asserts).
    pub wall_ms: f64,
    /// Faults injected: worker kills, corrupted frames, or (for the flood
    /// scenario) overload rejections observed.
    pub faults_injected: u64,
    /// Valid requests that received a correct response despite the faults.
    pub requests_survived: u64,
    /// Supervised worker restarts across every shard.
    pub restarts: u64,
    /// Fastest observed decode+restore of the final recovery checkpoint,
    /// in nanoseconds (0 for the flood scenario, which never crashes).
    pub recovery_ns: f64,
    /// Stale duplicate deliveries the fabric injected on the wire (0 for
    /// the channel-level scenarios, which have no faulty link).
    pub duplicates_injected: u64,
    /// Duplicate deliveries the shards' dedup windows replayed from
    /// cache instead of re-applying — exactly-once demands this equals
    /// `duplicates_injected`.
    pub duplicates_suppressed: u64,
    /// Circuit-breaker transitions (open / probe / close / reopen)
    /// recorded by the fabric's deterministic trace.
    pub breaker_transitions: u64,
    /// Reads answered from the bounded stale-cache of last *released*
    /// obfuscated locations while a breaker was open.
    pub degraded_serves: u64,
    /// Calls that exhausted their transmission budget on a dead wire.
    pub deadline_misses: u64,
    /// Shard servers the fleet was partitioned across.
    pub threads: usize,
    /// The scenario's telemetry hub, shared by its faulty shard servers
    /// (the fault-free replay servers publish elsewhere — same seeds would
    /// double-record every budget spend). Already audited: the run asserts
    /// [`privlocad_telemetry::Ledger::assert_no_double_spend`] against the
    /// union of the final shard snapshots before returning.
    pub telemetry: Telemetry,
}

/// The full chaos-harness result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// One row per (scenario, shard count), in execution order.
    pub rows: Vec<ChaosRow>,
}

impl Outcome {
    /// Renders the summary table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "chaos: seeded faults over the supervised serving path",
            &["scenario", "shards", "faults", "survived", "restarts", "dups", "degraded",
              "recovery µs"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.name.clone(),
                row.threads.to_string(),
                row.faults_injected.to_string(),
                row.requests_survived.to_string(),
                row.restarts.to_string(),
                format!("{}/{}", row.duplicates_suppressed, row.duplicates_injected),
                row.degraded_serves.to_string(),
                format!("{:.1}", row.recovery_ns * 1e-3),
            ]);
        }
        table
    }
}

/// The fault family a scenario injects while driving the valid workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMix {
    /// Corrupted frames + one vandal client driven into the ban.
    Corruption,
    /// Worker kills at seeded random request ordinals.
    WorkerKill,
    /// Worker kills placed inside open profile windows.
    MidWindowRestart,
}

impl FaultMix {
    fn label(self) -> &'static str {
        match self {
            FaultMix::Corruption => "corruption",
            FaultMix::WorkerKill => "worker_kill",
            FaultMix::MidWindowRestart => "mid_window_restart",
        }
    }
}

/// What one shard reports back after its faulty run + fault-free replay.
/// Restart counts are *not* here: the shards share one scenario hub, so
/// restarts are read once, hub-wide, from the `server.restarts` counter.
struct ShardReport {
    faults: u64,
    kills: u64,
    survived: u64,
    recovery_ns: f64,
    /// Every `(user, top)` with a released candidate set in the shard's
    /// final snapshot — the live-set input to the scenario's ledger audit.
    released: Vec<(u64, TopKey)>,
}

/// The same deterministic home grid the serving benchmark uses.
fn home_of(user: usize) -> Point {
    Point::new((user % 1_000) as f64 * 2_000.0, (user / 1_000) as f64 * 2_000.0)
}

/// Swallows the supervisor's own injected-fault panics (they are caught
/// and recovered, but the default hook would still spam stderr with a
/// backtrace per kill); every other panic keeps the previous hook.
fn quiet_injected_faults() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|message| message.contains("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Produces a frame guaranteed not to decode: every [`ClientRequest`]
/// layout is fixed-size, so a truncation, a tag flip (landing on a tag
/// with a different size, or no tag at all), or a trailing byte all fail
/// the strict decoder.
fn corrupt_frame(rng: &mut StdRng, template: &ClientRequest) -> Vec<u8> {
    let mut bytes = template.encode().to_vec();
    match rng.gen_range(0..3u32) {
        0 => {
            let cut = rng.gen_range(0..bytes.len());
            bytes.truncate(cut);
        }
        1 => bytes[0] ^= 1 << rng.gen_range(0..8u32),
        _ => bytes.push(rng.gen()),
    }
    bytes
}

/// The per-shard kill schedule for a fault mix, as request ordinals on
/// the server's fault-plan clock (successfully decoded non-shutdown
/// requests; corrupted frames never advance it, so the ordinal of a valid
/// request equals its position in the valid stream).
fn kill_schedule(
    mix: FaultMix,
    config: &Config,
    shard_seed: u64,
    shard_users: usize,
) -> Vec<u64> {
    let ops_per_user = (config.checkins + 1 + config.requests) as u64;
    let total_ops = shard_users as u64 * ops_per_user;
    match mix {
        FaultMix::Corruption => Vec::new(),
        FaultMix::WorkerKill => {
            let mut rng = seeded(derive_seed(shard_seed, 0xdead));
            (0..config.kills)
                .filter(|_| total_ops > 0)
                .map(|_| rng.gen_range(0..total_ops))
                .collect()
        }
        // One kill per user (up to the budget), landed mid check-in phase:
        // the window is open, its buffer is non-empty, and the candidate
        // draw for the eventual close is still in the RNG's future.
        FaultMix::MidWindowRestart => (0..config.kills.min(shard_users))
            .map(|k| k as u64 * ops_per_user + (config.checkins as u64) / 2)
            .collect(),
    }
}

/// Drives one shard's valid workload through a supervised server while
/// injecting `mix`, then replays the identical stream on a fault-free
/// server and asserts byte-identical responses, byte-identical final
/// snapshots, and zero candidate re-draws.
fn drive_shard(
    config: &Config,
    mix: FaultMix,
    shard: usize,
    shards: usize,
    hub: &Telemetry,
) -> ShardReport {
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let shard_seed = derive_seed(config.seed, 0xc4a0_5000 + shard as u64);
    let users: Vec<usize> = (shard..config.users).step_by(shards).collect();

    let plan = FaultPlan::kill_at(kill_schedule(mix, config, shard_seed, users.len()));
    let kills = plan.remaining() as u64;
    let (server, handle) = EdgeServer::spawn_with(
        sys,
        shard_seed,
        ServerOptions { fault_plan: plan, telemetry: hub.clone(), ..ServerOptions::default() },
    );

    let corruptions = if mix == FaultMix::Corruption { config.corruptions } else { 0 };
    let total_ops = users.len() * (config.checkins + 1 + config.requests);
    let corrupt_every = total_ops.checked_div(corruptions).unwrap_or(usize::MAX).max(1);
    let mut corrupt_rng = seeded(derive_seed(shard_seed, 0xbad));
    let mut faults = kills;

    // The valid stream and its observed response frames, for the replay.
    let mut transcript: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut op = 0usize;
    let exchange = |handle: &EdgeHandle,
                        request: ClientRequest,
                        transcript: &mut Vec<(Vec<u8>, Vec<u8>)>| {
        let frame = request.encode().to_vec();
        let response = handle
            .call_raw(frame.clone())
            .unwrap_or_else(|e| panic!("valid request must survive the faults: {e}"));
        transcript.push((frame, response.encode().to_vec()));
    };

    for &u in &users {
        let user = UserId::new(u as u32);
        let home = home_of(u);
        for t in 0..config.checkins + 1 + config.requests {
            if op.is_multiple_of(corrupt_every) && faults - kills < corruptions as u64 {
                // Each corrupted frame comes from a *fresh* client clone,
                // so strikes never accumulate into a ban here (the vandal
                // below covers that path) and the valid stream is never
                // collateral damage.
                let polluter = handle.clone();
                let template =
                    ClientRequest::CheckIn { user, location: home, timestamp: t as i64 };
                match polluter.call_raw(corrupt_frame(&mut corrupt_rng, &template)) {
                    Err(TransportError::Malformed { .. }) => faults += 1,
                    other => panic!("corrupted frame must be rejected, got {other:?}"),
                }
            }
            let request = if t < config.checkins {
                ClientRequest::CheckIn { user, location: home, timestamp: t as i64 }
            } else if t == config.checkins {
                ClientRequest::FinalizeWindow { user }
            } else {
                ClientRequest::RequestLocation { user, location: home }
            };
            exchange(&handle, request, &mut transcript);
            op += 1;
        }
    }

    if mix == FaultMix::Corruption {
        // A vandal spamming garbage until the server drops it: the first
        // `limit - 1` frames bounce with decrementing strike counts, the
        // last one closes the vandal's channel (observed as Disconnected).
        let vandal = handle.clone();
        let limit = ServerOptions::default().malformed_limit;
        for strike in 0..limit {
            let outcome = vandal.call_raw(vec![0xEE; 4]);
            faults += 1;
            if strike + 1 < limit {
                assert!(
                    matches!(outcome, Err(TransportError::Malformed { .. })),
                    "vandal strike {strike} should bounce, got {outcome:?}"
                );
            } else {
                assert_eq!(
                    outcome,
                    Err(TransportError::Disconnected),
                    "vandal must be dropped at the malformed limit"
                );
            }
        }
    }

    handle.shutdown().expect("faulty server must still shut down cleanly");
    let faulty = server.join().expect("supervised worker must survive its schedule");
    let faulty_snap = faulty.snapshot();
    // (The kill-equals-restart check moved to the scenario level: health
    // counters are hub-wide now that the shards share one hub.)

    // Fault-free replay of the identical valid stream, same seed. The
    // replay server gets a *private* hub: with identical seeds it re-draws
    // every candidate set, which a shared ledger would read as a double
    // spend.
    let (clean_server, clean_handle) =
        EdgeServer::spawn_with(sys, shard_seed, ServerOptions::default());
    for (request_frame, response_frame) in &transcript {
        let response = clean_handle
            .call_raw(request_frame.clone())
            .expect("fault-free replay must serve every request");
        assert_eq!(
            response.encode().as_ref(),
            response_frame.as_slice(),
            "a surviving response diverged from the fault-free run"
        );
    }
    clean_handle.shutdown().expect("replay shutdown");
    let clean_snap =
        clean_server.join().expect("fault-free server cannot fail").snapshot();
    assert_eq!(
        candidate_redraws(&clean_snap, &faulty_snap).expect("snapshots are well-formed"),
        0,
        "a crash-restore cycle re-drew a released candidate set"
    );
    assert_eq!(
        faulty_snap.encode(),
        clean_snap.encode(),
        "final device state must match the fault-free run bit-for-bit"
    );

    // Time the recovery path itself on the final checkpoint: decode the
    // versioned checksummed log and rebuild a device from it, through the
    // same zero-copy pooled path the supervisor takes.
    let encoded = faulty_snap.encode();
    let mut recovery_ns = f64::INFINITY;
    for _ in 0..8 {
        let start = Instant::now();
        let restored =
            EdgeDevice::restore_from_checkpoint(sys, &encoded).expect("checkpoint restores");
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(&restored);
        recovery_ns = recovery_ns.min(elapsed.max(1.0));
    }

    let released = faulty_snap
        .released_sets()
        .expect("final snapshot decodes")
        .into_iter()
        .map(|(user, top)| (u64::from(user.raw()), top_key(top.x, top.y)))
        .collect();
    ShardReport { faults, kills, survived: transcript.len() as u64, recovery_ns, released }
}

/// Runs one replayable fault family at one shard count: the shards share
/// one telemetry hub, and the scenario closes with two hub-level checks —
/// every injected kill was exactly one supervised restart, and the
/// privacy-budget ledger audits clean against the union of the final
/// shard snapshots (no double spend, no unledgered release).
fn replayed_scenario(config: &Config, mix: FaultMix, shards: usize) -> ChaosRow {
    let start = Instant::now();
    let hub = Telemetry::new();
    let reports: Vec<ShardReport> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..shards)
            .map(|shard| {
                let hub = &hub;
                scope.spawn(move || drive_shard(config, mix, shard, shards, hub))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("shard thread")).collect()
    });

    let kills: u64 = reports.iter().map(|r| r.kills).sum();
    let restarts = hub
        .registry()
        .snapshot()
        .counter("server.restarts")
        .expect("shared hub carries the restart counter");
    assert_eq!(restarts, kills, "every injected kill is exactly one supervised restart");
    let live: Vec<(u64, TopKey)> =
        reports.iter().flat_map(|r| r.released.iter().copied()).collect();
    hub.ledger()
        .assert_no_double_spend(live)
        .expect("a crash-restore cycle double-spent (or failed to ledger) a privacy budget");

    ChaosRow {
        name: format!("chaos/{}/{shards}", mix.label()),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        faults_injected: reports.iter().map(|r| r.faults).sum(),
        requests_survived: reports.iter().map(|r| r.survived).sum(),
        restarts,
        recovery_ns: reports.iter().map(|r| r.recovery_ns).fold(f64::INFINITY, f64::min),
        duplicates_injected: 0,
        duplicates_suppressed: 0,
        breaker_transitions: 0,
        degraded_serves: 0,
        deadline_misses: 0,
        threads: shards,
        telemetry: hub,
    }
}

/// Floods a deliberately tiny request queue from a concurrent client
/// burst and asserts the backpressure contract: every request is either
/// served or shed with a structured `Overloaded` error — nothing hangs,
/// and the queue-depth gauge returns to zero.
fn flood_scenario(config: &Config, shards: usize) -> ChaosRow {
    let start = Instant::now();
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let seed = derive_seed(config.seed, 0xf100d + shards as u64);
    let hub = Telemetry::new();
    let (server, handle) = EdgeServer::spawn_with(
        sys,
        seed,
        ServerOptions { queue_capacity: 2, telemetry: hub.clone(), ..ServerOptions::default() },
    );

    let clients = (shards * 2).max(2);
    let per_client = (config.requests.max(1)) * 4;
    let policy =
        RetryPolicy { max_attempts: 5, backoff_base: 8, backoff_cap: 256, disconnect_attempts: 1 };
    let (mut served, mut shed) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let user = UserId::new(c as u32);
                    let home = home_of(c);
                    let (mut served, mut shed) = (0u64, 0u64);
                    for t in 0..per_client {
                        let request =
                            ClientRequest::CheckIn { user, location: home, timestamp: t as i64 };
                        match handle.call_with_retry(request, &policy) {
                            Ok(EdgeResponse::Ack) => served += 1,
                            Err(TransportError::Overloaded) => shed += 1,
                            other => panic!("flood outcome must be Ack or Overloaded: {other:?}"),
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        for worker in workers {
            let (ok, dropped) = worker.join().expect("flood client thread");
            served += ok;
            shed += dropped;
        }
    });

    handle.shutdown().expect("flooded server must still shut down cleanly");
    let health = server.health();
    let _edge = server.join().expect("flooded server must not crash");
    assert_eq!(
        served + shed,
        (clients * per_client) as u64,
        "every flood request must resolve: served or structurally shed"
    );
    assert_eq!(health.queue_depth, 0, "queue-depth gauge must return to zero");
    assert!(
        health.overload_rejections >= shed,
        "every shed request burned at least one overload rejection"
    );

    ChaosRow {
        name: format!("chaos/flood/{shards}"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        faults_injected: health.overload_rejections,
        requests_survived: served,
        restarts: health.restarts,
        recovery_ns: 0.0,
        duplicates_injected: 0,
        duplicates_suppressed: 0,
        breaker_transitions: 0,
        degraded_serves: 0,
        deadline_misses: 0,
        threads: shards,
        telemetry: hub,
    }
}

/// One fabric fleet run's partition-invariant witnesses.
struct FabricRun {
    /// Every served released location, in request order.
    reports: Vec<Point>,
    /// Sorted `(user, top)` pairs with a released candidate set in the
    /// final shard checkpoints.
    released: Vec<(u64, TopKey)>,
    stats: privlocad::FabricStats,
    restarts: u64,
    suppressed: u64,
    recovery_ns: f64,
    hub: Telemetry,
}

/// Drives the full valid workload through a [`FabricRouter`] over a
/// (possibly faulty) link, with seeded worker kills inside the
/// supervisor's restart budget when `kills` is set.
fn fabric_fleet(config: &Config, shards: usize, plan: ChannelFaultPlan, kills: bool) -> FabricRun {
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let hub = Telemetry::new();
    let ops_per_user = (config.checkins + 1 + config.requests) as u64;
    let kill_plans: Vec<FaultPlan> = if kills {
        (0..shards)
            .map(|s| {
                // Round-robin partition: shard `s` serves users ≡ s (mod
                // shards). Stripe the kill ordinals across the shard's own
                // request clock so they are distinct and all fire.
                let ops = (s..config.users).step_by(shards).count() as u64 * ops_per_user;
                let budget = (config.kills as u64).min(ops) as usize;
                if budget == 0 {
                    return FaultPlan::none();
                }
                let stripe = ops / budget as u64;
                let mut rng = seeded(derive_seed(derive_seed(config.seed, 0xfab1), s as u64));
                FaultPlan::kill_at(
                    (0..budget as u64).map(|k| k * stripe + rng.gen_range(0..stripe)),
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let expected_kills: u64 = kill_plans.iter().map(|p| p.remaining() as u64).sum();
    let fabric = FabricRouter::spawn(sys, derive_seed(config.seed, 0xfab0), FabricOptions {
        shards,
        fault_plan: plan,
        kill_plans,
        server: ServerOptions {
            telemetry: hub.clone(),
            max_restarts: (config.kills as u32).max(8),
            backoff_base: 1,
            backoff_cap: 1,
            ..ServerOptions::default()
        },
        ..FabricOptions::default()
    });
    for t in 0..config.checkins {
        for u in 0..config.users {
            fabric
                .check_in(UserId::new(u as u32), home_of(u), t as i64)
                .expect("check-in must survive the faulty link");
        }
    }
    for u in 0..config.users {
        fabric.finalize_window(UserId::new(u as u32)).expect("window close must survive");
    }
    let mut reports = Vec::with_capacity(config.users * config.requests);
    for _ in 0..config.requests {
        for u in 0..config.users {
            match fabric
                .request_location(UserId::new(u as u32), home_of(u))
                .expect("ad request must survive")
            {
                ServedLocation::Fresh(p) => reports.push(p),
                ServedLocation::Degraded(_) => panic!("no breaker may open under masked faults"),
            }
        }
    }
    // Shutdown before reading the totals: delayed duplicate copies flush
    // there and the injected/suppressed accounting must cover them.
    fabric.shutdown().expect("fabric must shut down cleanly");
    let stats = fabric.stats();
    let devices = fabric.join().expect("every shard survives its schedule");
    let metrics = hub.registry().snapshot();
    let restarts = metrics.counter("server.restarts").unwrap_or(0);
    assert_eq!(restarts, expected_kills, "every injected kill is one supervised restart");

    let mut released = Vec::new();
    let mut recovery_ns = f64::INFINITY;
    for device in &devices {
        let snapshot = device.snapshot();
        for (user, top) in snapshot.released_sets().expect("final checkpoint decodes") {
            released.push((u64::from(user.raw()), top_key(top.x, top.y)));
        }
    }
    // Time the recovery path on the first shard's final checkpoint, same
    // as the channel-level scenarios.
    if let Some(device) = devices.first() {
        let encoded = device.snapshot().encode();
        for _ in 0..8 {
            let start = Instant::now();
            let restored =
                EdgeDevice::restore_from_checkpoint(sys, &encoded).expect("checkpoint restores");
            let elapsed = start.elapsed().as_nanos() as f64;
            std::hint::black_box(&restored);
            recovery_ns = recovery_ns.min(elapsed.max(1.0));
        }
    }
    released.sort();
    FabricRun {
        reports,
        released,
        stats,
        restarts,
        suppressed: metrics.counter("server.duplicates_suppressed").unwrap_or(0),
        recovery_ns,
        hub,
    }
}

/// The wire profile for the fabric survival sweep: drops, delayed
/// duplicates, and corruption together, every family masked.
fn fabric_plan(seed: u64) -> ChannelFaultPlan {
    ChannelFaultPlan {
        seed: derive_seed(seed, 0xfab2),
        drop_per_mille: 100,
        duplicate_per_mille: 200,
        duplicate_delay: 3,
        corrupt_per_mille: 80,
        outages: Vec::new(),
    }
}

/// One `chaos/fabric/{shards}` row: the faulty fleet at `shards` must
/// reproduce the fault-free single-shard reference bit-for-bit — same
/// served locations in the same order, same final released sets — while
/// every duplicate is suppressed and the ledger audits exactly-once.
fn fabric_scenario(config: &Config, clean: &FabricRun, shards: usize) -> ChaosRow {
    let start = Instant::now();
    let faulty = fabric_fleet(config, shards, fabric_plan(config.seed), true);
    assert!(faulty.stats.drops_injected > 0, "the plan must drop frames");
    assert!(faulty.stats.corruptions_injected > 0, "the plan must corrupt frames");
    assert!(faulty.stats.duplicates_injected > 0, "the plan must duplicate frames");
    assert_eq!(
        faulty.suppressed, faulty.stats.duplicates_injected,
        "every duplicate delivery must be replayed from the dedup window"
    );
    assert_eq!(faulty.stats.breaker_transitions, 0, "masked faults never trip a breaker");
    assert_eq!(faulty.stats.deadline_misses, 0, "retransmission must stay inside the budget");
    assert_eq!(
        faulty.reports, clean.reports,
        "served locations diverged from the fault-free single-shard run"
    );
    assert_eq!(
        faulty.released, clean.released,
        "released candidate sets diverged from the fault-free run"
    );
    faulty
        .hub
        .ledger()
        .assert_no_double_spend(faulty.released.clone())
        .expect("duplicates + restarts double-spent (or failed to ledger) a privacy budget");

    let ops = config.users as u64 * (config.checkins + 1 + config.requests) as u64;
    ChaosRow {
        name: format!("chaos/fabric/{shards}"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        faults_injected: faulty.stats.drops_injected
            + faulty.stats.corruptions_injected
            + faulty.stats.duplicates_injected
            + faulty.restarts,
        requests_survived: ops,
        restarts: faulty.restarts,
        recovery_ns: faulty.recovery_ns,
        duplicates_injected: faulty.stats.duplicates_injected,
        duplicates_suppressed: faulty.suppressed,
        breaker_transitions: 0,
        degraded_serves: 0,
        deadline_misses: 0,
        threads: shards,
        telemetry: faulty.hub,
    }
}

/// One `chaos/degraded/{shards}` row: a scheduled outage on user 0's
/// lane walks the breaker through open → probe → reopen → close while
/// reads are served from the stale cache of *released* obfuscated
/// locations and writes fail closed; a second, permanently dead wire
/// exercises the transmission deadline.
fn degraded_scenario(config: &Config, shards: usize) -> ChaosRow {
    let start = Instant::now();
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let hub = Telemetry::new();
    let seed = derive_seed(config.seed, 0xdeca1);
    // Lane-0 ordinals: `checkins` check-ins, the window close, then one
    // released request — the outage starts right after it.
    let outage_from = config.checkins as u64 + 2;
    let fabric = FabricRouter::spawn(sys, seed, FabricOptions {
        shards,
        fault_plan: ChannelFaultPlan {
            seed,
            outages: vec![LaneOutage { lane: 0, from: outage_from, calls: 3 }],
            ..ChannelFaultPlan::none()
        },
        breaker: BreakerConfig { failure_threshold: 2, cooldown: 4, max_cooldown: 16 },
        server: ServerOptions { telemetry: hub.clone(), ..ServerOptions::default() },
        ..FabricOptions::default()
    });
    for t in 0..config.checkins {
        for u in 0..config.users {
            fabric.check_in(UserId::new(u as u32), home_of(u), t as i64).expect("priming check-in");
        }
    }
    for u in 0..config.users {
        fabric.finalize_window(UserId::new(u as u32)).expect("priming window close");
    }
    let user = UserId::new(0);
    let mut fresh = Vec::new();
    match fabric.request_location(user, home_of(0)).expect("pre-outage release") {
        ServedLocation::Fresh(p) => fresh.push(p),
        ServedLocation::Degraded(_) => panic!("the breaker cannot be open yet"),
    }
    // The burst rides lane 0 only, so the breaker walk is identical at
    // every shard count. Writes while open must fail closed.
    let (mut degraded, mut write_rejections, mut outage_hits) = (0u64, 0u64, 0u64);
    for i in 0..24 {
        match fabric.request_location(user, home_of(0)) {
            Ok(ServedLocation::Fresh(p)) => fresh.push(p),
            Ok(ServedLocation::Degraded(p)) => {
                assert!(
                    fresh.contains(&p),
                    "a degraded serve leaked a point that was never released"
                );
                degraded += 1;
                if degraded == 1 {
                    // First observed open-breaker serve: a write now must
                    // be rejected, never half-applied against a shaky shard.
                    match fabric.check_in(user, home_of(0), i) {
                        Err(FabricError::Degraded { .. }) => write_rejections += 1,
                        other => panic!("a write while open must fail closed, got {other:?}"),
                    }
                }
            }
            Err(FabricError::Unreachable { .. }) => outage_hits += 1,
            Err(FabricError::Degraded { .. }) => {}
            Err(other) => panic!("unexpected burst outcome: {other}"),
        }
    }
    let stats = fabric.stats();
    let trace = fabric.trace();
    assert!(degraded > 0, "the open breaker must serve degraded reads");
    assert!(write_rejections > 0, "writes while open must be rejected");
    // `failure_threshold` calls open the breaker, and the first half-open
    // probe still lands inside the three-call outage before it passes.
    assert_eq!(outage_hits, 3, "threshold failures plus the failed probe");
    assert!(
        trace.iter().any(|e| matches!(e, BreakerEvent::Opened { .. })),
        "the outage must open the breaker: {trace:?}"
    );
    assert_eq!(
        trace.last(),
        Some(&BreakerEvent::Closed { shard: 0 }),
        "the breaker must close again once the outage passes: {trace:?}"
    );
    assert_eq!(stats.degraded_serves, degraded);
    fabric.shutdown().expect("fabric must shut down cleanly");
    let devices = fabric.join().expect("every shard survives");
    let mut released = Vec::new();
    for device in &devices {
        let snapshot = device.snapshot();
        for (user, top) in snapshot.released_sets().expect("final checkpoint decodes") {
            released.push((u64::from(user.raw()), top_key(top.x, top.y)));
        }
    }
    hub.ledger()
        .assert_no_double_spend(released)
        .expect("degraded serving double-spent (or failed to ledger) a privacy budget");

    // A permanently dead wire with a tiny transmission budget: calls must
    // fail with a structured deadline, never hang or retry forever.
    let dead_seed = derive_seed(seed, 0xdead);
    let dead = FabricRouter::spawn(sys, dead_seed, FabricOptions {
        shards: 1,
        fault_plan: ChannelFaultPlan {
            seed: dead_seed,
            drop_per_mille: 1_000,
            ..ChannelFaultPlan::none()
        },
        breaker: BreakerConfig { failure_threshold: 1, cooldown: 2, max_cooldown: 4 },
        call_budget: 2,
        ..FabricOptions::default()
    });
    let mut deadline_misses = 0u64;
    for t in 0..3 {
        match dead.check_in(user, home_of(0), t) {
            Err(FabricError::DeadlineExceeded { .. }) => deadline_misses += 1,
            Err(FabricError::Degraded { .. }) => {}
            other => panic!("a dead wire must miss its deadline, got {other:?}"),
        }
    }
    let dead_stats = dead.stats();
    assert!(deadline_misses > 0, "the dead wire must burn its transmission budget");
    assert_eq!(dead_stats.deadline_misses, deadline_misses);
    dead.shutdown().expect("dead-wire fabric still shuts down");
    dead.join().expect("dead-wire shard survives");

    let ops = config.users as u64 * (config.checkins + 1) as u64 + 1 + fresh.len() as u64;
    ChaosRow {
        name: format!("chaos/degraded/{shards}"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        faults_injected: stats.outage_failures + dead_stats.drops_injected,
        requests_survived: ops,
        restarts: 0,
        recovery_ns: 0.0,
        duplicates_injected: 0,
        duplicates_suppressed: 0,
        breaker_transitions: stats.breaker_transitions + dead_stats.breaker_transitions,
        degraded_serves: stats.degraded_serves,
        deadline_misses,
        threads: shards,
        telemetry: hub,
    }
}

/// Runs every channel-level fault family at shard counts 1 and
/// `config.threads`, then the fabric survival sweep at {1, 4, 16}
/// shards against one fault-free single-shard reference.
pub fn run(config: &Config) -> Outcome {
    quiet_injected_faults();
    let mut shard_counts = vec![1, config.threads.max(1)];
    shard_counts.dedup();
    let mut rows = Vec::new();
    for &shards in &shard_counts {
        for mix in [FaultMix::Corruption, FaultMix::WorkerKill, FaultMix::MidWindowRestart] {
            rows.push(replayed_scenario(config, mix, shards));
        }
        rows.push(flood_scenario(config, shards));
        rows.push(degraded_scenario(config, shards));
    }
    // The survival contract is cross-partition: one fault-free reference,
    // three faulty fleet widths, all bit-identical.
    let clean = fabric_fleet(config, 1, ChannelFaultPlan::none(), false);
    assert_eq!(clean.stats.duplicates_injected, 0);
    assert_eq!(clean.restarts, 0);
    for shards in [1, 4, 16] {
        rows.push(fabric_scenario(config, &clean, shards));
    }
    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_survive_and_report_their_shape() {
        let config = Config {
            users: 4,
            checkins: 8,
            requests: 4,
            kills: 2,
            corruptions: 4,
            seed: 7,
            threads: 2,
        };
        let out = run(&config);
        let names: Vec<&str> = out.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "chaos/corruption/1",
                "chaos/worker_kill/1",
                "chaos/mid_window_restart/1",
                "chaos/flood/1",
                "chaos/degraded/1",
                "chaos/corruption/2",
                "chaos/worker_kill/2",
                "chaos/mid_window_restart/2",
                "chaos/flood/2",
                "chaos/degraded/2",
                "chaos/fabric/1",
                "chaos/fabric/4",
                "chaos/fabric/16",
            ]
        );
        let ops = (config.users * (config.checkins + 1 + config.requests)) as u64;
        for row in &out.rows {
            assert!(row.wall_ms > 0.0, "{}", row.name);
            assert!(row.duplicates_suppressed <= row.duplicates_injected, "{}", row.name);
            let metrics = row.telemetry.registry().snapshot();
            if row.name.starts_with("chaos/flood") {
                assert_eq!(row.restarts, 0, "{}", row.name);
            } else if row.name.starts_with("chaos/degraded") {
                // The outage walks the breaker and serves stale reads;
                // the dead wire misses its transmission deadline.
                assert_eq!(row.restarts, 0, "{}", row.name);
                assert!(row.degraded_serves > 0, "{}", row.name);
                assert!(row.breaker_transitions > 0, "{}", row.name);
                assert!(row.deadline_misses > 0, "{}", row.name);
                assert!(row.faults_injected > 0, "{}", row.name);
            } else if row.name.starts_with("chaos/fabric") {
                // The faulty-link sweep survives the full stream with
                // every duplicate suppressed and every kill restarted.
                assert_eq!(row.requests_survived, ops, "{}", row.name);
                assert!(row.duplicates_injected > 0, "{}", row.name);
                assert_eq!(row.duplicates_suppressed, row.duplicates_injected, "{}", row.name);
                assert!(row.restarts > 0, "{}", row.name);
                assert_eq!(row.breaker_transitions, 0, "{}", row.name);
                assert!(row.recovery_ns > 0.0, "{}", row.name);
            } else {
                // Replayable scenarios serve the full valid stream no
                // matter how it is sharded.
                assert_eq!(row.requests_survived, ops, "{}", row.name);
                assert!(row.faults_injected > 0, "{}", row.name);
                assert!(row.recovery_ns > 0.0, "{}", row.name);
                assert_eq!(
                    metrics.counter("server.requests"),
                    Some(ops),
                    "{}: hub request counter",
                    row.name
                );
            }
            if row.name.starts_with("chaos/worker_kill")
                || row.name.starts_with("chaos/mid_window_restart")
            {
                assert!(row.restarts > 0, "{}", row.name);
                assert_eq!(row.restarts, row.faults_injected, "{}", row.name);
            }
            // Every scenario carries an audited hub whose counters agree
            // with the row.
            if !row.name.starts_with("chaos/flood") {
                assert_eq!(
                    row.telemetry.ledger().totals().candidate_sets,
                    config.users as u64,
                    "{}: one budget spend per user",
                    row.name
                );
            }
            assert_eq!(
                metrics.counter("server.restarts").unwrap_or(0),
                row.restarts,
                "{}",
                row.name
            );
        }
        assert_eq!(out.table().len(), 13);
    }

    #[test]
    fn corrupt_frames_never_decode() {
        let mut rng = seeded(3);
        let template = ClientRequest::CheckIn {
            user: UserId::new(9),
            location: Point::new(10.0, 20.0),
            timestamp: 4,
        };
        for _ in 0..500 {
            let bytes = corrupt_frame(&mut rng, &template);
            assert!(ClientRequest::decode(&bytes).is_err(), "{bytes:02x?}");
        }
    }

    #[test]
    fn mid_window_schedule_lands_inside_open_windows() {
        let config = Config { kills: 3, ..Config::default() };
        let kills = kill_schedule(FaultMix::MidWindowRestart, &config, 1, 2);
        let ops_per_user = (config.checkins + 1 + config.requests) as u64;
        assert_eq!(kills.len(), 2);
        for (k, &ordinal) in kills.iter().enumerate() {
            let within = ordinal - k as u64 * ops_per_user;
            assert!(within < config.checkins as u64, "kill {ordinal} is not mid-window");
        }
    }
}
