//! The `bench chaos` harness: seeded fault schedules driven through the
//! supervised [`EdgeServer`] serving path, with the surviving outputs
//! checked bit-for-bit against a fault-free run.
//!
//! Four fault families, each run at every shard count (1 and `threads`
//! serving loops, users partitioned round-robin across them):
//!
//! 1. `chaos/corruption/{T}` — seeded malformed frames (truncations, tag
//!    bit flips, trailing garbage) interleaved with the valid workload,
//!    plus one vandal client driven past the consecutive-malformed limit
//!    to exercise the ban path.
//! 2. `chaos/worker_kill/{T}` — seeded worker crashes at random request
//!    ordinals; every crash is caught by the supervisor, the device is
//!    restored from its last committed checkpoint, and the interrupted
//!    batch is retried.
//! 3. `chaos/mid_window_restart/{T}` — crashes placed *inside* open
//!    profile windows (between check-ins, before the window close), the
//!    schedule most likely to tempt an implementation into re-drawing
//!    candidates.
//! 4. `chaos/flood/{T}` — a tiny request queue under a concurrent client
//!    burst; requests are either served or shed with a structured
//!    [`TransportError::Overloaded`], never hung.
//!
//! For the three replayable families the harness replays the exact valid
//! request stream against a fresh fault-free server with the same seed
//! and asserts (a) every surviving response frame is byte-identical, (b)
//! the final device snapshots are byte-identical, and (c)
//! [`candidate_redraws`] between the two final snapshots is **zero** — a
//! crash never re-draws a released candidate set, which is the privacy
//! property the recovery log exists to protect (DESIGN.md §12).

use std::sync::Once;
use std::time::Instant;

use privlocad::protocol::{ClientRequest, EdgeResponse};
use privlocad::{
    candidate_redraws, EdgeDevice, EdgeHandle, EdgeServer, FaultPlan,
    RetryPolicy, ServerOptions, SystemConfig, TransportError,
};
use privlocad_geo::rng::{derive_seed, seeded};
use privlocad_geo::Point;
use privlocad_mobility::UserId;
use privlocad_telemetry::{top_key, Telemetry, TopKey};
use rand::rngs::StdRng;
use rand::Rng;

use crate::report::Table;

/// Chaos-harness parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Fleet size, partitioned round-robin across the shard servers.
    pub users: usize,
    /// Check-ins per user before its window close.
    pub checkins: usize,
    /// Ad requests per user after its window close.
    pub requests: usize,
    /// Injected worker crashes per shard in the kill scenarios.
    pub kills: usize,
    /// Corrupted frames injected per shard in the corruption scenario.
    pub corruptions: usize,
    /// Master seed; every schedule and device RNG is derived from it.
    pub seed: u64,
    /// Upper shard count; scenarios run at 1 and `threads` serving loops.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            users: 8,
            checkins: 12,
            requests: 16,
            kills: 3,
            corruptions: 8,
            seed: 0,
            threads: 2,
        }
    }
}

/// One chaos scenario's outcome.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario label, `chaos/...`.
    pub name: String,
    /// Wall-clock for the whole scenario (drive + replay + asserts).
    pub wall_ms: f64,
    /// Faults injected: worker kills, corrupted frames, or (for the flood
    /// scenario) overload rejections observed.
    pub faults_injected: u64,
    /// Valid requests that received a correct response despite the faults.
    pub requests_survived: u64,
    /// Supervised worker restarts across every shard.
    pub restarts: u64,
    /// Fastest observed decode+restore of the final recovery checkpoint,
    /// in nanoseconds (0 for the flood scenario, which never crashes).
    pub recovery_ns: f64,
    /// Shard servers the fleet was partitioned across.
    pub threads: usize,
    /// The scenario's telemetry hub, shared by its faulty shard servers
    /// (the fault-free replay servers publish elsewhere — same seeds would
    /// double-record every budget spend). Already audited: the run asserts
    /// [`privlocad_telemetry::Ledger::assert_no_double_spend`] against the
    /// union of the final shard snapshots before returning.
    pub telemetry: Telemetry,
}

/// The full chaos-harness result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// One row per (scenario, shard count), in execution order.
    pub rows: Vec<ChaosRow>,
}

impl Outcome {
    /// Renders the summary table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "chaos: seeded faults over the supervised serving path",
            &["scenario", "shards", "faults", "survived", "restarts", "recovery µs"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.name.clone(),
                row.threads.to_string(),
                row.faults_injected.to_string(),
                row.requests_survived.to_string(),
                row.restarts.to_string(),
                format!("{:.1}", row.recovery_ns * 1e-3),
            ]);
        }
        table
    }
}

/// The fault family a scenario injects while driving the valid workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMix {
    /// Corrupted frames + one vandal client driven into the ban.
    Corruption,
    /// Worker kills at seeded random request ordinals.
    WorkerKill,
    /// Worker kills placed inside open profile windows.
    MidWindowRestart,
}

impl FaultMix {
    fn label(self) -> &'static str {
        match self {
            FaultMix::Corruption => "corruption",
            FaultMix::WorkerKill => "worker_kill",
            FaultMix::MidWindowRestart => "mid_window_restart",
        }
    }
}

/// What one shard reports back after its faulty run + fault-free replay.
/// Restart counts are *not* here: the shards share one scenario hub, so
/// restarts are read once, hub-wide, from the `server.restarts` counter.
struct ShardReport {
    faults: u64,
    kills: u64,
    survived: u64,
    recovery_ns: f64,
    /// Every `(user, top)` with a released candidate set in the shard's
    /// final snapshot — the live-set input to the scenario's ledger audit.
    released: Vec<(u64, TopKey)>,
}

/// The same deterministic home grid the serving benchmark uses.
fn home_of(user: usize) -> Point {
    Point::new((user % 1_000) as f64 * 2_000.0, (user / 1_000) as f64 * 2_000.0)
}

/// Swallows the supervisor's own injected-fault panics (they are caught
/// and recovered, but the default hook would still spam stderr with a
/// backtrace per kill); every other panic keeps the previous hook.
fn quiet_injected_faults() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|message| message.contains("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Produces a frame guaranteed not to decode: every [`ClientRequest`]
/// layout is fixed-size, so a truncation, a tag flip (landing on a tag
/// with a different size, or no tag at all), or a trailing byte all fail
/// the strict decoder.
fn corrupt_frame(rng: &mut StdRng, template: &ClientRequest) -> Vec<u8> {
    let mut bytes = template.encode().to_vec();
    match rng.gen_range(0..3u32) {
        0 => {
            let cut = rng.gen_range(0..bytes.len());
            bytes.truncate(cut);
        }
        1 => bytes[0] ^= 1 << rng.gen_range(0..8u32),
        _ => bytes.push(rng.gen()),
    }
    bytes
}

/// The per-shard kill schedule for a fault mix, as request ordinals on
/// the server's fault-plan clock (successfully decoded non-shutdown
/// requests; corrupted frames never advance it, so the ordinal of a valid
/// request equals its position in the valid stream).
fn kill_schedule(
    mix: FaultMix,
    config: &Config,
    shard_seed: u64,
    shard_users: usize,
) -> Vec<u64> {
    let ops_per_user = (config.checkins + 1 + config.requests) as u64;
    let total_ops = shard_users as u64 * ops_per_user;
    match mix {
        FaultMix::Corruption => Vec::new(),
        FaultMix::WorkerKill => {
            let mut rng = seeded(derive_seed(shard_seed, 0xdead));
            (0..config.kills)
                .filter(|_| total_ops > 0)
                .map(|_| rng.gen_range(0..total_ops))
                .collect()
        }
        // One kill per user (up to the budget), landed mid check-in phase:
        // the window is open, its buffer is non-empty, and the candidate
        // draw for the eventual close is still in the RNG's future.
        FaultMix::MidWindowRestart => (0..config.kills.min(shard_users))
            .map(|k| k as u64 * ops_per_user + (config.checkins as u64) / 2)
            .collect(),
    }
}

/// Drives one shard's valid workload through a supervised server while
/// injecting `mix`, then replays the identical stream on a fault-free
/// server and asserts byte-identical responses, byte-identical final
/// snapshots, and zero candidate re-draws.
fn drive_shard(
    config: &Config,
    mix: FaultMix,
    shard: usize,
    shards: usize,
    hub: &Telemetry,
) -> ShardReport {
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let shard_seed = derive_seed(config.seed, 0xc4a0_5000 + shard as u64);
    let users: Vec<usize> = (shard..config.users).step_by(shards).collect();

    let plan = FaultPlan::kill_at(kill_schedule(mix, config, shard_seed, users.len()));
    let kills = plan.remaining() as u64;
    let (server, handle) = EdgeServer::spawn_with(
        sys,
        shard_seed,
        ServerOptions { fault_plan: plan, telemetry: hub.clone(), ..ServerOptions::default() },
    );

    let corruptions = if mix == FaultMix::Corruption { config.corruptions } else { 0 };
    let total_ops = users.len() * (config.checkins + 1 + config.requests);
    let corrupt_every = total_ops.checked_div(corruptions).unwrap_or(usize::MAX).max(1);
    let mut corrupt_rng = seeded(derive_seed(shard_seed, 0xbad));
    let mut faults = kills;

    // The valid stream and its observed response frames, for the replay.
    let mut transcript: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut op = 0usize;
    let exchange = |handle: &EdgeHandle,
                        request: ClientRequest,
                        transcript: &mut Vec<(Vec<u8>, Vec<u8>)>| {
        let frame = request.encode().to_vec();
        let response = handle
            .call_raw(frame.clone())
            .unwrap_or_else(|e| panic!("valid request must survive the faults: {e}"));
        transcript.push((frame, response.encode().to_vec()));
    };

    for &u in &users {
        let user = UserId::new(u as u32);
        let home = home_of(u);
        for t in 0..config.checkins + 1 + config.requests {
            if op.is_multiple_of(corrupt_every) && faults - kills < corruptions as u64 {
                // Each corrupted frame comes from a *fresh* client clone,
                // so strikes never accumulate into a ban here (the vandal
                // below covers that path) and the valid stream is never
                // collateral damage.
                let polluter = handle.clone();
                let template =
                    ClientRequest::CheckIn { user, location: home, timestamp: t as i64 };
                match polluter.call_raw(corrupt_frame(&mut corrupt_rng, &template)) {
                    Err(TransportError::Malformed { .. }) => faults += 1,
                    other => panic!("corrupted frame must be rejected, got {other:?}"),
                }
            }
            let request = if t < config.checkins {
                ClientRequest::CheckIn { user, location: home, timestamp: t as i64 }
            } else if t == config.checkins {
                ClientRequest::FinalizeWindow { user }
            } else {
                ClientRequest::RequestLocation { user, location: home }
            };
            exchange(&handle, request, &mut transcript);
            op += 1;
        }
    }

    if mix == FaultMix::Corruption {
        // A vandal spamming garbage until the server drops it: the first
        // `limit - 1` frames bounce with decrementing strike counts, the
        // last one closes the vandal's channel (observed as Disconnected).
        let vandal = handle.clone();
        let limit = ServerOptions::default().malformed_limit;
        for strike in 0..limit {
            let outcome = vandal.call_raw(vec![0xEE; 4]);
            faults += 1;
            if strike + 1 < limit {
                assert!(
                    matches!(outcome, Err(TransportError::Malformed { .. })),
                    "vandal strike {strike} should bounce, got {outcome:?}"
                );
            } else {
                assert_eq!(
                    outcome,
                    Err(TransportError::Disconnected),
                    "vandal must be dropped at the malformed limit"
                );
            }
        }
    }

    handle.shutdown().expect("faulty server must still shut down cleanly");
    let faulty = server.join().expect("supervised worker must survive its schedule");
    let faulty_snap = faulty.snapshot();
    // (The kill-equals-restart check moved to the scenario level: health
    // counters are hub-wide now that the shards share one hub.)

    // Fault-free replay of the identical valid stream, same seed. The
    // replay server gets a *private* hub: with identical seeds it re-draws
    // every candidate set, which a shared ledger would read as a double
    // spend.
    let (clean_server, clean_handle) =
        EdgeServer::spawn_with(sys, shard_seed, ServerOptions::default());
    for (request_frame, response_frame) in &transcript {
        let response = clean_handle
            .call_raw(request_frame.clone())
            .expect("fault-free replay must serve every request");
        assert_eq!(
            response.encode().as_ref(),
            response_frame.as_slice(),
            "a surviving response diverged from the fault-free run"
        );
    }
    clean_handle.shutdown().expect("replay shutdown");
    let clean_snap =
        clean_server.join().expect("fault-free server cannot fail").snapshot();
    assert_eq!(
        candidate_redraws(&clean_snap, &faulty_snap).expect("snapshots are well-formed"),
        0,
        "a crash-restore cycle re-drew a released candidate set"
    );
    assert_eq!(
        faulty_snap.encode(),
        clean_snap.encode(),
        "final device state must match the fault-free run bit-for-bit"
    );

    // Time the recovery path itself on the final checkpoint: decode the
    // versioned checksummed log and rebuild a device from it, through the
    // same zero-copy pooled path the supervisor takes.
    let encoded = faulty_snap.encode();
    let mut recovery_ns = f64::INFINITY;
    for _ in 0..8 {
        let start = Instant::now();
        let restored =
            EdgeDevice::restore_from_checkpoint(sys, &encoded).expect("checkpoint restores");
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(&restored);
        recovery_ns = recovery_ns.min(elapsed.max(1.0));
    }

    let released = faulty_snap
        .released_sets()
        .expect("final snapshot decodes")
        .into_iter()
        .map(|(user, top)| (u64::from(user.raw()), top_key(top.x, top.y)))
        .collect();
    ShardReport { faults, kills, survived: transcript.len() as u64, recovery_ns, released }
}

/// Runs one replayable fault family at one shard count: the shards share
/// one telemetry hub, and the scenario closes with two hub-level checks —
/// every injected kill was exactly one supervised restart, and the
/// privacy-budget ledger audits clean against the union of the final
/// shard snapshots (no double spend, no unledgered release).
fn replayed_scenario(config: &Config, mix: FaultMix, shards: usize) -> ChaosRow {
    let start = Instant::now();
    let hub = Telemetry::new();
    let reports: Vec<ShardReport> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..shards)
            .map(|shard| {
                let hub = &hub;
                scope.spawn(move || drive_shard(config, mix, shard, shards, hub))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("shard thread")).collect()
    });

    let kills: u64 = reports.iter().map(|r| r.kills).sum();
    let restarts = hub
        .registry()
        .snapshot()
        .counter("server.restarts")
        .expect("shared hub carries the restart counter");
    assert_eq!(restarts, kills, "every injected kill is exactly one supervised restart");
    let live: Vec<(u64, TopKey)> =
        reports.iter().flat_map(|r| r.released.iter().copied()).collect();
    hub.ledger()
        .assert_no_double_spend(live)
        .expect("a crash-restore cycle double-spent (or failed to ledger) a privacy budget");

    ChaosRow {
        name: format!("chaos/{}/{shards}", mix.label()),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        faults_injected: reports.iter().map(|r| r.faults).sum(),
        requests_survived: reports.iter().map(|r| r.survived).sum(),
        restarts,
        recovery_ns: reports.iter().map(|r| r.recovery_ns).fold(f64::INFINITY, f64::min),
        threads: shards,
        telemetry: hub,
    }
}

/// Floods a deliberately tiny request queue from a concurrent client
/// burst and asserts the backpressure contract: every request is either
/// served or shed with a structured `Overloaded` error — nothing hangs,
/// and the queue-depth gauge returns to zero.
fn flood_scenario(config: &Config, shards: usize) -> ChaosRow {
    let start = Instant::now();
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let seed = derive_seed(config.seed, 0xf100d + shards as u64);
    let hub = Telemetry::new();
    let (server, handle) = EdgeServer::spawn_with(
        sys,
        seed,
        ServerOptions { queue_capacity: 2, telemetry: hub.clone(), ..ServerOptions::default() },
    );

    let clients = (shards * 2).max(2);
    let per_client = (config.requests.max(1)) * 4;
    let policy = RetryPolicy { max_attempts: 5, backoff_base: 8, backoff_cap: 256 };
    let (mut served, mut shed) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let user = UserId::new(c as u32);
                    let home = home_of(c);
                    let (mut served, mut shed) = (0u64, 0u64);
                    for t in 0..per_client {
                        let request =
                            ClientRequest::CheckIn { user, location: home, timestamp: t as i64 };
                        match handle.call_with_retry(request, &policy) {
                            Ok(EdgeResponse::Ack) => served += 1,
                            Err(TransportError::Overloaded) => shed += 1,
                            other => panic!("flood outcome must be Ack or Overloaded: {other:?}"),
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        for worker in workers {
            let (ok, dropped) = worker.join().expect("flood client thread");
            served += ok;
            shed += dropped;
        }
    });

    handle.shutdown().expect("flooded server must still shut down cleanly");
    let health = server.health();
    let _edge = server.join().expect("flooded server must not crash");
    assert_eq!(
        served + shed,
        (clients * per_client) as u64,
        "every flood request must resolve: served or structurally shed"
    );
    assert_eq!(health.queue_depth, 0, "queue-depth gauge must return to zero");
    assert!(
        health.overload_rejections >= shed,
        "every shed request burned at least one overload rejection"
    );

    ChaosRow {
        name: format!("chaos/flood/{shards}"),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        faults_injected: health.overload_rejections,
        requests_survived: served,
        restarts: health.restarts,
        recovery_ns: 0.0,
        threads: shards,
        telemetry: hub,
    }
}

/// Runs every fault family at shard counts 1 and `config.threads`.
pub fn run(config: &Config) -> Outcome {
    quiet_injected_faults();
    let mut shard_counts = vec![1, config.threads.max(1)];
    shard_counts.dedup();
    let mut rows = Vec::new();
    for &shards in &shard_counts {
        for mix in [FaultMix::Corruption, FaultMix::WorkerKill, FaultMix::MidWindowRestart] {
            rows.push(replayed_scenario(config, mix, shards));
        }
        rows.push(flood_scenario(config, shards));
    }
    Outcome { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_survive_and_report_their_shape() {
        let config = Config {
            users: 4,
            checkins: 8,
            requests: 4,
            kills: 2,
            corruptions: 4,
            seed: 7,
            threads: 2,
        };
        let out = run(&config);
        let names: Vec<&str> = out.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "chaos/corruption/1",
                "chaos/worker_kill/1",
                "chaos/mid_window_restart/1",
                "chaos/flood/1",
                "chaos/corruption/2",
                "chaos/worker_kill/2",
                "chaos/mid_window_restart/2",
                "chaos/flood/2",
            ]
        );
        let ops = (config.users * (config.checkins + 1 + config.requests)) as u64;
        for row in &out.rows {
            assert!(row.wall_ms > 0.0, "{}", row.name);
            if row.name.starts_with("chaos/flood") {
                assert_eq!(row.restarts, 0, "{}", row.name);
            } else {
                // Replayable scenarios serve the full valid stream no
                // matter how it is sharded.
                assert_eq!(row.requests_survived, ops, "{}", row.name);
                assert!(row.faults_injected > 0, "{}", row.name);
                assert!(row.recovery_ns > 0.0, "{}", row.name);
            }
            if row.name.starts_with("chaos/worker_kill")
                || row.name.starts_with("chaos/mid_window_restart")
            {
                assert!(row.restarts > 0, "{}", row.name);
                assert_eq!(row.restarts, row.faults_injected, "{}", row.name);
            }
            // Every scenario carries an audited hub whose serving counters
            // agree with the row.
            let metrics = row.telemetry.registry().snapshot();
            if !row.name.starts_with("chaos/flood") {
                assert_eq!(
                    metrics.counter("server.requests"),
                    Some(ops),
                    "{}: hub request counter",
                    row.name
                );
                assert_eq!(
                    row.telemetry.ledger().totals().candidate_sets,
                    config.users as u64,
                    "{}: one budget spend per user",
                    row.name
                );
            }
            assert_eq!(metrics.counter("server.restarts"), Some(row.restarts), "{}", row.name);
        }
        assert_eq!(out.table().len(), 8);
    }

    #[test]
    fn corrupt_frames_never_decode() {
        let mut rng = seeded(3);
        let template = ClientRequest::CheckIn {
            user: UserId::new(9),
            location: Point::new(10.0, 20.0),
            timestamp: 4,
        };
        for _ in 0..500 {
            let bytes = corrupt_frame(&mut rng, &template);
            assert!(ClientRequest::decode(&bytes).is_err(), "{bytes:02x?}");
        }
    }

    #[test]
    fn mid_window_schedule_lands_inside_open_windows() {
        let config = Config { kills: 3, ..Config::default() };
        let kills = kill_schedule(FaultMix::MidWindowRestart, &config, 1, 2);
        let ops_per_user = (config.checkins + 1 + config.requests) as u64;
        assert_eq!(kills.len(), 2);
        for (k, &ordinal) in kills.iter().enumerate() {
            let within = ordinal - k as u64 * ops_per_user;
            assert!(within < config.checkins as u64, "kill {ordinal} is not mid-window");
        }
    }
}
