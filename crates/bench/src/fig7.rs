//! Fig. 7: utilization-rate distributions of the three mechanisms.
//!
//! At ε = 1, r = 500 m, R = 5 km and n from 1 to 10 the paper finds the
//! n-fold Gaussian mechanism approaching 100 % utilization at n = 10,
//! while the naïve post-processing baseline reaches ~58 % and plain DP
//! composition *degrades* to ~20 % — composition noise grows faster than
//! the extra candidates can recover.

use privlocad_mechanisms::{
    GeoIndParams, Lppm, NFoldGaussian, NaivePostProcessing, PlainComposition,
};
use privlocad_metrics::histogram::Histogram;
use privlocad_metrics::montecarlo::Fanout;
use privlocad_metrics::stats::Summary;
use privlocad_metrics::utilization;
use serde::{Deserialize, Serialize};

use crate::report::{f3, Table};

/// Configuration for the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Monte-Carlo trials per (mechanism, n) pair (paper: 100,000).
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Privacy level ε (paper: 1).
    pub epsilon: f64,
    /// Indistinguishability radius r in meters (paper: 500).
    pub r_m: f64,
    /// Failure probability δ (paper: 0.01).
    pub delta: f64,
    /// Targeting radius R in meters (paper: 5,000).
    pub targeting_radius_m: f64,
    /// The fold counts to sweep (paper: 1..=10).
    pub ns: Vec<usize>,
    /// Worker threads for the Monte-Carlo fan-out (0 = auto). Results are
    /// identical for any value.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            trials: 20_000,
            seed: 0,
            epsilon: 1.0,
            r_m: 500.0,
            delta: 0.01,
            targeting_radius_m: 5_000.0,
            ns: (1..=10).collect(),
            threads: 0,
        }
    }
}

/// The three compared mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MechanismKind {
    /// The paper's n-fold Gaussian (Fig. 7a).
    NFold,
    /// Naïve post-processing (Fig. 7b).
    PostProcessing,
    /// Plain DP composition (Fig. 7c).
    Composition,
}

impl MechanismKind {
    /// All kinds in figure order.
    pub const ALL: [MechanismKind; 3] =
        [MechanismKind::NFold, MechanismKind::PostProcessing, MechanismKind::Composition];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MechanismKind::NFold => "n-fold Gaussian",
            MechanismKind::PostProcessing => "naive post-processing",
            MechanismKind::Composition => "plain composition",
        }
    }

    /// Builds the mechanism for the given parameters.
    pub fn build(self, params: GeoIndParams) -> Box<dyn Lppm> {
        match self {
            MechanismKind::NFold => Box::new(NFoldGaussian::new(params)),
            MechanismKind::PostProcessing => Box::new(NaivePostProcessing::new(params)),
            MechanismKind::Composition => Box::new(PlainComposition::new(params)),
        }
    }
}

/// Utilization summary of one (mechanism, n) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Mechanism.
    pub kind: MechanismKind,
    /// Fold count.
    pub n: usize,
    /// Mean UR.
    pub mean: f64,
    /// 10th-percentile UR (feeds Fig. 8's α = 0.9 reading).
    pub p10: f64,
    /// Median UR.
    pub median: f64,
    /// A 16-bin sparkline of the UR distribution over `[0, 1]` — Fig. 7
    /// plots full distributions, not point estimates.
    pub distribution: String,
}

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Trials per cell.
    pub trials: usize,
    /// One cell per (mechanism, n).
    pub cells: Vec<Cell>,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Outcome {
    let mut cells = Vec::new();
    for kind in MechanismKind::ALL {
        for &n in &config.ns {
            let params = GeoIndParams::new(config.r_m, config.epsilon, config.delta, n)
                .expect("valid sweep parameters");
            let mech = kind.build(params);
            let fan = Fanout::with_threads(
                config.seed ^ (n as u64) << 8 ^ kind as u64,
                config.threads,
            );
            let urs = utilization::measure_fanout(
                mech.as_ref(),
                config.targeting_radius_m,
                config.trials,
                fan,
                utilization::DEFAULT_SAMPLES_PER_TRIAL,
            );
            let s = Summary::of(&urs);
            let hist = Histogram::of(&urs, 0.0, 1.0, 16).expect("valid fixed range");
            cells.push(Cell {
                kind,
                n,
                mean: s.mean,
                p10: privlocad_metrics::stats::quantile(&urs, 0.1),
                median: s.median,
                distribution: hist.sparkline(),
            });
        }
    }
    Outcome { trials: config.trials, cells }
}

impl Outcome {
    /// The cell for a mechanism at a fold count, if swept.
    pub fn cell(&self, kind: MechanismKind, n: usize) -> Option<&Cell> {
        self.cells.iter().find(|c| c.kind == kind && c.n == n)
    }

    /// Renders the paper-style summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Fig. 7 — utilization rate by mechanism ({} trials/cell)", self.trials),
            &["mechanism", "n", "mean UR", "median UR", "p10 UR", "distribution 0..1"],
        );
        for c in &self.cells {
            t.push_row(vec![
                c.kind.label().to_string(),
                c.n.to_string(),
                f3(c.mean),
                f3(c.median),
                f3(c.p10),
                c.distribution.clone(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config { trials: 800, ns: vec![1, 5, 10], ..Config::default() }
    }

    #[test]
    fn ordering_matches_fig7_at_n10() {
        let out = run(&small());
        let nfold = out.cell(MechanismKind::NFold, 10).unwrap().mean;
        let post = out.cell(MechanismKind::PostProcessing, 10).unwrap().mean;
        let comp = out.cell(MechanismKind::Composition, 10).unwrap().mean;
        assert!(nfold > post, "n-fold {nfold} vs post {post}");
        assert!(post > comp, "post {post} vs composition {comp}");
        // Rough paper magnitudes: ~1.0 / ~0.58 / ~0.2.
        assert!(nfold > 0.85, "n-fold at n=10: {nfold}");
        assert!(comp < 0.45, "composition at n=10: {comp}");
    }

    #[test]
    fn nfold_improves_with_n_composition_degrades() {
        let out = run(&small());
        let nf1 = out.cell(MechanismKind::NFold, 1).unwrap().mean;
        let nf10 = out.cell(MechanismKind::NFold, 10).unwrap().mean;
        assert!(nf10 > nf1, "n-fold: {nf1} -> {nf10}");
        let c1 = out.cell(MechanismKind::Composition, 1).unwrap().mean;
        let c10 = out.cell(MechanismKind::Composition, 10).unwrap().mean;
        assert!(c10 < c1, "composition: {c1} -> {c10}");
    }

    #[test]
    fn all_cells_present_and_in_unit_interval() {
        let out = run(&small());
        assert_eq!(out.cells.len(), 9);
        for c in &out.cells {
            assert!((0.0..=1.0).contains(&c.mean));
            assert!((0.0..=1.0).contains(&c.p10));
            assert!(c.p10 <= c.median + 1e-12);
        }
        assert_eq!(out.table().len(), 9);
    }
}
