//! A dependency-free timing harness for the `benches/` targets.
//!
//! The workspace builds offline, so the criterion dependency was replaced
//! with this minimal runner: per-label adaptive iteration counts, median of
//! a few samples, and an aligned ns/op (plus optional throughput) report.
//! It intentionally keeps criterion's "group/label" reporting shape so the
//! bench sources read the same.

use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group/label identifier, e.g. `obfuscate/n_fold_gaussian/10`.
    pub label: String,
    /// Median wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Fastest sample's nanoseconds per iteration. On a shared machine
    /// interference is strictly additive, so the minimum is the
    /// lowest-variance estimate of intrinsic cost — the statistic of
    /// choice when two rows are compared as a ratio.
    pub min_ns_per_iter: f64,
    /// Elements processed per iteration (for throughput rows).
    pub elements: Option<u64>,
}

/// A sequential benchmark runner that prints a report on [`Runner::finish`].
#[derive(Debug, Default)]
pub struct Runner {
    rows: Vec<Measurement>,
}

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Samples per benchmark; the median is reported (and the minimum kept).
/// Nine samples give the minimum a real chance of landing in a quiet
/// scheduling window on busy single-core CI machines.
const SAMPLES: usize = 9;

impl Runner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Measures `f`, reporting it under `label`.
    pub fn bench<T>(&mut self, label: &str, mut f: impl FnMut() -> T) {
        self.push_row(label, None, &mut || {
            std::hint::black_box(f());
        });
    }

    /// Measures `f` which processes `elements` items per iteration; the
    /// report adds an elements/second column.
    pub fn bench_throughput<T>(&mut self, label: &str, elements: u64, mut f: impl FnMut() -> T) {
        self.push_row(label, Some(elements), &mut || {
            std::hint::black_box(f());
        });
    }

    /// Measures two throughput workloads with their samples interleaved:
    /// one sample of `a`, one of `b`, repeated. Use this when the two rows
    /// will be compared as a ratio — on a busy (single-core CI) machine an
    /// interference burst then hits both workloads symmetrically instead
    /// of polluting one side of the comparison.
    pub fn bench_throughput_paired<T, U>(
        &mut self,
        a: (&str, u64, &mut impl FnMut() -> T),
        b: (&str, u64, &mut impl FnMut() -> U),
    ) {
        let (label_a, elements_a, f_a) = a;
        let (label_b, elements_b, f_b) = b;
        let mut run_a = || {
            std::hint::black_box(f_a());
        };
        let mut run_b = || {
            std::hint::black_box(f_b());
        };
        let iters_a = calibrate(&mut run_a);
        let iters_b = calibrate(&mut run_b);
        let mut samples_a = Vec::with_capacity(SAMPLES);
        let mut samples_b = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            samples_a.push(sample(&mut run_a, iters_a));
            samples_b.push(sample(&mut run_b, iters_b));
        }
        for (label, elements, samples) in
            [(label_a, elements_a, samples_a), (label_b, elements_b, samples_b)]
        {
            let row = summarize(label, Some(elements), samples);
            println!("{}", render(&row));
            self.rows.push(row);
        }
    }

    fn push_row(&mut self, label: &str, elements: Option<u64>, f: &mut dyn FnMut()) {
        let sample_iters = calibrate(f);
        let samples: Vec<f64> =
            (0..SAMPLES).map(|_| sample(f, sample_iters)).collect();
        let row = summarize(label, elements, samples);
        println!("{}", render(&row));
        self.rows.push(row);
    }

    /// Prints the summary table and returns the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("\n== microbench summary ==");
        for row in &self.rows {
            println!("{}", render(row));
        }
        self.rows
    }
}

/// Warms `f` up and picks an iteration count filling [`SAMPLE_TARGET`].
fn calibrate<F: FnMut() + ?Sized>(f: &mut F) -> u64 {
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= Duration::from_millis(10) {
            break elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(8);
    };
    ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).max(1)
}

/// One timed sample: seconds per iteration over `iters` runs of `f`.
fn sample<F: FnMut() + ?Sized>(f: &mut F, iters: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Collapses raw samples into a [`Measurement`] (median + minimum).
fn summarize(label: &str, elements: Option<u64>, mut samples: Vec<f64>) -> Measurement {
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    Measurement {
        label: label.to_string(),
        ns_per_iter: median * 1e9,
        min_ns_per_iter: samples[0] * 1e9,
        elements,
    }
}

fn render(row: &Measurement) -> String {
    let mut line = format!("{:<44} {:>14}/iter", row.label, format_ns(row.ns_per_iter));
    if let Some(elements) = row.elements {
        let per_sec = elements as f64 / (row.ns_per_iter * 1e-9);
        line.push_str(&format!("  {:>14} elem/s", format_count(per_sec)));
    }
    line
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut runner = Runner::new();
        let mut acc = 0u64;
        runner.bench("noop-ish", || {
            acc = acc.wrapping_add(1);
            acc
        });
        let rows = runner.finish();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ns_per_iter > 0.0);
        assert!(rows[0].min_ns_per_iter > 0.0);
        assert!(rows[0].min_ns_per_iter <= rows[0].ns_per_iter);
    }

    #[test]
    fn formats_scale_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
        assert_eq!(format_count(500.0), "500");
        assert!(format_count(5e3).ends_with('k'));
        assert!(format_count(5e6).ends_with('M'));
        assert!(format_count(5e9).ends_with('G'));
    }
}
