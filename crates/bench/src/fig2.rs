//! Fig. 2: a user's 7-day mobility pattern — and what an observer reads
//! off it.
//!
//! The paper's Fig. 2 plots one victim's week of raw check-ins and notes
//! that "the user's top locations as well as the location semantics (e.g.,
//! home and office) and the mobility patterns are not difficult to infer".
//! This experiment makes the claim executable: it takes a synthetic
//! victim's week, runs the profiler, the semantic classifier, and the
//! mobility-pattern inference, and reports what the observer learned.

use privlocad_attack::patterns::MobilityPattern;
use privlocad_attack::semantics::{classify, SemanticConfig, TimedObservation};
use privlocad_attack::{DeobfuscationAttack, InferredLocation};
use privlocad_mobility::PopulationConfig;
use serde::{Deserialize, Serialize};

use crate::report::{pct, Table};

/// Configuration for the Fig. 2 demonstration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Master seed.
    pub seed: u64,
    /// Days of observation (paper: 7).
    pub days: i64,
    /// How many top locations to extract.
    pub top_k: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { seed: 0, days: 7, top_k: 2 }
    }
}

/// One labeled top location with its diurnal profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledTop {
    /// Rank (0 = top-1).
    pub rank: usize,
    /// The semantic label as a string ("home", "work", "other").
    pub label: String,
    /// Fraction of check-ins in night/weekend hours.
    pub night_fraction: f64,
    /// Fraction of check-ins in weekday working hours.
    pub work_fraction: f64,
    /// Check-ins supporting this location over the window.
    pub support: usize,
    /// Peak visiting hour, if any.
    pub peak_hour: Option<u8>,
}

/// Result of the demonstration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Check-ins observed in the window.
    pub observations: usize,
    /// The labeled top locations.
    pub tops: Vec<LabeledTop>,
    /// Distinct-top-location transitions seen in the window.
    pub transitions: u32,
}

/// Runs the demonstration on a raw (unobfuscated) week of data, the
/// setting of the paper's Fig. 2.
pub fn run(config: &Config) -> Outcome {
    let population = PopulationConfig::builder().num_users(50).seed(config.seed).build();
    // Pick a user with a meaty week.
    let victim = (0..50u32)
        .map(|i| population.generate_user(i))
        .max_by_key(|u| u.checkins.iter().filter(|c| c.time.day() < config.days).count())
        .expect("population is non-empty");

    let week: Vec<TimedObservation> = victim
        .checkins
        .iter()
        .filter(|c| c.time.day() < config.days)
        .map(|c| TimedObservation { timestamp_s: c.time.seconds(), location: c.location })
        .collect();
    let points: Vec<_> = week.iter().map(|o| o.location).collect();

    // Raw data: profile directly with the paper's 50 m threshold.
    let attack = DeobfuscationAttack::new(privlocad_attack::AttackConfig::new(50.0, 100.0));
    let tops: Vec<InferredLocation> = attack.infer_top_locations(&points, config.top_k);

    let semantic = classify(&week, &tops, &SemanticConfig::default());
    let pattern = MobilityPattern::infer(&week, &tops, 500.0);

    let labeled = semantic
        .iter()
        .map(|s| LabeledTop {
            rank: s.rank,
            label: s.label.to_string(),
            night_fraction: s.night_fraction,
            work_fraction: s.work_fraction,
            support: s.support,
            peak_hour: pattern.peak_hour(s.rank),
        })
        .collect();

    Outcome {
        observations: week.len(),
        tops: labeled,
        transitions: pattern.total_transitions(),
    }
}

impl Outcome {
    /// Renders the paper-style summary table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("Fig. 2 — 7-day mobility pattern ({} check-ins)", self.observations),
            &["top", "label", "night frac", "workhour frac", "support", "peak hour"],
        );
        for top in &self.tops {
            t.push_row(vec![
                format!("top-{}", top.rank + 1),
                top.label.clone(),
                pct(top.night_fraction),
                pct(top.work_fraction),
                top.support.to_string(),
                top.peak_hour.map_or("-".into(), |h| format!("{h:02}:00")),
            ]);
        }
        t.push_row(vec![
            "transitions".into(),
            self.transitions.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn week_reveals_home_and_work() {
        let out = run(&Config::default());
        assert!(out.observations > 20, "thin week: {}", out.observations);
        assert_eq!(out.tops.len(), 2);
        // The top-1 location of our diurnal generator is the home.
        assert_eq!(out.tops[0].label, "home");
        // Rank-2 is the workplace, visited in working hours.
        assert_eq!(out.tops[1].label, "work");
        assert!(out.tops[0].night_fraction > 0.6);
        assert!(out.tops[1].work_fraction > 0.6);
    }

    #[test]
    fn commuting_produces_transitions() {
        let out = run(&Config::default());
        assert!(out.transitions > 0);
    }

    #[test]
    fn table_lists_tops_plus_transitions_row() {
        let out = run(&Config { seed: 3, ..Config::default() });
        assert_eq!(out.table().len(), out.tops.len() + 1);
    }
}
