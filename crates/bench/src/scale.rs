//! The `bench serve` scale stage: million-user sharded-fleet capacity.
//!
//! Where the other serving stages measure per-request latency on a small
//! fleet, this stage measures *capacity*: how much resident state a user
//! costs, how long a shard checkpoint takes to encode, and how long a
//! dead shard takes to come back — at fleet sizes up to a million users
//! partitioned over `ceil(users / 10_000)` shards.
//!
//! Shards are driven **sequentially**, so peak memory stays near one
//! shard regardless of fleet size: settle the shard's users (check-ins
//! plus a window close — each user ends with a permanent candidate set
//! and a warm posterior table), measure [`EdgeDevice::footprint`], time
//! [`EdgeDevice::checkpoint`] (one contiguous pooled frame buffer) and
//! [`EdgeDevice::restore_from_checkpoint`] (the zero-copy decode), then
//! serve one ad request per user *on the restored device* and fold the
//! reports into the stage digest.
//!
//! The digest is an XOR accumulation of per-user FNV-1a hashes over
//! `(user, report)`, so it is insensitive to user order and shard
//! partition — with per-user RNG streams
//! ([`EdgeDevice::with_per_user_streams`]) it is bit-for-bit identical at
//! any shard count, which [`run`] asserts on a small probe fleet (direct
//! devices at 1 vs 4 shards, plus an end-to-end
//! [`privlocad::ShardRouter`]) before timing anything.

use std::time::Instant;

use privlocad::protocol::ClientRequest;
use privlocad::{EdgeDevice, ShardRouter, SystemConfig};
use privlocad_geo::Point;
use privlocad_mobility::UserId;

use crate::report::Table;

/// Users per shard: fleets are partitioned into `ceil(users / 10_000)`
/// shards, so per-shard work (and recovery time) stays flat as the fleet
/// grows.
pub const SHARD_USERS: usize = 10_000;

/// Check-ins per user before the window close.
const CHECKINS: usize = 8;

/// Scale-stage parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Largest fleet size to measure. The stage reports one row per
    /// decade of `[10_000, 100_000, 1_000_000]` that fits under this cap
    /// (or a single row at exactly `users` when the cap is below the
    /// smallest decade).
    pub users: usize,
    /// Master seed; every user's private stream derives from it.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { users: SHARD_USERS, seed: 0 }
    }
}

/// One measured fleet size.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Row label, `serve/scale/{users}`.
    pub name: String,
    /// Total wall-clock for measuring this fleet size (settle + encode +
    /// restore + serve, all shards).
    pub wall_ms: f64,
    /// Fleet size.
    pub users: usize,
    /// Shards the fleet was partitioned across.
    pub shards: usize,
    /// Resident bytes per user, aggregated over all shards
    /// ([`privlocad::StateFootprint::bytes_per_user`]).
    pub bytes_per_user: f64,
    /// Total checkpoint encode time across all shards, milliseconds
    /// (fastest of the per-shard samples).
    pub checkpoint_encode_ms: f64,
    /// Total decode+restore time across all shards, milliseconds.
    pub recovery_ms: f64,
    /// Slowest single shard's decode+restore, milliseconds — the
    /// wall-clock a crash actually costs, which stays flat as the fleet
    /// grows because shard size is pinned at [`SHARD_USERS`].
    pub per_shard_recovery_ms: f64,
    /// Shard-count-invariant output digest (hex): XOR of per-user
    /// FNV-1a hashes over `(user, reported location)`.
    pub digest: String,
}

/// The full scale-stage result.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// One row per measured fleet size, smallest first.
    pub rows: Vec<ScaleRow>,
}

impl Outcome {
    /// Renders the capacity summary table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "sharded fleet capacity",
            &["fleet", "shards", "B/user", "ckpt ms", "recover ms", "per-shard ms", "digest"],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.users.to_string(),
                row.shards.to_string(),
                format!("{:.0}", row.bytes_per_user),
                format!("{:.1}", row.checkpoint_encode_ms),
                format!("{:.1}", row.recovery_ms),
                format!("{:.1}", row.per_shard_recovery_ms),
                row.digest.clone(),
            ]);
        }
        table
    }
}

/// The same deterministic top-location grid the serving stages use.
fn home_of(user: usize) -> Point {
    Point::new((user % 1_000) as f64 * 2_000.0, (user / 1_000) as f64 * 2_000.0)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One user's contribution to the stage digest: FNV-1a over the user id
/// and the raw bits of the reported location.
fn user_digest(user: u32, report: Point) -> u64 {
    let mut hash = fnv1a(FNV_OFFSET, &user.to_le_bytes());
    hash = fnv1a(hash, &report.x.to_bits().to_le_bytes());
    fnv1a(hash, &report.y.to_bits().to_le_bytes())
}

/// Settles every user of `shard` (ids ≡ shard mod shards, below `size`)
/// on a fresh per-user-stream device: `CHECKINS` check-ins at the user's
/// home, then a window close.
fn settled_shard(config: &Config, size: usize, shard: usize, shards: usize) -> EdgeDevice {
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let mut edge = EdgeDevice::with_per_user_streams(sys, config.seed);
    for u in (shard..size).step_by(shards) {
        let user = UserId::new(u as u32);
        for _ in 0..CHECKINS {
            edge.report_checkin(user, home_of(u));
        }
        edge.finalize_window(user);
    }
    edge
}

/// Serves one ad request per resident user (home location, the posterior
/// hot path) and XORs the per-user digests into one shard digest.
fn serve_and_digest(edge: &mut EdgeDevice, size: usize, shard: usize, shards: usize) -> u64 {
    let mut digest = 0u64;
    for u in (shard..size).step_by(shards) {
        let report = edge.reported_location(UserId::new(u as u32), home_of(u));
        digest ^= user_digest(u as u32, report);
    }
    digest
}

/// Asserts the partition-invariance contract on a small probe fleet:
/// direct per-user-stream devices produce the same digest at 1 and 4
/// shards, and a real [`ShardRouter`] (supervised servers, protocol
/// frames, 2 shards) lands on the same digest end-to-end.
fn assert_partition_invariance(config: &Config, probe: usize) {
    let direct = |shards: usize| {
        let mut digest = 0u64;
        for shard in 0..shards {
            let mut edge = settled_shard(config, probe, shard, shards);
            digest ^= serve_and_digest(&mut edge, probe, shard, shards);
        }
        digest
    };
    let one = direct(1);
    assert_eq!(one, direct(4), "digest must not depend on the shard partition");

    let router = ShardRouter::spawn(
        SystemConfig::builder().build().expect("default config is valid"),
        config.seed,
        2,
    );
    for u in 0..probe {
        let user = UserId::new(u as u32);
        for t in 0..CHECKINS {
            router.check_in(user, home_of(u), t as i64).expect("check-in");
        }
        router.finalize_window(user).expect("window close");
    }
    let mut routed = 0u64;
    for u in 0..probe {
        let report = router
            .request_location(UserId::new(u as u32), home_of(u))
            .expect("location request");
        routed ^= user_digest(u as u32, report);
    }
    router.shutdown().expect("shutdown");
    router.join().expect("shards join clean");
    assert_eq!(one, routed, "routed fleet must match the direct digest");
}

/// Measures one fleet size; shards are processed sequentially so peak
/// memory stays near one shard.
fn measure(config: &Config, size: usize) -> ScaleRow {
    let stage_start = Instant::now();
    let shards = size.div_ceil(SHARD_USERS);
    let mut total_bytes = 0u64;
    let mut encode_ms = 0.0f64;
    let mut recovery_ms = 0.0f64;
    let mut worst_shard_ms = 0.0f64;
    let mut digest = 0u64;
    for shard in 0..shards {
        let edge = settled_shard(config, size, shard, shards);
        total_bytes += edge.footprint().total_bytes();

        let mut shard_encode = f64::INFINITY;
        let mut log = edge.checkpoint();
        for _ in 0..2 {
            let start = Instant::now();
            log = edge.checkpoint();
            shard_encode = shard_encode.min(start.elapsed().as_secs_f64() * 1e3);
        }
        drop(edge);

        let sys = SystemConfig::builder().build().expect("default config is valid");
        let mut shard_recover = f64::INFINITY;
        let mut restored = None;
        for _ in 0..2 {
            let start = Instant::now();
            restored =
                Some(EdgeDevice::restore_from_checkpoint(sys, &log).expect("checkpoint restores"));
            shard_recover = shard_recover.min(start.elapsed().as_secs_f64() * 1e3);
        }
        let mut restored = restored.expect("restore loop ran");

        encode_ms += shard_encode;
        recovery_ms += shard_recover;
        worst_shard_ms = worst_shard_ms.max(shard_recover);
        digest ^= serve_and_digest(&mut restored, size, shard, shards);
    }
    ScaleRow {
        name: format!("serve/scale/{size}"),
        wall_ms: stage_start.elapsed().as_secs_f64() * 1e3,
        users: size,
        shards,
        bytes_per_user: total_bytes as f64 / size as f64,
        checkpoint_encode_ms: encode_ms,
        recovery_ms,
        per_shard_recovery_ms: worst_shard_ms,
        digest: format!("{digest:016x}"),
    }
}

/// Runs the scale stage: the partition-invariance probe, then one
/// measured row per fleet size under `config.users`.
pub fn run(config: &Config) -> Outcome {
    let users = config.users.max(1);
    assert_partition_invariance(config, users.min(512));
    let mut sizes: Vec<usize> =
        [10_000, 100_000, 1_000_000].into_iter().filter(|&s| s <= users).collect();
    if sizes.is_empty() {
        sizes.push(users);
    }
    Outcome { rows: sizes.into_iter().map(|size| measure(config, size)).collect() }
}

/// A protocol-level scale workload for one user, in serving order — what
/// the invariance integration test drives through real servers.
pub fn user_workload(user: UserId, checkins: usize) -> Vec<ClientRequest> {
    let home = home_of(user.raw() as usize);
    (0..checkins)
        .map(|t| ClientRequest::CheckIn { user, location: home, timestamp: t as i64 })
        .chain([ClientRequest::FinalizeWindow { user }])
        .chain([ClientRequest::RequestLocation { user, location: home }])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_reports_one_row_with_flat_shape() {
        let out = run(&Config { users: 96, seed: 3 });
        assert_eq!(out.rows.len(), 1);
        let row = &out.rows[0];
        assert_eq!(row.name, "serve/scale/96");
        assert_eq!((row.users, row.shards), (96, 1));
        assert!(row.bytes_per_user > 0.0);
        assert!(row.checkpoint_encode_ms >= 0.0 && row.recovery_ms >= 0.0);
        assert!(row.per_shard_recovery_ms <= row.recovery_ms + 1e-9);
        assert_eq!(row.digest.len(), 16);
        assert_eq!(out.table().len(), 1);
    }

    #[test]
    fn digest_is_a_pure_function_of_the_seed() {
        let row = |seed| {
            let out = run(&Config { users: 64, seed });
            out.rows[0].digest.clone()
        };
        assert_eq!(row(5), row(5));
        assert_ne!(row(5), row(6), "different masters must draw different candidates");
    }

    #[test]
    fn user_workload_has_serving_shape() {
        let ops = user_workload(UserId::new(3), 4);
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0], ClientRequest::CheckIn { .. }));
        assert!(matches!(ops[4], ClientRequest::FinalizeWindow { .. }));
        assert!(matches!(ops[5], ClientRequest::RequestLocation { .. }));
    }
}
