//! Tables II and III: edge-device scalability.
//!
//! Table II times the periodic batch job "build every user's location
//! profile and generate candidate locations"; Table III times the
//! per-request output-selection path, both as a function of the number of
//! users served by one edge device. The paper measures a Raspberry Pi 3
//! (340 s → 4,014 s for Table II, 90 ms → 1,377 ms for Table III between
//! 2,000 and 32,000 users); the reproduction target is the ~linear scaling
//! shape, not the absolute numbers.

use std::time::Instant;

use privlocad::{EdgeDevice, SystemConfig};
use privlocad_geo::Point;
use privlocad_mobility::{PopulationConfig, UserId, SECONDS_PER_DAY};
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// Configuration for the scalability experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// User counts to sweep (paper: 2,000 → 32,000 doubling).
    pub user_counts: Vec<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config { user_counts: vec![2_000, 4_000, 8_000, 16_000, 32_000], seed: 0 }
    }
}

/// One row: the wall-clock time to serve a user count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Number of users.
    pub users: usize,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

/// Result of a scalability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Which paper table this reproduces ("II" or "III").
    pub table: &'static str,
    /// One row per user count.
    pub rows: Vec<Row>,
}

/// Table II: profile building + candidate generation for every user.
///
/// Dataset generation is excluded from the timing — the measured section
/// is exactly the edge's periodic batch job: ingest the window's
/// check-ins, rebuild the profile, obfuscate new top locations.
pub fn run_table2(config: &Config) -> Outcome {
    let max_users = config.user_counts.iter().copied().max().unwrap_or(0);
    let population = PopulationConfig::builder()
        .num_users(max_users.max(1))
        .seed(config.seed)
        .build();
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let window_secs = sys.window_days() as i64 * SECONDS_PER_DAY;

    let rows = config
        .user_counts
        .iter()
        .map(|&count| {
            // Pre-generate each user's first-window check-ins (untimed).
            let windows: Vec<Vec<Point>> = (0..count as u32)
                .map(|i| {
                    let trace = population.generate_user(i);
                    trace
                        .checkins
                        .iter()
                        .filter(|c| c.time.seconds() < window_secs)
                        .map(|c| c.location)
                        .collect()
                })
                .collect();
            let mut edge = EdgeDevice::new(sys, config.seed);
            let start = Instant::now();
            for (i, window) in windows.iter().enumerate() {
                let user = UserId::new(i as u32);
                for &loc in window {
                    edge.report_checkin(user, loc);
                }
                edge.finalize_window(user);
            }
            let millis = start.elapsed().as_secs_f64() * 1_000.0;
            Row { users: count, millis }
        })
        .collect();
    Outcome { table: "II", rows }
}

/// Table III: one output-selection request per user.
///
/// Every user's profile and candidate table are prepared beforehand
/// (untimed); the measured section is `users` posterior selections.
pub fn run_table3(config: &Config) -> Outcome {
    let max_users = config.user_counts.iter().copied().max().unwrap_or(0);
    let sys = SystemConfig::builder().build().expect("default config is valid");
    // Synthetic homes on a grid: profile content does not matter for the
    // selection path, only that candidates exist.
    let mut edge = EdgeDevice::new(sys, config.seed);
    let homes: Vec<Point> = (0..max_users)
        .map(|i| Point::new((i % 1_000) as f64 * 1_000.0, (i / 1_000) as f64 * 1_000.0))
        .collect();
    for (i, &home) in homes.iter().enumerate() {
        let user = UserId::new(i as u32);
        for _ in 0..8 {
            edge.report_checkin(user, home);
        }
        edge.finalize_window(user);
    }

    let rows = config
        .user_counts
        .iter()
        .map(|&count| {
            let start = Instant::now();
            for (i, &home) in homes.iter().take(count).enumerate() {
                let reported = edge.reported_location(UserId::new(i as u32), home);
                std::hint::black_box(reported);
            }
            let millis = start.elapsed().as_secs_f64() * 1_000.0;
            Row { users: count, millis }
        })
        .collect();
    Outcome { table: "III", rows }
}

impl Outcome {
    /// Renders the paper-style summary table.
    pub fn table(&self) -> Table {
        let title = match self.table {
            "II" => "Table II — obfuscation processing time",
            _ => "Table III — output selection time",
        };
        let mut t = Table::new(title, &["users", "time (ms)"]);
        for r in &self.rows {
            t.push_row(vec![r.users.to_string(), format!("{:.1}", r.millis)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config { user_counts: vec![50, 200], seed: 1 }
    }

    #[test]
    fn table2_time_grows_with_users() {
        let out = run_table2(&small());
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows[0].millis > 0.0);
        // 4× the users should take clearly more time (loose bound: ≥ 1.5×).
        assert!(
            out.rows[1].millis > out.rows[0].millis * 1.5,
            "{:?}",
            out.rows
        );
    }

    #[test]
    fn table3_time_grows_with_users() {
        let out = run_table3(&small());
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows[0].millis > 0.0);
        assert!(out.rows[1].millis > out.rows[0].millis, "{:?}", out.rows);
    }

    #[test]
    fn outcome_tables_render() {
        let out2 = run_table2(&Config { user_counts: vec![20], seed: 0 });
        assert!(out2.table().render().contains("Table II"));
        let out3 = run_table3(&Config { user_counts: vec![20], seed: 0 });
        assert!(out3.table().render().contains("Table III"));
    }
}
