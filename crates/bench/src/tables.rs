//! Tables II and III: edge-device scalability.
//!
//! Table II times the periodic batch job "build every user's location
//! profile and generate candidate locations"; Table III times the
//! per-request output-selection path, both as a function of the number of
//! users served by one edge device. The paper measures a Raspberry Pi 3
//! (340 s → 4,014 s for Table II, 90 ms → 1,377 ms for Table III between
//! 2,000 and 32,000 users); the reproduction target is the ~linear scaling
//! shape, not the absolute numbers.
//!
//! Both sweeps drive a [`SharedEdgeDevice`] from a worker pool: users are
//! index-sharded over the pool's threads and every user's randomness is
//! derived from `(seed, user index)`, so the device's candidate tables and
//! reported locations are bit-for-bit identical for any thread count —
//! only the wall-clock changes. [`Outcome::digest`] captures those
//! deterministic outputs for exactly that cross-thread-count check.

use std::time::Instant;

use privlocad::{SharedEdgeDevice, SystemConfig};
use privlocad_geo::Point;
use privlocad_metrics::montecarlo::Fanout;
use privlocad_mobility::{PopulationConfig, UserId, SECONDS_PER_DAY};
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// Configuration for the scalability experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// User counts to sweep (paper: 2,000 → 32,000 doubling).
    pub user_counts: Vec<usize>,
    /// Master seed.
    pub seed: u64,
    /// Worker threads driving the shared edge device (0 = auto). The
    /// measured wall-clock depends on this; the device outputs
    /// ([`Outcome::digest`]) do not.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            user_counts: vec![2_000, 4_000, 8_000, 16_000, 32_000],
            seed: 0,
            threads: 0,
        }
    }
}

/// One row: the wall-clock time to serve a user count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Number of users.
    pub users: usize,
    /// Wall-clock milliseconds.
    pub millis: f64,
}

/// Result of a scalability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Which paper table this reproduces ("II" or "III").
    pub table: &'static str,
    /// One row per user count.
    pub rows: Vec<Row>,
    /// FNV-1a digest of the device's deterministic outputs (candidate
    /// sets for Table II, reported locations for Table III). Identical
    /// for any [`Config::threads`] value — the timing rows are the only
    /// thread-count-dependent part of an outcome.
    pub digest: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fnv1a_point(hash: u64, p: Point) -> u64 {
    fnv1a(fnv1a(hash, p.x.to_bits()), p.y.to_bits())
}

/// Table II: profile building + candidate generation for every user.
///
/// Dataset generation is excluded from the timing — the measured section
/// is exactly the edge's periodic batch job: ingest the window's
/// check-ins, rebuild the profile, obfuscate new top locations. The job
/// is driven by [`Config::threads`] workers, one user at a time per
/// worker, with per-user randomness derived from `(seed, user index)`.
pub fn run_table2(config: &Config) -> Outcome {
    let max_users = config.user_counts.iter().copied().max().unwrap_or(0);
    let population = PopulationConfig::builder()
        .num_users(max_users.max(1))
        .seed(config.seed)
        .build();
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let window_secs = sys.window_days() as i64 * SECONDS_PER_DAY;
    let fan = Fanout::with_threads(config.seed, config.threads);

    let mut digest = FNV_OFFSET;
    let rows = config
        .user_counts
        .iter()
        .map(|&count| {
            let indices: Vec<u32> = (0..count as u32).collect();
            // Pre-generate each user's first-window check-ins (untimed).
            let windows: Vec<Vec<Point>> = fan.map(&indices, |_, &i| {
                population
                    .generate_user(i)
                    .checkins
                    .iter()
                    .filter(|c| c.time.seconds() < window_secs)
                    .map(|c| c.location)
                    .collect()
            });
            let edge = SharedEdgeDevice::new(sys, config.seed);
            let start = Instant::now();
            fan.map_seeded(&indices, |i, &u, rng| {
                let user = UserId::new(u);
                for &loc in &windows[i] {
                    edge.report_checkin(user, loc);
                }
                edge.finalize_window_with(user, rng)
            });
            let millis = start.elapsed().as_secs_f64() * 1_000.0;
            // Fold each user's candidate set into the determinism digest
            // (untimed; pure reads).
            let subs: Vec<u64> = fan.map(&indices, |i, &u| {
                let mut h = FNV_OFFSET;
                if let Some(&first) = windows[i].first() {
                    if let Some(candidates) = edge.candidates(UserId::new(u), first) {
                        for c in candidates {
                            h = fnv1a_point(h, c);
                        }
                    }
                }
                h
            });
            for s in subs {
                digest = fnv1a(digest, s);
            }
            Row { users: count, millis }
        })
        .collect();
    Outcome { table: "II", rows, digest }
}

/// Table III: one output-selection request per user.
///
/// Every user's profile and candidate table are prepared beforehand
/// (untimed); the measured section is `users` posterior selections issued
/// from the worker pool.
pub fn run_table3(config: &Config) -> Outcome {
    let max_users = config.user_counts.iter().copied().max().unwrap_or(0);
    let sys = SystemConfig::builder().build().expect("default config is valid");
    let fan = Fanout::with_threads(config.seed, config.threads);
    // Synthetic homes on a grid: profile content does not matter for the
    // selection path, only that candidates exist.
    let edge = SharedEdgeDevice::new(sys, config.seed);
    let homes: Vec<Point> = (0..max_users)
        .map(|i| Point::new((i % 1_000) as f64 * 1_000.0, (i / 1_000) as f64 * 1_000.0))
        .collect();
    fan.map_seeded(&homes, |i, &home, rng| {
        let user = UserId::new(i as u32);
        for _ in 0..8 {
            edge.report_checkin(user, home);
        }
        edge.finalize_window_with(user, rng)
    });

    // A distinct stream for the request phase so selections do not replay
    // the preparation draws.
    let request_fan = fan.reseeded(config.seed.wrapping_add(0x9e37_79b9));
    let mut digest = FNV_OFFSET;
    let rows = config
        .user_counts
        .iter()
        .map(|&count| {
            let slice = &homes[..count];
            let start = Instant::now();
            let reports: Vec<Point> = request_fan.map_seeded(slice, |i, &home, rng| {
                edge.reported_location_with(UserId::new(i as u32), home, rng)
            });
            let millis = start.elapsed().as_secs_f64() * 1_000.0;
            for p in reports {
                digest = fnv1a_point(digest, p);
            }
            Row { users: count, millis }
        })
        .collect();
    Outcome { table: "III", rows, digest }
}

impl Outcome {
    /// Renders the paper-style summary table.
    pub fn table(&self) -> Table {
        let title = match self.table {
            "II" => "Table II — obfuscation processing time",
            _ => "Table III — output selection time",
        };
        let mut t = Table::new(title, &["users", "time (ms)"]);
        for r in &self.rows {
            t.push_row(vec![r.users.to_string(), format!("{:.1}", r.millis)]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Config {
        Config { user_counts: vec![50, 200], seed: 1, threads: 0 }
    }

    #[test]
    fn table2_time_grows_with_users() {
        let out = run_table2(&small());
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows[0].millis > 0.0);
        // 4× the users should take clearly more time (loose bound: ≥ 1.5×).
        assert!(
            out.rows[1].millis > out.rows[0].millis * 1.5,
            "{:?}",
            out.rows
        );
    }

    #[test]
    fn table3_time_grows_with_users() {
        let out = run_table3(&small());
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows[0].millis > 0.0);
        assert!(out.rows[1].millis > out.rows[0].millis, "{:?}", out.rows);
    }

    #[test]
    fn digests_are_thread_count_invariant() {
        let digest2 = |threads| run_table2(&Config { threads, ..small() }).digest;
        let digest3 = |threads| run_table3(&Config { threads, ..small() }).digest;
        assert_eq!(digest2(1), digest2(2));
        assert_eq!(digest2(1), digest2(0));
        assert_eq!(digest3(1), digest3(2));
        assert_eq!(digest3(1), digest3(0));
    }

    #[test]
    fn outcome_tables_render() {
        let out2 = run_table2(&Config { user_counts: vec![20], seed: 0, threads: 1 });
        assert!(out2.table().render().contains("Table II"));
        let out3 = run_table3(&Config { user_counts: vec![20], seed: 0, threads: 1 });
        assert!(out3.table().render().contains("Table III"));
    }
}
